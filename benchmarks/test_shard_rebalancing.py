"""Acceptance benchmark for load-aware shard rebalancing.

One guarantee asserted end to end against the pinned ``rebalance`` serving
scorecard (``repro.harness.scorecard.SERVING_SCORECARDS``) and its checked-in
baseline record (``BENCH_serving_rebalance.json``):

Under a skewed flash crowd (Zipf ``alpha=1.5`` tenant popularity, 6x crowd
rate) the static round-robin placement parks the crowd tenant's traffic on
one shard.  The load-aware rebalance policy observes the per-shard telemetry
mid-run, migrates tenants off the hot shard, and ends the run with a strictly
lower max-shard request share than the static placement — while every served
packet still equals linear search over the exact ruleset generation its
engine served (``verify_exactness`` holds *through* the live migrations),
and the deterministic counters match the single-process reference bit for
bit once the placement-dependent migration counters are stripped.

Regenerate the baseline with ``scripts/make_bench_baselines.py`` when a
counter change is intentional.
"""

from __future__ import annotations

from repro.harness import format_table
from repro.harness.scorecard import (PLACEMENT_COUNTERS, SERVING_SCORECARDS,
                                     run_serving_scorecard,
                                     serving_bench_filename)
from repro.harness.serving import serving_bench_record


def _max_shard_share(sharded) -> float:
    """Largest fraction of total requests any one shard served."""
    per_shard = [outcome.report.num_requests for outcome in sharded.outcomes]
    return max(per_shard) / max(sum(per_shard), 1)


def _stable_counters(report) -> dict:
    counters = report.deterministic_counters()
    for key in PLACEMENT_COUNTERS:
        counters.pop(key, None)
    return counters


def test_load_aware_rebalancing_flattens_flash_crowd(run_once, benchmark,
                                                     bench_gate):
    cfg = SERVING_SCORECARDS["rebalance"]
    serial = run_serving_scorecard("rebalance", serving_workers=1)
    static = run_serving_scorecard("rebalance", rebalance_policy_name="none")
    rebalanced = run_once(run_serving_scorecard, "rebalance")
    report = rebalanced.report

    static_share = _max_shard_share(static)
    load_share = _max_shard_share(rebalanced)
    print("\n=== Load-aware shard rebalancing under a skewed flash crowd ===")
    print(format_table(["metric", "value"], rebalanced.rows()))
    print(format_table(["shard", "tenants", "requests", "wall"],
                       rebalanced.shard_rows()))
    print(f"max-shard request share: static {static_share:.3f} "
          f"vs load-aware {load_share:.3f}")
    benchmark.extra_info["pps"] = report.pps
    benchmark.extra_info["migrations"] = report.migrations
    benchmark.extra_info["rebalance_plans"] = report.rebalance_plans
    benchmark.extra_info["max_share_static"] = static_share
    benchmark.extra_info["max_share_load"] = load_share

    # The policy actually acted: at least one live migration landed, and the
    # static run (same workload, policy "none") of course saw none.
    assert report.migrations >= 1, \
        "load policy never migrated a tenant off the hot shard"
    assert report.rebalance_plans >= 1
    assert static.report.migrations == 0

    # The headline claim: load-aware placement spreads the flash crowd, so
    # its hottest shard carries a strictly smaller share of the requests
    # than round-robin's hottest shard.
    assert load_share < static_share, (
        f"load-aware max-shard share {load_share:.3f} not below static "
        f"round-robin's {static_share:.3f}"
    )

    # No dropped packets: every generated request was answered exactly once.
    assert report.num_requests == len(rebalanced.workload.requests)
    assert rebalanced.num_shards == cfg["serving_workers"]

    # Migration is exact: minus the placement-dependent migration counters,
    # the rebalanced run's deterministic counters equal the single-process
    # reference bit for bit — decisions depend only on (packet, epoch
    # ruleset), never on which shard served them.
    assert _stable_counters(report) == _stable_counters(serial.report)

    # Exactness holds through the live migrations: every served packet,
    # including those answered after its tenant's slot was shipped across
    # the shard boundary, equals linear search over its epoch's ruleset.
    exactness = rebalanced.verify_exactness()
    assert exactness.num_checked == report.num_requests
    assert exactness.num_mismatches == 0, (
        f"{exactness.num_mismatches} answers disagree with linear search "
        f"across a live migration"
    )

    record = serving_bench_record(report, name="serving-rebalance",
                                  config=dict(cfg), exactness=exactness)
    record.timings["max_share_static"] = static_share
    record.timings["max_share_load"] = load_share
    bench_gate(record, serving_bench_filename("rebalance"))
