"""Microbenchmarks of the shared substrates.

These are conventional pytest-benchmark measurements (multiple rounds): the
cost of building baseline trees, of classifying packets through a built
tree, of one NeuroCuts rollout, and of one PPO update.  They quantify the
"bulk of time is spent executing tree cut actions" observation from the
paper's Section 5 and give a regression baseline for the Python substrate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import CutSplitBuilder, EffiCutsBuilder, HiCutsBuilder, \
    HyperCutsBuilder
from repro.classbench import generate_classifier, generate_trace
from repro.neurocuts import NeuroCutsConfig, NeuroCutsEnv
from repro.nn import ActorCriticMLP
from repro.rl import Policy, PPOConfig, PPOLearner


@pytest.fixture(scope="module")
def ruleset():
    return generate_classifier("acl1", 200, seed=0)


@pytest.fixture(scope="module")
def trace(ruleset):
    return generate_trace(ruleset, num_packets=500, seed=1)


@pytest.mark.parametrize("builder_cls", [
    HiCutsBuilder, HyperCutsBuilder, EffiCutsBuilder, CutSplitBuilder
])
def test_baseline_build_time(benchmark, ruleset, builder_cls):
    builder = builder_cls(binth=16)
    result = benchmark(builder.build, ruleset)
    assert result.stats().num_nodes >= 1


def test_tree_lookup_throughput(benchmark, ruleset, trace):
    classifier = HiCutsBuilder(binth=16).build(ruleset)

    def classify_all():
        return [classifier.classify(p) for p in trace]

    results = benchmark(classify_all)
    assert all(r is not None for r in results)


def test_linear_search_throughput(benchmark, ruleset, trace):
    def classify_all():
        return [ruleset.classify(p) for p in trace]

    results = benchmark(classify_all)
    assert all(r is not None for r in results)


def test_neurocuts_rollout_cost(benchmark, ruleset):
    config = NeuroCutsConfig.fast_test_config(
        hidden_sizes=(64, 64), max_timesteps_per_rollout=300,
        leaf_threshold=16, seed=0,
    )
    env = NeuroCutsEnv(ruleset, config)
    model = ActorCriticMLP(env.observation_size, env.action_sizes,
                           hidden_sizes=(64, 64), seed=0)
    policy = Policy(model, env.action_space.space, seed=0)
    result = benchmark(env.rollout, policy)
    assert result.tree.is_complete()


def test_ppo_update_cost(benchmark, ruleset):
    config = NeuroCutsConfig.fast_test_config(hidden_sizes=(64, 64), seed=0)
    env = NeuroCutsEnv(ruleset, config)
    model = ActorCriticMLP(env.observation_size, env.action_sizes,
                           hidden_sizes=(64, 64), seed=0)
    policy = Policy(model, env.action_space.space, seed=0)
    learner = PPOLearner(model, PPOConfig(num_sgd_iters=3,
                                          sgd_minibatch_size=128,
                                          learning_rate=1e-3))
    rollout = env.rollout(policy)
    stats = benchmark(learner.update, rollout.batch)
    assert np.isfinite(stats.policy_loss)


def test_observation_encoding_cost(benchmark, ruleset):
    config = NeuroCutsConfig(partition_mode="simple")
    env = NeuroCutsEnv(ruleset, config)
    tree = env.new_tree()
    node = tree.current_node() or tree.root
    obs = benchmark(env.observation_encoder.encode, node)
    assert obs.shape == (env.observation_size,)
