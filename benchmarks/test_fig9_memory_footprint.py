"""Figure 9: memory footprint (bytes per rule) across the ClassBench suite.

Paper result: space-optimised NeuroCuts (partitioning enabled, c = 0) beats
HiCuts and HyperCuts decisively, improves on EffiCuts by 40 % at the median,
and usually sits slightly above CutSplit (26 % higher median) with a 3x
best-case win over all baselines.
"""

from __future__ import annotations

from repro.harness import comparison_table, run_figure9, summary_table
from repro.metrics import summarize_improvements


def test_figure9_memory_footprint(scale, run_once):
    result = run_once(run_figure9, scale)

    print("\n=== Figure 9: memory footprint (bytes per rule) ===")
    print(comparison_table(result.values, result.metric))
    print()
    vs_hicuts = summarize_improvements(result.values["NeuroCuts"],
                                       result.values["HiCuts"])
    vs_efficuts = summarize_improvements(result.values["NeuroCuts"],
                                         result.values["EffiCuts"])
    print(summary_table({
        "NeuroCuts vs min(all baselines)":
            result.neurocuts_vs_best_baseline.as_dict(),
        "NeuroCuts vs HiCuts": vs_hicuts.as_dict(),
        "NeuroCuts vs EffiCuts": vs_efficuts.as_dict(),
    }))
    print("medians:", {k: round(v, 1) for k, v in result.medians.items()})

    labels = {label for label, _ in result.rows()}
    assert len(labels) == len(scale.specs())
    for values in result.values.values():
        assert all(v > 0 for v in values.values())

    # Qualitative shape from the paper: the partition-based algorithms
    # (EffiCuts, CutSplit, space-optimised NeuroCuts) use less memory per rule
    # at the median than the replication-prone HiCuts/HyperCuts trees.
    partition_based_median = min(result.medians["EffiCuts"],
                                 result.medians["CutSplit"],
                                 result.medians["NeuroCuts"])
    replication_prone_median = max(result.medians["HiCuts"],
                                   result.medians["HyperCuts"])
    assert partition_based_median <= replication_prone_median
    # NeuroCuts space-optimised should not be drastically worse than EffiCuts.
    assert result.medians["NeuroCuts"] <= 3.0 * result.medians["EffiCuts"]
