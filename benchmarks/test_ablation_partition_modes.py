"""Ablation: top-node partitioning mode (none vs simple vs EffiCuts).

Table 1 calls the top-node partitioning the most sensitive hyperparameter:
it "strongly biases NeuroCuts towards learning trees optimized for time
(none) vs space (EffiCuts), or somewhere in the middle (simple)".  This
ablation trains all three modes on the same firewall classifier with the
same budget and reports where each lands on the time/space plane.
"""

from __future__ import annotations

from repro.classbench import generate_classifier
from repro.harness import format_table
from repro.neurocuts import NeuroCutsTrainer
from repro.tree import validate_classifier


def test_ablation_partition_modes(scale, run_once):
    def run_ablation():
        ruleset = generate_classifier("fw2", 80, seed=4)
        results = {}
        for mode in ("none", "simple", "efficuts"):
            config = scale.neurocuts_config(
                partition_mode=mode,
                time_space_coeff=0.5,
                reward_scaling="log",
                max_timesteps_total=max(4000, scale.neurocuts_timesteps // 3),
                seed=0,
            )
            result = NeuroCutsTrainer(ruleset, config).train()
            classifier = result.best_classifier()
            assert validate_classifier(classifier,
                                       num_random_packets=80).is_correct
            stats = classifier.stats()
            results[mode] = {
                "classification_time": stats.classification_time,
                "bytes_per_rule": stats.bytes_per_rule,
                "num_nodes": stats.num_nodes,
            }
        return results

    results = run_once(run_ablation)
    print("\n=== Ablation: top-node partitioning mode ===")
    print(format_table(
        ["partition mode", "classification time", "bytes/rule", "nodes"],
        [[mode, r["classification_time"], r["bytes_per_rule"], r["num_nodes"]]
         for mode, r in results.items()],
    ))

    assert set(results) == {"none", "simple", "efficuts"}
    for r in results.values():
        assert r["classification_time"] >= 1
        assert r["bytes_per_rule"] > 0
