"""Shared benchmark fixtures.

Every figure benchmark runs at the "tiny" experiment scale by default so the
whole suite finishes in minutes on a laptop CPU.  Set ``REPRO_SCALE=small``
(or ``paper``) in the environment to run larger reproductions; the figure
code is identical, only the workload sizes and training budgets change.

Heavy experiment functions are benchmarked with ``rounds=1`` — the quantity
of interest is the figure data they produce (printed and attached to
``benchmark.extra_info``), not sub-millisecond timing stability.
"""

from __future__ import annotations

import os

import pytest

from repro.harness import get_scale
from repro.harness.scales import ExperimentScale


def pytest_report_header(config):
    scale = os.environ.get("REPRO_SCALE", "tiny")
    return f"repro experiment scale: {scale}"


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The experiment scale used by every figure benchmark."""
    return get_scale(os.environ.get("REPRO_SCALE", "tiny"))


@pytest.fixture
def run_once(benchmark):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run
