"""Shared benchmark fixtures.

Every figure benchmark runs at the "tiny" experiment scale by default so the
whole suite finishes in minutes on a laptop CPU.  Set ``REPRO_SCALE=small``
(or ``paper``) in the environment to run larger reproductions; the figure
code is identical, only the workload sizes and training budgets change.

Heavy experiment functions are benchmarked with ``rounds=1`` — the quantity
of interest is the figure data they produce (printed and attached to
``benchmark.extra_info``), not sub-millisecond timing stability.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness import get_scale
from repro.harness.scales import ExperimentScale

#: Where the checked-in scorecard baselines live (regenerate them with
#: ``scripts/make_bench_baselines.py`` when a counter change is intentional).
BASELINE_DIR = Path(__file__).resolve().parent / "baselines"

#: Timing bands need real parallel headroom to be meaningful; below this
#: the gate checks counters only (same floor as ``examples/bench_scorecard.py``).
MIN_CPUS_FOR_TIMINGS = 8

#: Benchmark throughput numbers are noisier than the small scorecard runs,
#: so the band is wider than the compare default (25 %).
BENCH_TIMING_TOLERANCE = 0.5


def pytest_report_header(config):
    scale = os.environ.get("REPRO_SCALE", "tiny")
    return f"repro experiment scale: {scale}"


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The experiment scale used by every figure benchmark."""
    return get_scale(os.environ.get("REPRO_SCALE", "tiny"))


@pytest.fixture
def run_once(benchmark):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run


@pytest.fixture
def bench_gate():
    """Gate a :class:`BenchRecord` against its checked-in baseline.

    The shared machinery behind the scorecard-backed acceptance benchmarks
    (engine throughput, serving hotswap/retrain/sharded): deterministic
    counters must match the baseline bit-for-bit everywhere, while timings
    are tolerance-banded only on a comparable machine
    (``timings_comparable``) with enough CPUs — hard-coded ratio asserts
    measured the CI machine, not the code.
    """
    from repro.obs import compare_records, read_bench, timings_comparable

    def _gate(record, baseline_filename,
              timing_tolerance=BENCH_TIMING_TOLERANCE):
        baseline = read_bench(BASELINE_DIR / baseline_filename)
        comparable, reason = timings_comparable(record, baseline)
        enough_cpus = (os.cpu_count() or 1) >= MIN_CPUS_FOR_TIMINGS
        check_timings = comparable and enough_cpus
        if not check_timings:
            print(f"timing checks skipped: "
                  f"{reason if not comparable else '<%d CPUs' % MIN_CPUS_FOR_TIMINGS}")
        report = compare_records(record, baseline,
                                 timing_tolerance=timing_tolerance,
                                 check_timings=check_timings)
        assert report.ok, "\n".join(
            f"{check.kind}:{check.metric} run={check.run_value} "
            f"baseline={check.baseline_value} ({check.detail})"
            for check in report.failures
        )
        return report

    return _gate
