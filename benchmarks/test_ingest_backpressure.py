"""Ingestion-frontend benchmark: flash-crowd admission under backpressure.

The acceptance bar for the ingest subsystem (docs/ingest.md): an
adversarial flash-crowd workload — one tenant's offered rate multiplied
mid-trace (``repro.workloads.adversarial``) — is admitted through per-tenant
token buckets and bounded virtual-time queues with

* **no silent drops**: every offered request is accounted for exactly once
  as admitted, throttled, or shed (typed rejection, never tail-drop), and
  every admitted request is served;
* **bounded queueing delay**: admission delay never exceeds
  ``queue_limit / drain_rate`` — the structural bound a bounded queue
  drained at a fixed rate guarantees, independent of offered load;
* **determinism**: admission decisions are a pure function of the trace
  clock, so two runs produce identical deterministic counters;
* **exactness**: backpressure changes *when* packets are served, never the
  answers — zero misclassifications against linear search.
"""

from __future__ import annotations

from repro.harness import format_table
from repro.harness.serving import run_serving
from repro.ingest import IngestConfig
from repro.workloads import FlashCrowdConfig

INGEST = IngestConfig(tenant_rate=20_000.0, tenant_burst=64, queue_limit=128)
FLASH = FlashCrowdConfig(rate_factor=8.0)


def _run_flash_crowd(ingest: IngestConfig):
    return run_serving(
        num_tenants=3,
        num_rules=60,
        num_packets=4_000,
        num_flows=300,
        churn_events=0,
        background_swaps=False,
        record_batches=True,
        ingest=ingest,
        flash_crowd=FLASH,
        seed=0,
    )


def test_flash_crowd_backpressure(run_once, benchmark):
    result = run_once(_run_flash_crowd, INGEST)
    report = result.report

    print("\n=== Flash crowd through the ingest frontend ===")
    print(result.workload.describe())
    print(format_table(["metric", "value"], report.rows()))
    benchmark.extra_info["pps"] = report.pps
    benchmark.extra_info["admitted"] = report.ingest_admitted
    benchmark.extra_info["throttled"] = report.ingest_throttled
    benchmark.extra_info["shed"] = report.ingest_shed

    # Every offered request is accounted for exactly once — admission is a
    # partition, not a filter with silent losses.
    assert report.ingest_offered == len(result.workload.requests)
    assert report.ingest_offered == (report.ingest_admitted
                                     + report.ingest_throttled
                                     + report.ingest_shed)
    # The flash crowd actually hit the wall: rejections happened, and every
    # admitted request was served.
    assert report.ingest_throttled > 0, \
        "an 8x flash crowd never tripped the token bucket"
    assert report.num_requests == report.ingest_admitted, \
        "admitted requests went missing between admission and serving"

    # The structural delay bound: a bounded queue drained at a fixed rate
    # cannot delay an admitted packet by more than queue_limit/drain_rate.
    delay = report.metrics.timing("ingest.queue_delay_seconds")
    assert delay.count == report.ingest_admitted
    assert delay.max <= INGEST.max_queue_delay + 1e-9, (
        f"queue delay {delay.max:.6f}s exceeds the structural bound "
        f"{INGEST.max_queue_delay:.6f}s"
    )
    assert delay.percentile(99.0) <= INGEST.max_queue_delay + 1e-9
    print(f"queue delay p50/p99/max: {delay.percentile(50.0) * 1e3:.3f} / "
          f"{delay.percentile(99.0) * 1e3:.3f} / {delay.max * 1e3:.3f} ms "
          f"(bound {INGEST.max_queue_delay * 1e3:.3f} ms)")

    # Backpressure re-times packets but never changes answers.
    exactness = result.verify_exactness()
    assert exactness.num_checked == report.num_requests
    assert exactness.num_mismatches == 0

    # Virtual-clock determinism: an identical second run produces identical
    # deterministic counters (including the ingest tallies).
    repeat = _run_flash_crowd(INGEST)
    assert repeat.report.deterministic_counters() == \
        report.deterministic_counters()


def test_flash_crowd_hard_shed_stays_bounded():
    """A queue shorter than the burst forces HARD sheds, not longer waits."""
    ingest = IngestConfig(tenant_rate=20_000.0, tenant_burst=64,
                          queue_limit=16, adaptive_sources=False)
    result = _run_flash_crowd(ingest)
    report = result.report

    assert report.ingest_shed > 0, \
        "a 16-deep queue under an 8x flash crowd never shed"
    assert report.ingest_offered == (report.ingest_admitted
                                     + report.ingest_throttled
                                     + report.ingest_shed)
    assert report.num_requests == report.ingest_admitted
    delay = report.metrics.timing("ingest.queue_delay_seconds")
    assert delay.max <= ingest.max_queue_delay + 1e-9, \
        "shedding must cap delay at the shorter queue's bound"
