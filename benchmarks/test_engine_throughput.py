"""Engine throughput: compiled flat-array execution vs the interpreter.

The acceptance bar for the dataplane engine used to be a hard-coded
"compiled must be >= 10x the interpreter" assert.  Ratios like that are a
property of the machine running the suite, not of the code — a 1-CPU CI
container and a 16-core workstation produce wildly different speedups from
the same commit.  The bar now lives in checked-in baseline records
(``benchmarks/baselines/BENCH_engine_throughput_*.json``) and is gated with
the same ``repro bench compare`` semantics as the CI scorecard job:
deterministic counters (mismatches, packet/subtree/cache tallies) must
match the baseline bit-for-bit everywhere, while pps/speedup timings are
tolerance-banded only on a machine with parallel headroom *and* the same
machine class (fingerprint ``cpu_count``) as the baseline.  Regenerate the
baselines with ``scripts/make_bench_baselines.py`` when a counter change is
intentional.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.engine import NUMBA_AVAILABLE
from repro.harness import format_table
from repro.harness.scorecard import (THROUGHPUT_SCORECARDS,
                                     throughput_bench_filename,
                                     throughput_scorecard_record)
from repro.obs import compare_records, read_bench, timings_comparable

BASELINE_DIR = Path(__file__).resolve().parent / "baselines"

#: Timing bands need real parallel headroom to be meaningful; below this
#: the run gates counters only (same floor as ``examples/bench_scorecard.py``).
MIN_CPUS_FOR_TIMINGS = 8

#: Throughput numbers are noisier than the small scorecard runs, so the
#: band is wider than the compare default (25 %).
TIMING_TOLERANCE = 0.5

#: Minimum speedup of the numba backend over numpy on the same workload;
#: only asserted where the JIT has cores to parallelise across.
MIN_NATIVE_SPEEDUP = 3.0


def _gate_against_baseline(kind: str, run_once) -> None:
    record = run_once(throughput_scorecard_record, kind)
    print(f"\n=== Engine throughput scorecard: {kind} ===")
    print(format_table(
        ["metric", "value"],
        [[name, f"{value:,.0f}"] for name, value
         in sorted({**record.counters, **record.timings}.items())],
    ))

    assert record.counters["mismatches"] == 0, \
        "compiled engine disagrees with the interpreter"
    assert record.timings["compiled_pps"] > 0
    assert record.timings["interpreter_pps"] > 0

    baseline_path = BASELINE_DIR / throughput_bench_filename(kind)
    baseline = read_bench(baseline_path)
    comparable, reason = timings_comparable(record, baseline)
    enough_cpus = (os.cpu_count() or 1) >= MIN_CPUS_FOR_TIMINGS
    check_timings = comparable and enough_cpus
    if not check_timings:
        print(f"timing checks skipped: "
              f"{reason if not comparable else '<%d CPUs' % MIN_CPUS_FOR_TIMINGS}")
    report = compare_records(record, baseline,
                             timing_tolerance=TIMING_TOLERANCE,
                             check_timings=check_timings)
    assert report.ok, "\n".join(
        f"{check.kind}:{check.metric} run={check.run_value} "
        f"baseline={check.baseline_value} ({check.detail})"
        for check in report.failures
    )


@pytest.mark.parametrize("kind", sorted(THROUGHPUT_SCORECARDS))
def test_engine_throughput_vs_baseline(kind, run_once):
    """Each throughput scorecard matches its checked-in baseline record."""
    _gate_against_baseline(kind, run_once)


@pytest.mark.skipif(
    not NUMBA_AVAILABLE or (os.cpu_count() or 1) < MIN_CPUS_FOR_TIMINGS,
    reason="needs numba and >= %d CPUs for a meaningful JIT-vs-numpy ratio"
           % MIN_CPUS_FOR_TIMINGS,
)
def test_native_backend_speedup(run_once):
    """The numba kernels beat the numpy dispatcher on the big workload."""
    numpy_record = throughput_scorecard_record("hicuts")
    numba_record = run_once(throughput_scorecard_record, "hicuts",
                            engine_backend="numba")
    assert numba_record.counters["mismatches"] == 0
    numpy_pps = numpy_record.timings["compiled_pps"]
    numba_pps = numba_record.timings["compiled_pps"]
    ratio = numba_pps / max(numpy_pps, 1e-9)
    print(f"\nnative kernels: {numba_pps:,.0f} pps vs numpy "
          f"{numpy_pps:,.0f} pps ({ratio:.1f}x)")
    assert ratio >= MIN_NATIVE_SPEEDUP, (
        f"numba backend is only {ratio:.1f}x numpy; "
        f"need >= {MIN_NATIVE_SPEEDUP}x"
    )
