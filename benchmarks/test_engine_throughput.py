"""Engine throughput: compiled flat-array execution vs the interpreter.

The acceptance bar for the dataplane engine: on a ClassBench acl1-style
ruleset, the compiled ``classify_batch`` must deliver at least 10x the
packets/sec of the per-packet Python interpreter while agreeing with it
packet-for-packet.
"""

from __future__ import annotations

from repro.baselines import EffiCutsBuilder, HiCutsBuilder
from repro.classbench import generate_classifier, generate_trace
from repro.engine import bench_classifier
from repro.harness import format_table

#: Large enough that vectorisation dominates compile+dispatch overheads,
#: small enough for CI.
NUM_RULES = 500
NUM_PACKETS = 30_000


def test_engine_throughput_speedup(run_once):
    ruleset = generate_classifier("acl1", NUM_RULES, seed=0)
    packets = generate_trace(ruleset, num_packets=NUM_PACKETS, seed=1)
    classifier = HiCutsBuilder(binth=8).build(ruleset)

    result = run_once(bench_classifier, classifier, packets,
                      flow_cache_size=4096)

    print("\n=== Engine throughput: HiCuts on acl1 ===")
    print(format_table(["engine", "packets/sec", "speedup"], result.rows()))

    assert result.mismatches == 0, \
        "compiled engine disagrees with the interpreter"
    assert result.compiled_pps > 0 and result.interpreter_pps > 0
    assert result.speedup >= 10.0, (
        f"compiled engine is only {result.speedup:.1f}x the interpreter; "
        f"need >= 10x"
    )


def test_engine_throughput_multitree(run_once):
    """The multi-tree dispatcher keeps its edge on partitioned classifiers."""
    ruleset = generate_classifier("fw1", NUM_RULES, seed=0)
    packets = generate_trace(ruleset, num_packets=NUM_PACKETS, seed=1)
    classifier = EffiCutsBuilder(binth=8).build(ruleset)

    result = run_once(bench_classifier, classifier, packets)

    print("\n=== Engine throughput: EffiCuts on fw1 "
          f"({result.num_subtrees} search trees) ===")
    print(format_table(["engine", "packets/sec", "speedup"], result.rows()))

    assert result.mismatches == 0
    assert result.speedup >= 5.0, (
        f"multi-tree compiled engine is only {result.speedup:.1f}x; need >= 5x"
    )
