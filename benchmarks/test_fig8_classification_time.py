"""Figure 8: classification time (tree depth) across the ClassBench suite.

Paper result: time-optimised NeuroCuts improves the median classification
time by 20 %/38 %/52 %/56 % over HiCuts/HyperCuts/EffiCuts/CutSplit and beats
the per-classifier minimum of all baselines by 18 % at the median.

This benchmark regenerates the same rows (one per classifier, one column per
algorithm) at the configured scale and prints them, along with the
improvement summary the paper reports.  Exact percentages are not asserted —
they depend on the training budget — but the result structure and the
direction of the qualitative checks are.
"""

from __future__ import annotations

from repro.harness import comparison_table, run_figure8, summary_table


def test_figure8_classification_time(scale, run_once):
    result = run_once(run_figure8, scale)

    print("\n=== Figure 8: classification time (tree depth) ===")
    print(comparison_table(result.values, result.metric))
    print()
    print(summary_table({
        "NeuroCuts vs min(all baselines)":
            result.neurocuts_vs_best_baseline.as_dict(),
    }))
    print("medians:", {k: round(v, 2) for k, v in result.medians.items()})

    # Structural checks: every algorithm produced a value for every classifier.
    labels = {label for label, _ in result.rows()}
    assert len(labels) == len(scale.specs())
    for algorithm, values in result.values.items():
        assert set(values) == labels
        assert all(v >= 1 for v in values.values())

    # Qualitative shape: NeuroCuts must be competitive with the strongest
    # baseline — within 2x of the best baseline median even at tiny training
    # budgets, and strictly better than the weakest baseline's median.
    best_baseline_median = min(
        v for k, v in result.medians.items() if k != "NeuroCuts"
    )
    worst_baseline_median = max(
        v for k, v in result.medians.items() if k != "NeuroCuts"
    )
    assert result.medians["NeuroCuts"] <= 2.0 * best_baseline_median
    assert result.medians["NeuroCuts"] <= worst_baseline_median * 1.5
