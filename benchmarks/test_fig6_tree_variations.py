"""Figure 6: tree variations sampled from one stochastic NeuroCuts policy.

Paper result: because the learnt policy is stochastic, drawing several
rollouts from the same trained policy yields distinct but similarly shaped
trees (visualised for acl4_1k), which is what lets NeuroCuts keep exploring
tree variations during training.
"""

from __future__ import annotations

from repro.harness import run_figure6
from repro.neurocuts import render_profile


def test_figure6_tree_variations(scale, run_once):
    result = run_once(run_figure6, scale, seed_name="acl4", num_variations=4)

    print("\n=== Figure 6: four trees sampled from one trained policy (acl4) ===")
    for index, profile in enumerate(result.profiles):
        print(f"\n--- variation {index + 1}: depth {profile.depth}, "
              f"{profile.num_nodes} nodes ---")
        print(render_profile(profile))

    assert len(result.profiles) == 4
    assert len(result.objectives) == 4

    # Every sampled variation is a complete, non-trivial tree.
    for profile in result.profiles:
        assert profile.num_nodes >= 1
        assert profile.depth >= 1

    # The variations stay within a reasonable band of each other: the policy
    # is stochastic but trained, so no sample should be wildly deeper than the
    # best one (the paper's four samples all land in the same depth range).
    best = min(result.objectives)
    worst = max(result.objectives)
    assert worst <= best * 4 + 4
