"""Figure 5: NeuroCuts learning to split an fw-family rule set.

Paper result: starting from a randomly initialised policy that builds large,
badly shaped trees, NeuroCuts learns to reduce depth over training and
converges to a compact tree (depth 12 on fw5_1k) dominated by SrcIP/SrcPort/
DstPort cuts, while HiCuts needs a depth-29 tree that is 15x larger.

This benchmark trains on the same family, snapshots the tree shape across
training, and prints the per-level node distributions plus the HiCuts
comparison.
"""

from __future__ import annotations

from repro.harness import run_figure5
from repro.neurocuts import render_profile


def test_figure5_learning_progress(scale, run_once):
    result = run_once(run_figure5, scale, seed_name="fw5")

    print("\n=== Figure 5: learning progress on fw5 ===")
    print(f"best depth over training: "
          f"{[round(v, 1) for v in result.best_depth_over_time]}")
    for iteration, profile in zip(result.snapshot_iterations, result.snapshots):
        print(f"\n--- policy snapshot after iteration {iteration} "
              f"(depth {profile.depth}, {profile.num_nodes} nodes) ---")
        print(render_profile(profile))
    print(f"\n--- HiCuts tree (depth {result.hicuts_profile.depth}, "
          f"{result.hicuts_profile.num_nodes} nodes) ---")
    print(render_profile(result.hicuts_profile))
    print(f"\nfinal NeuroCuts best depth: {result.final_best_depth}, "
          f"HiCuts depth: {result.hicuts_depth}")

    # Learning happened: the best depth never gets worse over training and
    # the final tree improves on (or matches) the first complete tree found.
    depths = result.best_depth_over_time
    assert len(depths) >= 2
    assert all(b <= a for a, b in zip(depths, depths[1:]))
    assert result.final_best_depth <= depths[0]

    # Snapshots carry per-level data (Figure 5's bars) for every level.
    for profile in result.snapshots:
        assert profile.num_nodes == sum(l.num_nodes for l in profile.levels)

    # The converged tree must be competitive with HiCuts on this fw set
    # (the paper shows a 2-3x win; at tiny budgets we require parity).
    assert result.final_best_depth <= result.hicuts_depth * 1.25
