"""Serving-layer benchmark: heavy multi-tenant traffic across hot swaps.

The acceptance bar for the serving layer: a generated multi-tenant flow
workload with mid-trace rule churn is served with *zero* dropped packets and
*zero* misclassifications — every answer equals linear search over the exact
ruleset generation its engine was compiled from, including the post-update
rulesets installed by the double-buffered hot swaps — while the run reports
packets/sec, latency percentiles, flow-cache hit rate, and swap telemetry.
"""

from __future__ import annotations

import random

from repro.harness import format_table
from repro.harness.serving import run_serving

NUM_TENANTS = 3
NUM_RULES = 150
NUM_PACKETS = 12_000
CHURN_EVENTS = 3


def test_hot_swap_zero_misclassification(run_once, benchmark):
    result = run_once(
        run_serving,
        num_tenants=NUM_TENANTS,
        num_rules=NUM_RULES,
        num_packets=NUM_PACKETS,
        num_flows=600,
        zipf_alpha=1.1,
        churn_events=CHURN_EVENTS,
        adds_per_event=5,
        removes_per_event=3,
        record_batches=True,
        seed=0,
    )
    report = result.report

    print("\n=== Multi-tenant serving with mid-run hot swaps ===")
    print(result.workload.describe())
    print(format_table(["metric", "value"], report.rows()))
    print(format_table(
        ["tenant", "rules", "epoch", "hit rate", "evictions", "swaps",
         "stalls"],
        result.tenant_rows(),
    ))
    benchmark.extra_info["pps"] = report.pps
    benchmark.extra_info["p50_ms"] = report.latency_ms(50.0)
    benchmark.extra_info["p99_ms"] = report.latency_ms(99.0)
    benchmark.extra_info["cache_hit_rate"] = report.cache_hit_rate
    benchmark.extra_info["swaps"] = report.swaps
    benchmark.extra_info["swap_stalls"] = report.swap_stalls

    # No dropped packets: every generated request was answered exactly once.
    assert report.num_requests == len(result.workload.requests)
    # The churn actually exercised the hot-swap path.
    assert report.num_updates == CHURN_EVENTS
    assert report.swaps >= 1, "no engine swap happened during the trace"

    # Differential exactness across the swaps: each served packet must equal
    # linear search over the ruleset generation its engine was built from.
    exactness = result.verify_exactness()
    assert exactness.num_checked == report.num_requests
    assert exactness.num_post_swap > 0, \
        "no packets were served by a post-update engine"
    assert exactness.num_mismatches == 0, (
        f"{exactness.num_mismatches} served answers disagree with linear "
        f"search across the hot swap"
    )

    # The live engines serve the *post-update* rulesets: packets sampled
    # inside every added rule classify identically under the swapped-in
    # engine and linear search over the updated ruleset.
    rng = random.Random(7)
    for update in result.workload.updates:
        slot = result.registry.slot(update.tenant_id)
        post = slot.ruleset_at(slot.epoch)
        for rule in update.adds:
            assert rule in post.rules, "added rule missing post-swap"
            packet = post.sample_matching_packet(rule, rng)
            expected = post.classify(packet)
            actual = slot.engine().classify(packet)
            assert (actual.priority if actual else None) == \
                (expected.priority if expected else None)
        for rule in update.removes:
            assert rule not in post.rules, "removed rule still live post-swap"

    # Telemetry sanity: the reported figures are real measurements.
    assert report.pps > 0
    assert report.latency_ms(50.0) <= report.latency_ms(90.0) \
        <= report.latency_ms(99.0)
    assert 0.0 < report.cache_hit_rate <= 1.0
    assert report.mean_batch_size > 1.0, \
        "micro-batcher never coalesced anything"


def test_serving_cache_locality_pays(run_once):
    """Zipf flow locality must translate into real flow-cache hit rates."""
    result = run_once(
        run_serving,
        num_tenants=2,
        num_rules=120,
        num_packets=8_000,
        num_flows=300,
        zipf_alpha=1.3,
        churn_events=0,
        flow_cache_size=4096,
        seed=1,
    )
    report = result.report
    print("\n=== Serving cache locality (no churn) ===")
    print(format_table(["metric", "value"], report.rows()))
    assert report.swaps == 0 and report.num_updates == 0
    assert report.cache_hit_rate >= 0.5, (
        f"flow cache hit rate {report.cache_hit_rate:.1%} too low for a "
        f"Zipf(1.3) workload"
    )
