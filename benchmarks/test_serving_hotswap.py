"""Serving-layer benchmark: heavy multi-tenant traffic across hot swaps.

The acceptance bar for the serving layer: the pinned ``"hotswap"`` serving
scorecard (``repro.harness.scorecard.SERVING_SCORECARDS``) — a generated
multi-tenant flow workload with mid-trace rule churn — is served with *zero*
dropped packets and *zero* misclassifications, every answer equal to linear
search over the exact ruleset generation its engine was compiled from,
including the post-update rulesets installed by the double-buffered hot
swaps.

The quantitative bar is the checked-in baseline record
(``benchmarks/baselines/BENCH_serving_hotswap.json``): deterministic
counters — cache hits/invalidations, batch counts, swap tallies — gate
bit-for-bit, while pps/latency timings are tolerance-banded only on a
comparable machine.  This replaces the old hard-coded ratio asserts
(``cache_hit_rate >= 0.5``, ``mean_batch_size > 1.0``): a cache-locality
regression now shows up as a ``cache_hits`` counter diff against the
baseline, not as a threshold that a slow CI container trips over.
Regenerate the baselines with ``scripts/make_bench_baselines.py`` when a
counter change is intentional.
"""

from __future__ import annotations

import random

from repro.harness import format_table
from repro.harness.scorecard import (SERVING_SCORECARDS,
                                     run_serving_scorecard,
                                     serving_bench_filename)
from repro.harness.serving import serving_bench_record

CFG = SERVING_SCORECARDS["hotswap"]


def test_hot_swap_zero_misclassification(run_once, benchmark, bench_gate):
    result = run_once(run_serving_scorecard, "hotswap")
    report = result.report

    print("\n=== Multi-tenant serving with mid-run hot swaps ===")
    print(result.workload.describe())
    print(format_table(["metric", "value"], report.rows()))
    print(format_table(
        ["tenant", "rules", "epoch", "hit rate", "evictions", "swaps",
         "stalls"],
        result.tenant_rows(),
    ))
    benchmark.extra_info["pps"] = report.pps
    benchmark.extra_info["p50_ms"] = report.latency_ms(50.0)
    benchmark.extra_info["p99_ms"] = report.latency_ms(99.0)
    benchmark.extra_info["cache_hit_rate"] = report.cache_hit_rate
    benchmark.extra_info["swaps"] = report.swaps
    benchmark.extra_info["swap_stalls"] = report.swap_stalls

    # No dropped packets: every generated request was answered exactly once.
    assert report.num_requests == len(result.workload.requests)
    # The churn actually exercised the hot-swap path.
    assert report.num_updates == CFG["churn_events"]
    assert report.swaps >= 1, "no engine swap happened during the trace"

    # Differential exactness across the swaps: each served packet must equal
    # linear search over the ruleset generation its engine was built from.
    exactness = result.verify_exactness()
    assert exactness.num_checked == report.num_requests
    assert exactness.num_post_swap > 0, \
        "no packets were served by a post-update engine"
    assert exactness.num_mismatches == 0, (
        f"{exactness.num_mismatches} served answers disagree with linear "
        f"search across the hot swap"
    )

    # The live engines serve the *post-update* rulesets: packets sampled
    # inside every added rule classify identically under the swapped-in
    # engine and linear search over the updated ruleset.
    rng = random.Random(7)
    for update in result.workload.updates:
        slot = result.registry.slot(update.tenant_id)
        post = slot.ruleset_at(slot.epoch)
        for rule in update.adds:
            assert rule in post.rules, "added rule missing post-swap"
            packet = post.sample_matching_packet(rule, rng)
            expected = post.classify(packet)
            actual = slot.engine().classify(packet)
            assert (actual.priority if actual else None) == \
                (expected.priority if expected else None)
        for rule in update.removes:
            assert rule not in post.rules, "removed rule still live post-swap"

    # Telemetry sanity: the reported figures are real measurements.
    assert report.pps > 0
    assert report.latency_ms(50.0) <= report.latency_ms(90.0) \
        <= report.latency_ms(99.0)

    # The quantitative bar: this exact run's record vs the checked-in
    # baseline.  Cache locality, batching efficiency, and swap behaviour all
    # gate here as exact counter equality.
    record = serving_bench_record(report, name="serving-hotswap",
                                  config=dict(CFG), exactness=exactness)
    bench_gate(record, serving_bench_filename("hotswap"))
