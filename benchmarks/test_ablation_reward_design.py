"""Ablations of the NeuroCuts reward design choices (DESIGN.md ablation index).

Two design decisions from Section 4.2 / 5.1 are ablated here:

* **Dense subtree rewards vs a single root reward** — the paper argues that
  crediting each decision with its own subtree's objective ("subtree" mode)
  is what makes learning practical; the ablation gives every decision only
  the whole-tree reward ("root" mode).
* **Reward scaling** — linear f(x) = x vs logarithmic f(x) = log x when
  mixing the time and space objectives (the paper uses log when c < 1).

Both ablations train two configurations on the same classifier with the same
budget and report the objective of the best tree found.
"""

from __future__ import annotations

import dataclasses

from repro.classbench import generate_classifier
from repro.harness import format_table
from repro.neurocuts import NeuroCutsTrainer
from repro.tree import validate_classifier


def _train(scale, ruleset, **config_overrides):
    config = scale.neurocuts_config(
        max_timesteps_total=max(4000, scale.neurocuts_timesteps // 3),
        **config_overrides,
    )
    result = NeuroCutsTrainer(ruleset, config).train()
    classifier = result.best_classifier()
    assert validate_classifier(classifier, num_random_packets=80).is_correct
    stats = classifier.stats()
    return {
        "best_objective": result.best_objective,
        "classification_time": stats.classification_time,
        "bytes_per_rule": stats.bytes_per_rule,
    }


def test_ablation_dense_vs_root_reward(scale, run_once):
    """Dense per-subtree rewards should learn at least as well as root-only."""

    def run_ablation():
        ruleset = generate_classifier("fw1", 70, seed=2)
        dense = _train(scale, ruleset, reward_mode="subtree",
                       time_space_coeff=1.0, seed=0)
        sparse = _train(scale, ruleset, reward_mode="root",
                        time_space_coeff=1.0, seed=0)
        return dense, sparse

    dense, sparse = run_once(run_ablation)
    print("\n=== Ablation: dense subtree rewards vs single root reward ===")
    print(format_table(
        ["variant", "best objective", "classification time", "bytes/rule"],
        [["subtree (paper)", dense["best_objective"],
          dense["classification_time"], dense["bytes_per_rule"]],
         ["root only (ablation)", sparse["best_objective"],
          sparse["classification_time"], sparse["bytes_per_rule"]]],
    ))
    # Both must produce working classifiers; dense credit assignment should
    # not be worse than the noisy root-only variant by more than noise.
    assert dense["best_objective"] <= sparse["best_objective"] * 1.5


def test_ablation_reward_scaling(scale, run_once):
    """Linear vs log reward scaling for a mixed time/space objective."""

    def run_ablation():
        ruleset = generate_classifier("fw3", 70, seed=3)
        results = {}
        for scaling in ("linear", "log"):
            results[scaling] = _train(
                scale, ruleset, reward_scaling=scaling, time_space_coeff=0.5,
                partition_mode="simple", seed=0,
            )
        return results

    results = run_once(run_ablation)
    print("\n=== Ablation: reward scaling for the mixed objective (c = 0.5) ===")
    print(format_table(
        ["scaling", "classification time", "bytes/rule"],
        [[name, r["classification_time"], r["bytes_per_rule"]]
         for name, r in results.items()],
    ))
    for r in results.values():
        assert r["classification_time"] >= 1
        assert r["bytes_per_rule"] > 0
