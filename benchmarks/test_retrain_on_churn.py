"""Acceptance benchmark for the adaptive serving loop (retrain + sharding).

Two guarantees are asserted end to end, each against its pinned serving
scorecard (``repro.harness.scorecard.SERVING_SCORECARDS``) and checked-in
baseline record:

1. **Retrain-on-churn** (``BENCH_serving_retrain.json``): a churn-heavy
   multi-tenant workload pushes every tenant past its retrain threshold;
   NeuroCuts retrains are triggered mid-run, and the freshly trained *trees*
   (not just recompiled arrays) hot-swap into the serving path with zero
   dropped and zero misclassified packets — every answer still equals linear
   search over the exact ruleset generation its engine served.  The
   scorecard pins ``backend="serial"`` retrains: background training lands
   on the wall clock, which would make the counters machine-dependent.
2. **Tenant-sharded serving** (``BENCH_serving_sharded.json``): the same
   scenario sharded across worker processes serves the identical request set
   with *exactly* the serial run's deterministic counters (sharding is exact
   by construction).  The old hard-coded ``speedup >= 1.1`` assert measured
   the CI machine, not the code; the speedup is now a ``sharded_speedup``
   timing in the baseline, tolerance-banded only on a comparable machine
   with parallel headroom.

Regenerate the baselines with ``scripts/make_bench_baselines.py`` when a
counter change is intentional.
"""

from __future__ import annotations

from repro.harness import format_table
from repro.harness.scorecard import (SERVING_SCORECARDS,
                                     run_serving_scorecard,
                                     serving_bench_filename)
from repro.harness.serving import serving_bench_record


def test_retrain_on_churn_zero_misclassification(run_once, benchmark,
                                                 bench_gate):
    cfg = SERVING_SCORECARDS["retrain"]
    result = run_once(run_serving_scorecard, "retrain")
    report = result.report

    print("\n=== Retrain-on-churn serving loop ===")
    print(result.workload.describe())
    print(format_table(["metric", "value"], report.rows()))
    print(format_table(
        ["tenant", "rules", "epoch", "hit rate", "evictions", "swaps",
         "stalls"],
        result.tenant_rows(),
    ))
    benchmark.extra_info["pps"] = report.pps
    benchmark.extra_info["retrains_triggered"] = report.retrains_triggered
    benchmark.extra_info["retrains_installed"] = report.retrains_installed
    benchmark.extra_info["swaps"] = report.swaps

    # The churn demonstrably crossed every tenant's threshold and the
    # retrains landed.  The scorecard pins quality_gate=False (it gates the
    # adoption mechanics; the gate itself has dedicated tests), so every
    # triggered retrain installs and none is rejected.
    assert report.retrains_triggered >= cfg["tenants"], \
        "churn never pushed a tenant past its retrain threshold"
    assert report.retrains_installed == report.retrains_triggered
    assert report.retrains_rejected == 0
    assert report.retrains_discarded == 0

    # Each rule update swaps once and each retrain adoption swaps once —
    # nothing else may move an engine, and nothing may be lost.
    assert report.swaps == report.num_updates + report.retrains_installed

    # No dropped packets: every generated request was answered exactly once.
    assert report.num_requests == len(result.workload.requests)

    # Zero misclassifications across updates AND tree adoptions: every
    # served packet equals linear search over its engine epoch's ruleset.
    exactness = result.verify_exactness()
    assert exactness.num_checked == report.num_requests
    assert exactness.num_post_swap > 0
    assert exactness.num_mismatches == 0, (
        f"{exactness.num_mismatches} answers disagree with linear search "
        f"across the retrain swap"
    )

    # The retrained trees serve the *latest* rulesets: counters restarted.
    for tenant_id, entry in report.per_tenant.items():
        assert not entry["retrain"]["needs_retraining"], \
            f"{tenant_id} still wants retraining after its retrain landed"

    record = serving_bench_record(report, name="serving-retrain",
                                  config=dict(cfg), exactness=exactness)
    bench_gate(record, serving_bench_filename("retrain"))


def test_sharded_serving_merged_telemetry_and_speedup(run_once, benchmark,
                                                      bench_gate):
    cfg = SERVING_SCORECARDS["sharded"]
    serial = run_serving_scorecard("sharded", serving_workers=1)
    sharded = run_once(run_serving_scorecard, "sharded")
    report = sharded.report

    print("\n=== Tenant-sharded serving (2 worker processes) ===")
    print(format_table(["metric", "value"], sharded.rows()))
    print(format_table(["shard", "tenants", "requests", "wall"],
                       sharded.shard_rows()))
    speedup = report.pps / max(serial.report.pps, 1e-12)
    print(f"sharded speedup over serial: {speedup:.2f}x "
          f"(informational; the baseline gates it where comparable)")
    benchmark.extra_info["pps_sharded"] = report.pps
    benchmark.extra_info["pps_serial"] = serial.report.pps
    benchmark.extra_info["sharded_speedup"] = speedup

    # Merged telemetry: every request served exactly once, across shards.
    assert report.num_requests == len(sharded.workload.requests)
    assert sharded.num_shards == cfg["serving_workers"]

    # Sharding is exact: the merged deterministic counters equal the serial
    # run's, bit for bit — not just the same request count.
    assert report.deterministic_counters() == \
        serial.report.deterministic_counters()

    # Exactness holds shard-locally and across the process boundary.
    exactness = sharded.verify_exactness()
    assert exactness.num_checked == report.num_requests
    assert exactness.num_mismatches == 0

    record = serving_bench_record(report, name="serving-sharded",
                                  config=dict(cfg), exactness=exactness)
    record.timings["sharded_speedup"] = speedup
    bench_gate(record, serving_bench_filename("sharded"))
