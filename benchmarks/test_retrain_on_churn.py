"""Acceptance benchmark for the adaptive serving loop (retrain + sharding).

Two guarantees are asserted end to end:

1. **Retrain-on-churn**: a churn-heavy multi-tenant workload pushes every
   tenant past its retrain threshold; background NeuroCuts retrains are
   triggered mid-run, and the freshly trained *trees* (not just recompiled
   arrays) hot-swap into the serving path with zero dropped and zero
   misclassified packets — every answer still equals linear search over the
   exact ruleset generation its engine served.
2. **Tenant-sharded serving**: the same scenario sharded across N worker
   processes serves the identical request set with exact merged telemetry;
   the parallel speedup assertion is gated on available CPUs (a 1-core CI
   container runs the machinery but skips the bar).
"""

from __future__ import annotations

import os

from repro.harness import format_table
from repro.harness.serving import run_serving
from repro.serve import RetrainPolicy
from repro.workloads import ChurnConfig

NUM_TENANTS = 2
NUM_RULES = 60
NUM_PACKETS = 8_000
RETRAIN_THRESHOLD = 6


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_retrain_on_churn_zero_misclassification(run_once, benchmark):
    # Size the churn so every tenant crosses the retrain threshold with
    # trace left to serve under the retrained tree.
    churn = ChurnConfig.forcing_retrain(RETRAIN_THRESHOLD,
                                        num_tenants=NUM_TENANTS,
                                        adds_per_event=4,
                                        removes_per_event=2)
    result = run_once(
        run_serving,
        num_tenants=NUM_TENANTS,
        families=("acl1", "ipc1"),
        num_rules=NUM_RULES,
        num_packets=NUM_PACKETS,
        num_flows=400,
        churn_events=churn.num_events,
        adds_per_event=churn.adds_per_event,
        removes_per_event=churn.removes_per_event,
        retrain_threshold=RETRAIN_THRESHOLD,
        # The retrain runs on a background thread while serving continues;
        # a tiny budget keeps the benchmark CI-sized.
        retrain_policy=RetrainPolicy(timesteps=400, max_iterations=2,
                                     backend="thread", seed=0),
        record_batches=True,
        seed=0,
    )
    report = result.report

    print("\n=== Retrain-on-churn serving loop ===")
    print(result.workload.describe())
    print(format_table(["metric", "value"], report.rows()))
    print(format_table(
        ["tenant", "rules", "epoch", "hit rate", "evictions", "swaps",
         "stalls"],
        result.tenant_rows(),
    ))
    benchmark.extra_info["pps"] = report.pps
    benchmark.extra_info["retrains_triggered"] = report.retrains_triggered
    benchmark.extra_info["retrains_installed"] = report.retrains_installed
    benchmark.extra_info["swaps"] = report.swaps

    # The churn demonstrably crossed every tenant's threshold and the
    # background retrains landed.
    assert report.retrains_triggered >= NUM_TENANTS, \
        "churn never pushed a tenant past its retrain threshold"
    assert report.retrains_installed == report.retrains_triggered
    assert report.retrains_discarded == 0

    # Each rule update swaps once and each retrain adoption swaps once —
    # nothing else may move an engine, and nothing may be lost.
    assert report.swaps == report.num_updates + report.retrains_installed

    # No dropped packets: every generated request was answered exactly once.
    assert report.num_requests == len(result.workload.requests)

    # Zero misclassifications across updates AND tree adoptions: every
    # served packet equals linear search over its engine epoch's ruleset.
    exactness = result.verify_exactness()
    assert exactness.num_checked == report.num_requests
    assert exactness.num_post_swap > 0
    assert exactness.num_mismatches == 0, (
        f"{exactness.num_mismatches} answers disagree with linear search "
        f"across the retrain swap"
    )

    # The retrained trees serve the *latest* rulesets: counters restarted.
    for tenant_id, entry in report.per_tenant.items():
        assert not entry["retrain"]["needs_retraining"], \
            f"{tenant_id} still wants retraining after its retrain landed"


def test_sharded_serving_merged_telemetry_and_speedup(run_once, benchmark):
    kwargs = dict(
        num_tenants=4,
        families=("acl1", "ipc1"),
        num_rules=NUM_RULES,
        num_packets=20_000,
        num_flows=600,
        churn_events=2,
        record_batches=True,
        seed=1,
    )
    serial = run_serving(serving_workers=1, **kwargs)
    sharded = run_once(run_serving, serving_workers=2,
                       serving_backend="process", **kwargs)
    report = sharded.report

    print("\n=== Tenant-sharded serving (2 worker processes) ===")
    print(format_table(["metric", "value"], sharded.rows()))
    print(format_table(["shard", "tenants", "requests", "wall"],
                       sharded.shard_rows()))
    benchmark.extra_info["pps_sharded"] = report.pps
    benchmark.extra_info["pps_serial"] = serial.report.pps

    # Merged telemetry: every request served exactly once, across shards.
    assert report.num_requests == len(sharded.workload.requests)
    assert report.num_requests == serial.report.num_requests
    assert report.num_updates == serial.report.num_updates
    assert sorted(report.per_tenant) == sorted(serial.report.per_tenant)
    assert sharded.num_shards == 2

    # Exactness holds shard-locally and across the process boundary.
    exactness = sharded.verify_exactness()
    assert exactness.num_checked == report.num_requests
    assert exactness.num_mismatches == 0

    # Parallel speedup only exists with real cores; gate it (CI has 1).
    cpus = _available_cpus()
    if cpus >= 2:
        speedup = report.pps / serial.report.pps
        assert speedup >= 1.1, (
            f"expected sharded serving to beat single-process on {cpus} "
            f"CPUs, got {speedup:.2f}x"
        )
    else:
        print(f"only {cpus} CPU available; skipping the speedup assertion "
              f"(worker processes cannot beat serial on one core)")
