"""Table 1: NeuroCuts hyperparameters.

The table's default values must be the defaults of
:class:`repro.neurocuts.NeuroCutsConfig`, and every value listed in the
sweep sets must be accepted and produce a runnable configuration.  A short
training run with a non-default sweep combination checks the swept values
actually work end to end.
"""

from __future__ import annotations

from repro.classbench import generate_classifier
from repro.harness import format_table, table1_rows
from repro.harness.experiments import TABLE1_SWEEPS
from repro.neurocuts import NeuroCutsConfig, NeuroCutsTrainer
from repro.tree import validate_classifier


def test_table1_defaults_match_paper(benchmark):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    print("\n=== Table 1: hyperparameters (paper default vs this library) ===")
    print(format_table(["hyperparameter", "paper", "ours"],
                       [[n, str(p), str(o)] for n, p, o in rows]))
    mismatches = [name for name, paper, ours in rows if paper != ours]
    assert mismatches == []


def test_table1_swept_values_run(scale, run_once):
    """Each swept hyperparameter value yields a config that trains and is correct."""

    def run_sweep():
        ruleset = generate_classifier("acl2", 60, seed=1)
        outcomes = {}
        for name, values in TABLE1_SWEEPS.items():
            # The non-default value exercises the code path the default skips.
            value = values[-1] if values[-1] != getattr(NeuroCutsConfig(), name,
                                                        None) else values[0]
            config = scale.neurocuts_config(
                max_timesteps_total=1500, timesteps_per_batch=500,
                **{name: value},
            )
            result = NeuroCutsTrainer(ruleset, config).train()
            classifier = result.best_classifier()
            correct = validate_classifier(classifier,
                                          num_random_packets=80).is_correct
            outcomes[f"{name}={value}"] = (result.best_objective, correct)
        return outcomes

    outcomes = run_once(run_sweep)
    print("\n=== Table 1 sweep smoke runs ===")
    for key, (objective, correct) in outcomes.items():
        print(f"  {key:<40} objective={objective:10.2f} correct={correct}")
    assert all(correct for _, correct in outcomes.values())
