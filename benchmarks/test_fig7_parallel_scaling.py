"""Figure 7: rollout-collection throughput vs number of parallel workers.

Paper result: NeuroCuts training scales near-linearly as decision-tree
rollouts are collected on more parallel workers.

This benchmark reproduces the curve with the actor/learner trainer: for each
worker count, a persistent process pool collects the same per-round timestep
budget sharded across its workers, and throughput (timesteps/sec and
rollouts/sec) is measured over several steady-state rounds after a warm-up.

The throughput assertion (>= 2x at 4 workers vs serial) only makes sense
with enough physical parallelism, so it is gated on the CPUs actually
available to this process; the structural shape of the result is asserted
everywhere.
"""

from __future__ import annotations

import os

from repro.harness import run_scaling, series_table


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_figure7_parallel_scaling(scale, run_once):
    worker_counts = (1, 2, 4)
    result = run_once(run_scaling, scale, worker_counts=worker_counts)

    print("\n=== Figure 7: rollout-collection scaling ===")
    print(f"classifier: {result.classifier}, "
          f"{result.timesteps_per_round} timesteps/round x {result.rounds} rounds")
    print(series_table(result.series()))

    # Structural checks: one point per worker count, everything positive,
    # and the 1-worker point is the speedup baseline by construction.
    assert [p.workers for p in result.points] == list(worker_counts)
    for point in result.points:
        assert point.timesteps_per_sec > 0
        assert point.rollouts_per_sec > 0
        assert point.wall_time_s > 0
    assert result.speedup_at(1) == 1.0

    # Throughput: the acceptance bar is >= 2x at 4 workers vs serial, which
    # requires real cores to parallelise over.
    cpus = _available_cpus()
    if cpus >= 4:
        assert result.speedup_at(4) >= 2.0, (
            f"expected >= 2x rollout throughput at 4 workers on {cpus} CPUs, "
            f"got {result.speedup_at(4):.2f}x"
        )
    elif cpus >= 2:
        assert result.speedup_at(2) >= 1.3, (
            f"expected parallel speedup at 2 workers on {cpus} CPUs, "
            f"got {result.speedup_at(2):.2f}x"
        )
    else:
        print(f"only {cpus} CPU available; skipping the speedup assertion "
              f"(process parallelism cannot beat serial on one core)")
