"""Figure 11: sweeping the time-space coefficient c.

Paper result: with the simple partition mode and log reward scaling, the
median classification time improves roughly 2x as c goes to 1, and the
median bytes per rule improves roughly 2x as c goes to 0 — i.e. c is an
effective knob for trading the two objectives.
"""

from __future__ import annotations

import dataclasses

from repro.classbench import ClassifierSpec
from repro.harness import run_figure11, series_table


def test_figure11_time_space_tradeoff(scale, run_once):
    # Two classifiers keep this sweep (4 coefficients x classifiers x a full
    # training run each) within the benchmark time budget at tiny scale.
    specs = [
        ClassifierSpec(seed_name="fw5", scale="1k",
                       num_rules=scale.scale_sizes[scale.scales[0]],
                       seed=scale.seed),
        ClassifierSpec(seed_name="acl1", scale="1k",
                       num_rules=scale.scale_sizes[scale.scales[0]],
                       seed=scale.seed),
    ]
    sweep_scale = dataclasses.replace(
        scale, neurocuts_timesteps=max(4000, scale.neurocuts_timesteps // 3)
    )
    result = run_once(run_figure11, sweep_scale,
                      coefficients=(0.0, 0.1, 0.5, 1.0), specs=specs)
    series = result.series()

    print("\n=== Figure 11: time-space coefficient sweep ===")
    print(series_table(series))

    assert series["c"] == [0.0, 0.1, 0.5, 1.0]
    assert all(v > 0 for v in series["median_classification_time"])
    assert all(v > 0 for v in series["median_bytes_per_rule"])

    # Qualitative shape: the time-optimised end (c = 1) should classify at
    # least as fast as the space-optimised end (c = 0), and the
    # space-optimised end should not use more memory than the time-optimised
    # end (allowing slack for the small training budgets).
    time_c0 = series["median_classification_time"][0]
    time_c1 = series["median_classification_time"][-1]
    space_c0 = series["median_bytes_per_rule"][0]
    space_c1 = series["median_bytes_per_rule"][-1]
    assert time_c1 <= time_c0 * 1.25
    assert space_c0 <= space_c1 * 1.25
