"""Figure 10: NeuroCuts building on the EffiCuts partitioner vs plain EffiCuts.

Paper result: with only the EffiCuts partition action allowed, NeuroCuts
produces trees that are up to 10x more space-efficient than EffiCuts, with a
29 % median space improvement and roughly unchanged classification time
(Figure 10a/b show the sorted per-classifier improvement rankings).
"""

from __future__ import annotations

from repro.harness import run_figure10, summary_table
from repro.metrics import sorted_improvements


def test_figure10_efficuts_improvement(scale, run_once):
    result = run_once(run_figure10, scale)

    print("\n=== Figure 10: NeuroCuts (EffiCuts partitioner) vs EffiCuts ===")
    print(summary_table({
        "space improvement (1 - ours/EffiCuts)":
            result.space_improvement.as_dict(),
        "time improvement (1 - ours/EffiCuts)":
            result.time_improvement.as_dict(),
    }))
    print("sorted space improvements (Figure 10a x-axis order):",
          [round(v, 3) for v in
           sorted_improvements(result.space_improvement.per_classifier)])
    print("sorted time improvements (Figure 10b x-axis order):",
          [round(v, 3) for v in
           sorted_improvements(result.time_improvement.per_classifier)])

    # Structure: one improvement per classifier in the suite.
    assert len(result.space_improvement.per_classifier) == len(scale.specs())
    assert len(result.time_improvement.per_classifier) == len(scale.specs())

    # Qualitative shape: improvements are bounded (1 - a/b can never exceed 1)
    # and the time comparison stays in the same ballpark as EffiCuts (the
    # paper reports "about the same time efficiency").
    assert all(v <= 1.0 for v in result.space_improvement.per_classifier.values())
    assert result.time_improvement.median >= -2.0
