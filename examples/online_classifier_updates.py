#!/usr/bin/env python
"""Handling classifier updates without retraining (paper Section 4.2).

Network operators add and remove rules continuously (new devices, revoked
access).  NeuroCuts handles small updates by editing the existing decision
tree in place — inserting new rules into the leaves whose regions they
intersect and deleting removed rules from leaves — and only retrains once
enough updates accumulate.  This example walks through that lifecycle and
verifies correctness after every step.
"""

from __future__ import annotations

import random

from repro.classbench import generate_classifier
from repro.neurocuts import IncrementalUpdater, NeuroCutsConfig, NeuroCutsTrainer
from repro.rules import Rule
from repro.tree import TreeClassifier, validate_classifier


def main() -> None:
    ruleset = generate_classifier("ipc1", 150, seed=0)
    print(f"Initial classifier: {len(ruleset)} rules")

    config = NeuroCutsConfig(
        time_space_coeff=1.0, partition_mode="none", reward_scaling="linear",
        hidden_sizes=(64, 64), max_timesteps_total=10_000,
        timesteps_per_batch=1_000, max_timesteps_per_rollout=500,
        max_tree_depth=40, num_sgd_iters=10, sgd_minibatch_size=256,
        learning_rate=1e-3, leaf_threshold=16, seed=0,
    )
    result = NeuroCutsTrainer(ruleset, config).train()
    tree = result.best_tree
    print(f"Trained tree: depth {tree.depth()}, {tree.num_nodes()} nodes")

    updater = IncrementalUpdater(tree, retrain_threshold=20)
    rng = random.Random(7)
    next_priority = max(r.priority for r in tree.ruleset) + 1

    # Add ten access-control rules for "new devices" (fresh /32 sources).
    for i in range(10):
        new_rule = Rule.from_prefixes(
            src_ip=f"203.0.{rng.randrange(256)}.{rng.randrange(256)}/32",
            dst_port=(443, 444),
            protocol=6,
            priority=next_priority + i,
            name=f"new_device_{i}",
        )
        leaves_touched = updater.add_rule(new_rule)
        print(f"  + added {new_rule.name} (inserted into {leaves_touched} leaves)")

    # Remove five of the original rules ("revoked access").
    removable = [r for r in list(tree.ruleset)[:10] if r.num_wildcard_dims() < 5]
    for rule in removable[:5]:
        removed_from = updater.remove_rule(rule)
        print(f"  - removed {rule.name or rule.priority} "
              f"(cleared from {removed_from} leaves)")

    classifier = TreeClassifier(tree.ruleset, [tree])
    report = validate_classifier(classifier, num_random_packets=500)
    print(f"\nAfter updates: {len(tree.ruleset)} rules, "
          f"validation mismatches = {report.num_mismatches}")
    print(f"Updates applied: {updater.stats.total_updates}; "
          f"retraining advised: {updater.needs_retraining()}")


if __name__ == "__main__":
    main()
