#!/usr/bin/env python
"""The perf observatory end to end: scorecards, metrics, regression gate.

Runs the canonical bench scorecard (``repro.harness.scorecard``) — one
small compiled-engine benchmark and one small multi-tenant serving run —
writes both as versioned ``BENCH_<area>.json`` records, prints the phase
metrics the serving stack collected along the way (compile, swap install,
batch flush, queue wait), and finally gates the fresh records against the
checked-in baselines under ``benchmarks/baselines/`` exactly like the CI
``bench-scorecard`` job does: deterministic counters must match bit-for-bit,
timings are tolerance-banded — but only when this machine is big enough
(>= 8 CPUs) *and* matches the machine class that recorded the baseline
(same fingerprint ``cpu_count``); otherwise timing checks are skipped, as
on CI's small hosted runners, and only the counters gate.
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

from repro.harness import format_table
from repro.harness.scorecard import run_scorecard
from repro.harness.serving import run_serving
from repro.obs import compare_records, read_bench, timings_comparable

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_DIR = REPO_ROOT / "benchmarks" / "baselines"

#: Timing checks need real parallel headroom to be meaningful.  GitHub's
#: hosted runners have exactly 4 vCPUs, so the floor sits above them and
#: CI gates counters only (see docs/observability.md).
MIN_CPUS_FOR_TIMINGS = 8


def main() -> int:
    # 1. A quick serving run to show the metrics registry itself: every
    #    lifecycle phase shows up as a timing series with raw samples.
    result = run_serving(num_tenants=2, num_rules=60, num_packets=2000,
                        num_flows=100, background_swaps=False, seed=0)
    metrics = result.report.metrics
    print("phase metrics of a small serving run:")
    print(format_table(
        ["timing series", "count", "mean (ms)", "p99 (ms)"],
        [[name, series.count, f"{series.mean * 1e3:.3f}",
          f"{series.percentile(99) * 1e3:.3f}"]
         for name, series in sorted(metrics.timings.items())],
    ))
    print(format_table(
        ["counter", "value"],
        [[name, counter.value]
         for name, counter in sorted(metrics.counters.items())],
    ))

    # 2. The canonical scorecard: two pinned benchmark runs, written as
    #    versioned JSON records.
    out_dir = Path(tempfile.mkdtemp(prefix="bench_scorecard_"))
    paths = run_scorecard(out_dir)
    for area, path in sorted(paths.items()):
        record = read_bench(path)
        print(f"\n{area} scorecard -> {path}")
        print(f"  {len(record.counters)} counters, "
              f"{len(record.timings)} timings, "
              f"config {record.config}")

    # 3. The regression gate against the checked-in baselines.  Timing
    #    bands engage only on a machine with parallel headroom AND the
    #    same machine class as the baseline (same fingerprint cpu_count)
    #    — the identical policy the CI bench-scorecard job applies.
    enough_cpus = (os.cpu_count() or 1) >= MIN_CPUS_FOR_TIMINGS
    print(f"\ngating against {BASELINE_DIR}")
    failed = False
    for area, path in sorted(paths.items()):
        baseline_path = BASELINE_DIR / path.name
        fresh, baseline = read_bench(path), read_bench(baseline_path)
        comparable, reason = timings_comparable(fresh, baseline)
        check_timings = enough_cpus and comparable
        if not check_timings:
            why = reason if not comparable else \
                f"<{MIN_CPUS_FOR_TIMINGS} CPUs"
            print(f"  {area}: timing checks skipped ({why})")
        report = compare_records(fresh, baseline,
                                 check_timings=check_timings)
        verdict = "ok" if report.ok else \
            f"{len(report.failures)} regression(s)"
        print(f"  {area}: {len(report.checks)} checks, {verdict}")
        for check in report.failures:
            print(f"    FAIL {check.kind}:{check.metric} "
                  f"run={check.run_value} baseline={check.baseline_value} "
                  f"({check.detail})")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
