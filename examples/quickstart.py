#!/usr/bin/env python
"""Quickstart: train NeuroCuts on a small classifier and compare with HiCuts.

Run with::

    python examples/quickstart.py

The script generates a ClassBench-style ACL classifier, trains a NeuroCuts
policy for a few thousand environment steps, extracts the best decision tree
it found, checks the tree classifies exactly like a linear rule scan, and
prints a side-by-side comparison against the HiCuts heuristic.
"""

from __future__ import annotations

from repro.baselines import HiCutsBuilder
from repro.classbench import generate_classifier
from repro.neurocuts import NeuroCutsConfig, NeuroCutsTrainer
from repro.tree import validate_classifier


def main() -> None:
    # 1. A synthetic ClassBench-style classifier (ACL seed family, 200 rules).
    ruleset = generate_classifier("acl1", 200, seed=0)
    print(f"Generated classifier {ruleset.name!r} with {len(ruleset)} rules")

    # 2. Configure NeuroCuts.  The defaults follow the paper; here we shrink
    #    the training budget so the example finishes in well under a minute.
    config = NeuroCutsConfig(
        time_space_coeff=1.0,          # optimise classification time
        partition_mode="none",
        reward_scaling="linear",
        hidden_sizes=(64, 64),
        max_timesteps_total=12_000,
        timesteps_per_batch=1_000,
        max_timesteps_per_rollout=500,
        max_tree_depth=40,
        num_sgd_iters=10,
        sgd_minibatch_size=256,
        learning_rate=1e-3,
        leaf_threshold=16,
        seed=0,
    )

    # 3. Train and extract the best tree the policy discovered.
    trainer = NeuroCutsTrainer(ruleset, config)
    result = trainer.train()
    neurocuts = result.best_classifier()
    print(f"Trained for {result.timesteps_total} steps "
          f"over {len(result.history)} PPO iterations")

    # 4. Correctness: the learnt tree must agree with linear search.
    report = validate_classifier(neurocuts, num_random_packets=500)
    print(f"Validation: {report.num_packets} packets checked, "
          f"{report.num_mismatches} mismatches")

    # 5. Compare against HiCuts built for the same classifier.
    hicuts = HiCutsBuilder(binth=config.leaf_threshold).build_with_stats(ruleset)
    ours = neurocuts.stats()
    print("\n                   classification time    bytes per rule")
    print(f"  NeuroCuts        {ours.classification_time:>19d}    "
          f"{ours.bytes_per_rule:>14.1f}")
    print(f"  HiCuts           {hicuts.stats.classification_time:>19d}    "
          f"{hicuts.stats.bytes_per_rule:>14.1f}")


if __name__ == "__main__":
    main()
