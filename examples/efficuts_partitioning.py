#!/usr/bin/env python
"""Improving on a pre-engineered heuristic (the paper's Section 6.3 / Figure 10).

NeuroCuts can incorporate the EffiCuts top-node partitioner as one of its
actions and then learn the cutting decisions below it.  This example builds
the same classifier with plain EffiCuts and with NeuroCuts restricted to the
EffiCuts partition action, and reports the space/time improvement.
"""

from __future__ import annotations

from repro.baselines import EffiCutsBuilder
from repro.classbench import generate_classifier
from repro.metrics import improvement
from repro.neurocuts import NeuroCutsConfig, NeuroCutsTrainer
from repro.tree import validate_classifier


def main() -> None:
    ruleset = generate_classifier("fw2", 250, seed=0)
    print(f"Classifier {ruleset.name!r} with {len(ruleset)} rules\n")

    # Plain EffiCuts.
    efficuts = EffiCutsBuilder(binth=16).build_with_stats(ruleset)
    assert validate_classifier(efficuts.classifier,
                               num_random_packets=200).is_correct

    # NeuroCuts allowed to use the EffiCuts partition action at the top node,
    # optimising a balanced time/space objective with log reward scaling.
    config = NeuroCutsConfig(
        time_space_coeff=0.5,
        partition_mode="efficuts",
        reward_scaling="log",
        hidden_sizes=(64, 64),
        max_timesteps_total=16_000,
        timesteps_per_batch=1_000,
        max_timesteps_per_rollout=600,
        max_tree_depth=40,
        num_sgd_iters=10,
        sgd_minibatch_size=256,
        learning_rate=1e-3,
        leaf_threshold=16,
        seed=0,
    )
    trainer = NeuroCutsTrainer(ruleset, config)
    result = trainer.train()
    neurocuts = result.best_classifier()
    assert validate_classifier(neurocuts, num_random_packets=200).is_correct

    ours = neurocuts.stats()
    theirs = efficuts.stats
    space_gain = improvement(ours.bytes_per_rule, theirs.bytes_per_rule)
    time_gain = improvement(ours.classification_time, theirs.classification_time)

    print(f"{'':<22}{'EffiCuts':>12} {'NeuroCuts+EffiCuts':>20}")
    print(f"{'bytes per rule':<22}{theirs.bytes_per_rule:>12.1f} "
          f"{ours.bytes_per_rule:>20.1f}")
    print(f"{'classification time':<22}{theirs.classification_time:>12d} "
          f"{ours.classification_time:>20d}")
    print(f"\nspace improvement (1 - ours/theirs): {space_gain:+.1%}")
    print(f"time improvement  (1 - ours/theirs): {time_gain:+.1%}")
    print("\nPaper's Figure 10: a 29% median space improvement with roughly "
          "unchanged classification time.")


if __name__ == "__main__":
    main()
