#!/usr/bin/env python
"""Compiled dataplane engine: batch throughput and flow caching.

Run with::

    python examples/compiled_engine_throughput.py

The script generates a ClassBench-style ACL classifier, builds decision
trees with two baseline algorithms (single-tree HiCuts and multi-tree
EffiCuts), compiles each into the flat-array engine, and measures
packets/second of the per-packet Python interpreter against the vectorised
batch path.  It also demonstrates the LRU flow cache on the per-packet
serving path, where flow locality lets most packets skip the tree walk.
"""

from __future__ import annotations

import random
import time

from repro.baselines import EffiCutsBuilder, HiCutsBuilder
from repro.classbench import generate_classifier, generate_trace
from repro.engine import bench_classifier
from repro.harness import format_table


def main() -> None:
    # 1. A synthetic ClassBench-style classifier and a locality-skewed trace.
    ruleset = generate_classifier("acl1", 500, seed=0)
    packets = generate_trace(ruleset, num_packets=50_000, seed=1)
    print(f"Generated {ruleset.name!r} with {len(ruleset)} rules "
          f"and a {len(packets)}-packet trace\n")

    # 2. Interpreter vs compiled engine for each builder.
    rows = []
    classifiers = {}
    for builder in (HiCutsBuilder(binth=8), EffiCutsBuilder(binth=8)):
        classifier = builder.build(ruleset)
        classifiers[builder.name] = classifier
        result = bench_classifier(classifier, packets)
        rows.append([
            builder.name,
            result.num_subtrees,
            f"{result.compiled_memory_bytes / 1024:.0f} KiB",
            f"{result.interpreter_pps:,.0f}",
            f"{result.compiled_pps:,.0f}",
            f"{result.speedup:.1f}x",
        ])
        assert result.mismatches == 0, "compiled engine must match interpreter"
    print(format_table(
        ["algorithm", "search trees", "engine memory",
         "interpreter pps", "compiled pps", "speedup"],
        rows,
    ))

    # 3. The flow cache accelerates the per-packet serving path.  Real
    #    traffic repeats 5-tuples (packets belong to flows), so replay a
    #    bounded pool of flows one packet at a time, as a NAT/firewall
    #    would receive them.
    rng = random.Random(0)
    flows = packets[:2_000]
    replay = rng.choices(flows, k=20_000)
    classifier = classifiers["HiCuts"]
    compiled = classifier.compile(flow_cache_size=4096)
    start = time.perf_counter()
    for packet in replay:
        compiled.classify(packet)
    elapsed = time.perf_counter() - start
    stats = compiled.flow_cache.stats
    print(f"\nPer-packet serving of {len(flows)} flows with a 4096-flow "
          f"LRU cache: {len(replay) / elapsed:,.0f} pps "
          f"(hit rate {stats.hit_rate:.0%} over {stats.lookups} lookups)")


if __name__ == "__main__":
    main()
