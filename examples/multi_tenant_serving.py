#!/usr/bin/env python
"""Multi-tenant serving with zero-downtime rule updates.

A provider serves packet classification for many tenants at once: each
tenant brings its own ruleset (here: generated acl/fw/ipc ClassBench-style
classifiers), gets a compiled flat-array engine with an LRU flow cache, and
can push rule updates at any time — the engine is rebuilt in the background
and swapped in atomically, so no packet is ever dropped or misclassified.

This example builds a three-tenant scenario, drives it with a flow workload
(Zipf flow popularity, bursty arrivals), pushes a mid-trace rule update for
the busiest tenant, and prints the serving telemetry plus a differential
proof that every answer matched linear search across the hot swap.
"""

from __future__ import annotations

from repro.harness import format_table
from repro.serve import BatchPolicy, ClassificationService, TenantRegistry
from repro.workloads import (
    ChurnConfig,
    FlowTraceConfig,
    build_workload,
    make_tenant_specs,
)


def main() -> None:
    # 1. The scenario: three tenants from three seed families, each with its
    #    own classifier, plus two rule updates landing mid-trace.
    specs = make_tenant_specs(3, families=("acl1", "fw2", "ipc1"),
                              num_rules=200, seed=0)
    trace = FlowTraceConfig(num_packets=15_000, num_flows=600,
                            zipf_alpha=1.2, mean_burst=12.0, seed=0)
    workload = build_workload(specs, trace,
                              churn=ChurnConfig(num_events=2,
                                                adds_per_event=5,
                                                removes_per_event=3))
    print(workload.describe())

    # 2. The control plane: register every tenant (building a HiCuts tree
    #    and compiling it for the engine) with a per-tenant flow cache.
    registry = TenantRegistry(default_flow_cache_size=4096)
    for spec in specs:
        slot = registry.register(spec.tenant_id,
                                 workload.rulesets[spec.tenant_id],
                                 algorithm=spec.algorithm, binth=spec.binth)
        print(f"  registered {spec.tenant_id}: "
              f"{len(slot.ruleset)} rules, {slot.engine().describe()}")

    # 3. Serve the merged request stream.  Requests coalesce into engine
    #    batches (64 packets or 1 ms, whichever first); the scheduled rule
    #    updates trigger background recompiles and atomic engine swaps.
    service = ClassificationService(
        registry, BatchPolicy(max_batch=64, max_delay=1e-3),
        record_batches=True,
    )
    report = service.serve(workload.requests, updates=workload.updates)
    print("\nServing telemetry:")
    print(format_table(["metric", "value"], report.rows()))

    # 4. Prove exactness across the hot swaps: every served packet equals
    #    linear search over the ruleset generation its engine came from.
    mismatches = 0
    post_swap = 0
    for batch in report.batches:
        ruleset = registry.slot(batch.tenant_id).ruleset_at(batch.epoch)
        post_swap += len(batch.requests) if batch.epoch >= 1 else 0
        for request, priority in zip(batch.requests, batch.priorities):
            expected = ruleset.classify(request.packet)
            if (expected.priority if expected else None) != priority:
                mismatches += 1
    print(f"\nDifferential check: {report.num_requests} packets served, "
          f"{post_swap} by post-update engines, {mismatches} mismatches")
    for tenant_id, entry in registry.telemetry().items():
        print(f"  {tenant_id}: epoch {entry['epoch']}, "
              f"{entry['rules']} rules, "
              f"cache hit rate {entry['cache']['hit_rate']:.1%}")


if __name__ == "__main__":
    main()
