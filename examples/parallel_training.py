#!/usr/bin/env python
"""Actor/learner training: sharded rollout workers and the Figure 7 sweep.

Run with::

    python examples/parallel_training.py [workers ...]

The script trains NeuroCuts with rollout collection sharded over parallel
worker processes (the paper's Figure 7 architecture), demonstrates that the
serial backend and a one-worker process pool produce identical training
histories, checkpoints mid-run and resumes exactly, and finishes with a
small rollout-throughput sweep across worker counts.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.classbench import generate_classifier
from repro.harness import run_scaling, series_table
from repro.harness.scales import TINY
from repro.neurocuts import NeuroCutsConfig, NeuroCutsTrainer


def small_config(**overrides) -> NeuroCutsConfig:
    params = dict(
        hidden_sizes=(32, 32),
        max_timesteps_total=6_000,
        timesteps_per_batch=1_000,
        max_timesteps_per_rollout=400,
        max_tree_depth=40,
        num_sgd_iters=10,
        sgd_minibatch_size=256,
        learning_rate=1e-3,
        leaf_threshold=16,
        seed=0,
    )
    params.update(overrides)
    return NeuroCutsConfig(**params)


def main() -> None:
    worker_counts = [int(arg) for arg in sys.argv[1:]] or [1, 2]
    ruleset = generate_classifier("acl1", 200, seed=0)
    print(f"Classifier {ruleset.name!r}: {len(ruleset)} rules\n")

    # 1. Train with sharded rollout collection.  num_rollout_workers > 1
    #    scatters each PPO batch over a persistent process pool; the trainer
    #    stays a pure learner (broadcast weights, gather shards, update).
    workers = max(worker_counts)
    with NeuroCutsTrainer(ruleset, small_config(num_rollout_workers=workers)) \
            as trainer:
        result = trainer.train()
    print(f"Trained with {workers} rollout worker(s): "
          f"{result.timesteps_total} steps, {len(result.history)} iterations, "
          f"best objective {result.best_objective:.2f}")

    # 2. Determinism: a one-worker process pool reproduces the serial run.
    with NeuroCutsTrainer(ruleset, small_config()) as serial:
        serial_history = [s.best_objective for s in serial.train().history]
    with NeuroCutsTrainer(ruleset, small_config(),
                          rollout_backend="process") as pooled:
        pooled_history = [s.best_objective for s in pooled.train().history]
    print(f"Serial == ProcessPool(1): {serial_history == pooled_history}")

    # 3. Exact resume: checkpoint after two iterations, restore, continue.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "checkpoint.npz"
        with NeuroCutsTrainer(ruleset, small_config()) as half:
            half.train(max_iterations=2)
            half.save(path)
        resumed = NeuroCutsTrainer.restore(path, ruleset, small_config())
        with resumed:
            resumed_history = [s.best_objective
                               for s in resumed.train().history]
    print(f"Resumed run matches uninterrupted: "
          f"{resumed_history == serial_history}\n")

    # 4. Figure 7: rollout-collection throughput vs worker count.
    scaling = run_scaling(
        TINY, worker_counts=tuple(worker_counts), rounds=2,
        neurocuts_config=small_config(),
    )
    print("Rollout-collection scaling (Figure 7):")
    print(series_table(scaling.series()))


if __name__ == "__main__":
    main()
