#!/usr/bin/env python
"""Sweeping the time-space coefficient c (the paper's Figure 11).

NeuroCuts optimises ``-(c * f(time) + (1 - c) * f(space))``.  This example
trains one policy per value of c on the same classifier and prints how the
best tree's classification time and bytes-per-rule move as c goes from
space-optimised (c = 0) to time-optimised (c = 1).
"""

from __future__ import annotations

from repro.classbench import generate_classifier
from repro.neurocuts import NeuroCutsConfig, NeuroCutsTrainer
from repro.tree import validate_classifier


def main() -> None:
    ruleset = generate_classifier("fw3", 200, seed=0)
    print(f"Classifier {ruleset.name!r} with {len(ruleset)} rules\n")
    print(f"{'c':>5} {'classification time':>20} {'bytes per rule':>16} "
          f"{'trees/nodes':>12}")

    for c in (0.0, 0.1, 0.5, 1.0):
        config = NeuroCutsConfig(
            time_space_coeff=c,
            partition_mode="simple",       # as in the paper's Figure 11 runs
            reward_scaling="log",          # log scaling when mixing objectives
            hidden_sizes=(64, 64),
            max_timesteps_total=12_000,
            timesteps_per_batch=1_000,
            max_timesteps_per_rollout=600,
            max_tree_depth=40,
            num_sgd_iters=10,
            sgd_minibatch_size=256,
            learning_rate=1e-3,
            leaf_threshold=16,
            seed=0,
        )
        trainer = NeuroCutsTrainer(ruleset, config)
        result = trainer.train()
        classifier = result.best_classifier()
        assert validate_classifier(classifier, num_random_packets=150).is_correct
        stats = classifier.stats()
        print(f"{c:>5.1f} {stats.classification_time:>20d} "
              f"{stats.bytes_per_rule:>16.1f} "
              f"{stats.num_trees:>5d}/{stats.num_nodes:<6d}")

    print("\nExpected shape (paper, Figure 11): classification time improves "
          "as c -> 1 while bytes per rule improves as c -> 0.")


if __name__ == "__main__":
    main()
