#!/usr/bin/env python
"""The adaptive serving loop: churn-driven retraining + sharded serving.

The closed loop in one script.  Two tenants serve a flow workload while a
churn schedule — sized by ``ChurnConfig.forcing_retrain`` so *every* tenant
crosses its retrain threshold — degrades their trees with incremental rule
updates.  A ``RetrainController`` notices, runs background NeuroCuts
training jobs on a ``repro.executors`` backend, and hot-swaps the freshly
trained *trees* into the live path; churn that raced a retrain is replayed
on top, so the differential exactness proof holds across the whole
retrain → adopt → swap sequence.

The same scenario is then served again with tenants *sharded* across two
worker processes (``repro.serve.sharded``), showing the merged telemetry a
sharded front-end reports.
"""

from __future__ import annotations

from repro.harness import format_table
from repro.harness.serving import run_serving
from repro.serve import RetrainPolicy
from repro.workloads import ChurnConfig

RETRAIN_THRESHOLD = 8
NUM_TENANTS = 2


def main() -> None:
    # 1. Retrain-on-churn: enough update events per tenant that every slot
    #    crosses the retrain threshold mid-trace.
    churn = ChurnConfig.forcing_retrain(RETRAIN_THRESHOLD,
                                        num_tenants=NUM_TENANTS,
                                        adds_per_event=4,
                                        removes_per_event=2)
    print(f"churn: {churn.num_events} events x "
          f"{churn.adds_per_event}+{churn.removes_per_event} updates "
          f"(threshold {RETRAIN_THRESHOLD}/tenant)")
    result = run_serving(
        num_tenants=NUM_TENANTS,
        families=("acl1", "ipc1"),
        num_rules=120,
        num_packets=15_000,
        num_flows=500,
        churn_events=churn.num_events,
        adds_per_event=churn.adds_per_event,
        removes_per_event=churn.removes_per_event,
        retrain_threshold=RETRAIN_THRESHOLD,
        retrain_policy=RetrainPolicy(timesteps=1_500, backend="thread",
                                     seed=0),
        record_batches=True,
        seed=0,
    )
    print("\nAdaptive serving telemetry (retrains ran in the background):")
    print(format_table(["metric", "value"], result.rows()))
    exactness = result.verify_exactness()
    print(f"differential check: {exactness.num_checked} packets "
          f"({exactness.num_post_swap} post-swap), "
          f"{exactness.num_mismatches} mismatches vs linear search")
    for tenant_id, entry in result.report.per_tenant.items():
        print(f"  {tenant_id}: epoch {entry['epoch']}, "
              f"{entry['rules']} rules, retrain counters reset to "
              f"{entry['retrain']['accumulated_updates']}")

    # 2. The same scenario sharded across two serving worker processes.
    sharded = run_serving(
        num_tenants=4,
        families=("acl1", "ipc1"),
        num_rules=120,
        num_packets=15_000,
        num_flows=500,
        churn_events=2,
        serving_workers=2,
        serving_backend="process",
        record_batches=True,
        seed=1,
    )
    print("\nTenant-sharded serving (2 worker processes, merged telemetry):")
    print(format_table(["metric", "value"], sharded.rows()))
    print(format_table(["shard", "tenants", "requests", "wall"],
                       sharded.shard_rows()))
    exactness = sharded.verify_exactness()
    print(f"differential check: {exactness.num_checked} packets, "
          f"{exactness.num_mismatches} mismatches across the process "
          f"boundary")


if __name__ == "__main__":
    main()
