#!/usr/bin/env python
"""Record a serving run, then replay it byte-for-byte from the trace file.

Every serving example so far re-rolled its traffic from a generator; this
one captures a run as a *trace* — a binary file holding the tenant roster,
every served packet with the decision the live run made (the golden
column), and the mid-trace churn schedule — and then replays it through a
freshly built serving stack.  The replay serves the identical packets on
the trace's own clock, crosses the same hot swaps, and is verified against
the golden column: zero drops, zero decision diffs.  Replays are also free
to change serving knobs (here: a different batch size and a sharded run),
because decisions depend only on each packet's epoch ruleset.

Recorded traces are how serving bugs become regression tests: check the
file in, replay it in CI, and any behaviour change shows up as a diff.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.harness import format_table
from repro.traces import diff_traces, read_trace, record_serving, replay_trace

SCENARIO = dict(
    num_tenants=3,
    families=("acl1", "ipc1"),
    num_rules=120,
    num_packets=8_000,
    num_flows=400,
    churn_events=3,
    seed=0,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="trace-replay-"))
    trace_path = workdir / "serving.trace"

    # 1. Record: run the live scenario (synchronous swaps, so the golden
    #    column is a pure function of the trace clock) and write the trace.
    outcome = record_serving(trace_path, **SCENARIO)
    print(f"recorded {outcome.trace.describe()}")
    print(f"wrote {trace_path} ({trace_path.stat().st_size:,} bytes)\n")

    # 2. Replay from the file alone: the registry, engines, batcher, and
    #    hot swaps are rebuilt from the trace, no generator involved.
    replay = replay_trace(read_trace(trace_path), max_batch=32)
    print("replay telemetry (batch size 32, still exact):")
    print(format_table(["metric", "value"], replay.result.rows()))
    print(format_table(["check", "count"], replay.report.rows()))
    assert replay.report.is_exact, replay.report.mismatches

    # 3. Shard the same trace across two serving workers — decisions are
    #    tenant-local, so the golden column still matches exactly.
    sharded = replay_trace(read_trace(trace_path), serving_workers=2,
                           serving_backend="thread")
    print(f"\nsharded replay: {sharded.result.num_shards} shards, "
          f"{sharded.report.num_served} served, "
          f"{sharded.report.num_mismatches} mismatches")
    assert sharded.report.is_exact

    # 4. A replay re-recorded as a trace diffs clean against its source —
    #    the regression gate CI runs on every push.
    diff = diff_traces(outcome.trace, read_trace(trace_path))
    print(f"\ntrace diff vs itself on disk: "
          f"{'identical' if diff.identical else diff.lines()}")


if __name__ == "__main__":
    main()
