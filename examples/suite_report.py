#!/usr/bin/env python
"""Generate a full evaluation report (all figures) at a chosen scale.

Usage::

    python examples/suite_report.py [tiny|small|paper] [output.md]

Runs every figure experiment of the paper's evaluation section through the
same harness the benchmarks use and writes a single markdown report with the
tables, so a reproduction run leaves a durable record.  At the default
``tiny`` scale this takes a few minutes on one CPU core.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.harness import (
    comparison_table,
    get_scale,
    run_figure5,
    run_figure6,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    series_table,
    summary_table,
    table1_rows,
    format_table,
)
from repro.neurocuts import render_profile


def main() -> None:
    scale_name = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    output_path = Path(sys.argv[2]) if len(sys.argv) > 2 else Path(
        f"suite_report_{scale_name}.md"
    )
    scale = get_scale(scale_name)
    sections = [f"# NeuroCuts reproduction report — scale `{scale.name}`\n"]

    print("Running Figure 8 (classification time) ...")
    fig8 = run_figure8(scale)
    sections.append("## Figure 8 — classification time\n")
    sections.append("```\n" + comparison_table(fig8.values, fig8.metric) + "\n```\n")
    sections.append("```\n" + summary_table({
        "NeuroCuts vs min(baselines)": fig8.neurocuts_vs_best_baseline.as_dict()
    }) + "\n```\n")

    print("Running Figure 9 (memory footprint) ...")
    fig9 = run_figure9(scale)
    sections.append("## Figure 9 — memory footprint (bytes per rule)\n")
    sections.append("```\n" + comparison_table(fig9.values, fig9.metric) + "\n```\n")

    print("Running Figure 10 (EffiCuts partitioner) ...")
    fig10 = run_figure10(scale)
    sections.append("## Figure 10 — NeuroCuts + EffiCuts partitioner vs EffiCuts\n")
    sections.append("```\n" + summary_table({
        "space improvement": fig10.space_improvement.as_dict(),
        "time improvement": fig10.time_improvement.as_dict(),
    }) + "\n```\n")

    print("Running Figure 11 (time-space sweep) ...")
    fig11 = run_figure11(scale)
    sections.append("## Figure 11 — time-space coefficient sweep\n")
    sections.append("```\n" + series_table(fig11.series()) + "\n```\n")

    print("Running Figure 5 (learning progress) ...")
    fig5 = run_figure5(scale)
    sections.append("## Figure 5 — learning progress on fw5\n")
    sections.append(
        f"Best depth over training: {fig5.best_depth_over_time}\n\n"
        f"Final NeuroCuts depth {fig5.final_best_depth} vs HiCuts "
        f"{fig5.hicuts_depth}\n"
    )
    sections.append("```\n" + render_profile(fig5.snapshots[-1]) + "\n```\n")

    print("Running Figure 6 (tree variations) ...")
    fig6 = run_figure6(scale)
    sections.append("## Figure 6 — tree variations from one policy\n")
    sections.append(
        "Sampled tree depths: "
        + ", ".join(str(int(p.depth)) for p in fig6.profiles) + "\n"
    )

    sections.append("## Table 1 — hyperparameters\n")
    sections.append("```\n" + format_table(
        ["hyperparameter", "paper", "ours"],
        [[n, str(p), str(o)] for n, p, o in table1_rows()],
    ) + "\n```\n")

    output_path.write_text("\n".join(sections))
    print(f"\nReport written to {output_path}")


if __name__ == "__main__":
    main()
