#!/usr/bin/env python
"""Optimising a firewall rule set: the workload the paper's introduction motivates.

Firewall (fw-family) classifiers are the hard case for cutting heuristics:
many rules wildcard the source fields, so naive cuts replicate them and blow
up either the tree depth or the memory footprint.  This example builds one
fw-family classifier with all four hand-tuned baselines and with NeuroCuts
(time-optimised), validates every result against linear search, and prints
the comparison plus the per-level shape of the learnt tree (Figure 5 style).
"""

from __future__ import annotations

from repro.baselines import default_baselines
from repro.classbench import generate_classifier, generate_trace
from repro.metrics import measure_lookup
from repro.neurocuts import NeuroCutsConfig, NeuroCutsTrainer, profile_tree, render_profile
from repro.tree import validate_classifier


def main() -> None:
    ruleset = generate_classifier("fw5", 300, seed=0)
    trace = generate_trace(ruleset, num_packets=2000, seed=1)
    print(f"Firewall classifier {ruleset.name!r}: {len(ruleset)} rules, "
          f"{len(trace)} trace packets\n")

    rows = []

    # Hand-tuned baselines.
    for name, builder in default_baselines(binth=16).items():
        result = builder.build_with_stats(ruleset)
        assert validate_classifier(result.classifier,
                                   num_random_packets=200).is_correct
        empirical = measure_lookup(result.classifier, trace)
        rows.append((name, result.stats.classification_time,
                     result.stats.bytes_per_rule, empirical.mean_depth))

    # NeuroCuts, time-optimised.
    config = NeuroCutsConfig(
        time_space_coeff=1.0, partition_mode="simple", reward_scaling="linear",
        hidden_sizes=(64, 64), max_timesteps_total=20_000,
        timesteps_per_batch=1_000, max_timesteps_per_rollout=600,
        max_tree_depth=40, num_sgd_iters=10, sgd_minibatch_size=256,
        learning_rate=1e-3, leaf_threshold=16, seed=0,
    )
    trainer = NeuroCutsTrainer(ruleset, config)
    training = trainer.train()
    neurocuts = training.best_classifier()
    assert validate_classifier(neurocuts, num_random_packets=200).is_correct
    empirical = measure_lookup(neurocuts, trace)
    stats = neurocuts.stats()
    rows.append(("NeuroCuts", stats.classification_time, stats.bytes_per_rule,
                 empirical.mean_depth))

    print(f"{'algorithm':<12} {'worst-case time':>16} {'bytes/rule':>12} "
          f"{'mean trace depth':>18}")
    for name, time_cost, bytes_per_rule, mean_depth in rows:
        print(f"{name:<12} {time_cost:>16d} {bytes_per_rule:>12.1f} "
              f"{mean_depth:>18.2f}")

    print("\nShape of the learnt NeuroCuts tree (nodes per level, cut dims):")
    print(render_profile(profile_tree(training.best_tree)))


if __name__ == "__main__":
    main()
