"""Setuptools shim.

Kept alongside ``pyproject.toml`` so editable installs work in offline
environments whose setuptools predates PEP 660 wheel-less editable support
(``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

setup(
    # Optional extras.  ``native`` pulls in numba for the jitted traversal
    # kernels (``repro engine-bench --engine numba``); the package runs
    # fully — and byte-identically — without it on the numpy backend.
    extras_require={"native": ["numba"]},
)
