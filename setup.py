"""Setuptools shim.

Kept alongside ``pyproject.toml`` so editable installs work in offline
environments whose setuptools predates PEP 660 wheel-less editable support
(``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

setup()
