"""Trace diffing: field-for-field comparison of two recorded runs.

``diff_traces`` compares two traces the way the regression gate needs:
header metadata (seed, scenario, tenant roster), initial rulesets, the
churn sidecar, and every packet record including the golden column.  Two
recordings of the same deterministic scenario must diff clean; a replay
re-recorded with ``repro trace replay --output`` must diff clean against
its source — any difference is a behaviour change worth a look.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.traces.format import RECORD_DTYPE, ServingTrace
from repro.traces.io import read_trace

#: How many per-record difference examples a diff keeps for display.
MAX_DIFF_EXAMPLES = 10


@dataclass
class TraceDiff:
    """Everything that differs between two traces."""

    #: Human-readable metadata differences (seed, scenario, tenants, rules).
    header_diffs: List[str] = field(default_factory=list)
    #: Packet-record rows whose non-golden fields differ.
    num_record_diffs: int = 0
    #: Rows whose golden column (matched / priority) differs.
    num_golden_diffs: int = 0
    #: Churn-schedule differences, as human-readable lines.
    update_diffs: List[str] = field(default_factory=list)
    #: First few per-row difference descriptions.
    examples: List[str] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return (not self.header_diffs and not self.update_diffs
                and self.num_record_diffs == 0 and self.num_golden_diffs == 0)

    def lines(self) -> List[str]:
        """The diff as printable lines (empty when identical)."""
        out = list(self.header_diffs)
        out.extend(self.update_diffs)
        if self.num_record_diffs:
            out.append(f"{self.num_record_diffs} packet record(s) differ")
        if self.num_golden_diffs:
            out.append(f"{self.num_golden_diffs} golden decision(s) differ")
        out.extend(f"  {example}" for example in self.examples)
        return out


def diff_traces(a: Union[str, Path, ServingTrace],
                b: Union[str, Path, ServingTrace],
                max_examples: int = MAX_DIFF_EXAMPLES) -> TraceDiff:
    """Compare two traces field-for-field; see :class:`TraceDiff`."""
    if not isinstance(a, ServingTrace):
        a = read_trace(a)
    if not isinstance(b, ServingTrace):
        b = read_trace(b)
    diff = TraceDiff()

    if a.seed != b.seed:
        diff.header_diffs.append(f"seed: {a.seed} != {b.seed}")
    if a.scenario != b.scenario:
        diff.header_diffs.append(
            f"scenario metadata differs: {a.scenario!r} != {b.scenario!r}"
        )
    ids_a = [s.tenant_id for s in a.specs]
    ids_b = [s.tenant_id for s in b.specs]
    if ids_a != ids_b:
        diff.header_diffs.append(
            f"tenant rosters differ: {ids_a} != {ids_b}"
        )
    else:
        for spec_a, spec_b in zip(a.specs, b.specs):
            if spec_a != spec_b:
                fields = [
                    f"{name}: {getattr(spec_a, name)!r} != "
                    f"{getattr(spec_b, name)!r}"
                    for name in ("seed_name", "num_rules", "seed",
                                 "algorithm", "binth")
                    if getattr(spec_a, name) != getattr(spec_b, name)
                ]
                diff.header_diffs.append(
                    f"tenant {spec_a.tenant_id!r} spec differs: "
                    + ", ".join(fields)
                )
        for spec in a.specs:
            ra, rb = a.rulesets[spec.tenant_id], b.rulesets[spec.tenant_id]
            if ra != rb or ra.name != rb.name:
                diff.header_diffs.append(
                    f"initial ruleset differs for tenant {spec.tenant_id!r} "
                    f"({len(ra)} vs {len(rb)} rules)"
                )

    if a.updates != b.updates:
        limit = max(len(a.updates), len(b.updates))
        for i in range(limit):
            ua = a.updates[i] if i < len(a.updates) else None
            ub = b.updates[i] if i < len(b.updates) else None
            if ua != ub:
                diff.update_diffs.append(f"churn event {i} differs")

    if len(a.records) != len(b.records):
        diff.num_record_diffs = abs(len(a.records) - len(b.records))
        diff.examples.append(
            f"record counts differ: {len(a.records)} vs {len(b.records)}"
        )
        return diff

    golden_fields = ("golden_matched", "golden_priority")
    payload_fields = [name for name in RECORD_DTYPE.names
                      if name not in golden_fields]
    payload_differs = np.zeros(len(a.records), dtype=bool)
    for name in payload_fields:
        payload_differs |= a.records[name] != b.records[name]
    golden_differs = np.zeros(len(a.records), dtype=bool)
    for name in golden_fields:
        golden_differs |= a.records[name] != b.records[name]

    diff.num_record_diffs = int(np.count_nonzero(payload_differs))
    diff.num_golden_diffs = int(np.count_nonzero(golden_differs))
    for row in np.flatnonzero(payload_differs | golden_differs):
        if len(diff.examples) >= max_examples:
            break
        fields = [
            f"{name}: {a.records[int(row)][name]} != {b.records[int(row)][name]}"
            for name in RECORD_DTYPE.names
            if a.records[int(row)][name] != b.records[int(row)][name]
        ]
        diff.examples.append(f"row {int(row)}: " + ", ".join(fields))
    return diff
