"""Trace capture and replay: recorded serving runs as versioned artifacts.

Every serving run so far re-rolled its traffic from a generator; this
package makes runs *reproducible byte-for-byte*.  A recorded
:class:`~repro.traces.format.ServingTrace` carries the tenant roster and
initial rulesets, every served packet (5-tuple, arrival time, tenant, flow
id) with the decision the live run made (the golden column), and the churn
sidecar — everything needed to replay the identical run through the full
serving stack (registry, batcher, hot swaps, retrains, shards) and assert
zero decision diffs.  See docs/traces.md for the on-disk format and the
``repro trace`` CLI group for the command-line workflow.

Typical use::

    from repro.traces import record_serving, replay_trace

    record_serving("run.trace", num_tenants=2, families=("acl1",),
                   num_packets=5_000, churn_events=2, seed=0)
    outcome = replay_trace("run.trace", serving_workers=2,
                           serving_backend="thread")
    assert outcome.report.is_exact
"""

from repro.traces.format import (
    EVENT_DTYPE,
    RECORD_DTYPE,
    RULE_DTYPE,
    TRACE_FORMAT_VERSION,
    TRACE_MAGIC,
    ServingTrace,
)
from repro.traces.io import TraceReader, TraceWriter, read_trace, write_trace
from repro.traces.record import RecordOutcome, record_serving, trace_from_run
from repro.traces.replay import (
    ReplayMismatch,
    ReplayOutcome,
    ReplayReport,
    deterministic_counters,
    replay_trace,
    verify_replay,
)
from repro.traces.diff import TraceDiff, diff_traces

__all__ = [
    "EVENT_DTYPE",
    "RECORD_DTYPE",
    "RULE_DTYPE",
    "TRACE_FORMAT_VERSION",
    "TRACE_MAGIC",
    "ServingTrace",
    "TraceReader",
    "TraceWriter",
    "read_trace",
    "write_trace",
    "RecordOutcome",
    "record_serving",
    "trace_from_run",
    "ReplayMismatch",
    "ReplayOutcome",
    "ReplayReport",
    "deterministic_counters",
    "replay_trace",
    "verify_replay",
    "TraceDiff",
    "diff_traces",
]
