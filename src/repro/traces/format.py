"""The serving-trace format: what a recorded run looks like in memory.

A :class:`ServingTrace` is a fully self-contained, byte-reproducible record
of one serving run: the tenant roster (specs plus each tenant's epoch-0
ruleset), every packet the run served as one row of a NumPy structured
array — 5-tuple, arrival timestamp, tenant, flow id, and the *golden
column*: the rule priority the live run matched — plus the rule-churn
sidecar (the mid-trace update schedule, as rule deltas keyed by event).
Nothing else is needed to replay the run: the replayer rebuilds the full
serving stack from the trace and drives it on the trace's own clock.

Determinism contract: served decisions are a pure function of (packet,
epoch ruleset) as long as engine swaps are synchronous
(``background_swaps=False``) and retrains run on the ``"serial"`` backend —
the epoch a packet is served under is then decided entirely by trace time,
never by wall-clock compile latency.  Record and replay under that contract
and the golden column is stable across machines, which is what makes
checked-in traces usable as regression gates (see docs/traces.md).

The on-disk encoding (magic, version, JSON header, ``np.save`` segments)
lives in :mod:`repro.traces.io`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import TraceFormatError
from repro.rules.packet import Packet
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet
from repro.serve.batcher import Request
from repro.serve.service import RuleUpdate
from repro.workloads.scenario import MultiTenantWorkload, TenantSpec

#: First 8 bytes of every trace file.
TRACE_MAGIC = b"REPROTRC"

#: Bump on any change to the header schema or array dtypes.
TRACE_FORMAT_VERSION = 1

#: One row per served packet, in arrival order.  ``golden_matched`` is 0
#: when the live run matched no rule (then ``golden_priority`` is -1).
RECORD_DTYPE = np.dtype([
    ("time", "<f8"),
    ("tenant", "<u2"),
    ("flow_id", "<i4"),
    ("src_ip", "<u4"),
    ("dst_ip", "<u4"),
    ("src_port", "<u2"),
    ("dst_port", "<u2"),
    ("protocol", "u1"),
    ("golden_matched", "u1"),
    ("golden_priority", "<i8"),
])

#: One row per rule the trace references: the initial rulesets
#: (``event == -1``) plus every churn delta (``event`` indexes the event
#: table, ``op`` 0 = add / 1 = remove).  Ranges are half-open ``[lo, hi)``
#: per dimension in canonical order; ``hi`` can be 2**32 so int64.
RULE_DTYPE = np.dtype([
    ("tenant", "<u2"),
    ("event", "<i4"),
    ("op", "u1"),
    ("priority", "<i8"),
    ("lo", "<i8", (5,)),
    ("hi", "<i8", (5,)),
    ("name", "<U64"),
])

#: One row per churn event, in schedule order (row index == event id).
EVENT_DTYPE = np.dtype([
    ("time", "<f8"),
    ("tenant", "<u2"),
])

_OP_ADD = 0
_OP_REMOVE = 1


@dataclass
class ServingTrace:
    """One recorded serving run, ready to be written, replayed, or diffed.

    Attributes:
        specs: the tenant roster in table order (packet records reference
            tenants by index into this list).
        rulesets: each tenant's epoch-0 ruleset — the classifier its engine
            was compiled from at registration, before any churn.
        records: the packet records (:data:`RECORD_DTYPE`), arrival-ordered.
        updates: the churn schedule, in time order.
        seed: the scenario seed the run was generated from (metadata).
        scenario: free-form generation metadata (workload knobs) carried in
            the header; not needed for replay, but kept so ``trace diff``
            can tell two scenarios apart and ``trace inspect`` can show how
            a fixture was made.
    """

    specs: List[TenantSpec]
    rulesets: Dict[str, RuleSet]
    records: np.ndarray
    updates: List[RuleUpdate] = field(default_factory=list)
    seed: int = 0
    scenario: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.records = np.asarray(self.records)
        self._validate()

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def _validate(self) -> None:
        if not self.specs:
            raise TraceFormatError("trace declares no tenants")
        tenant_ids = [spec.tenant_id for spec in self.specs]
        if len(set(tenant_ids)) != len(tenant_ids):
            raise TraceFormatError("trace declares duplicate tenant ids")
        for tenant_id in tenant_ids:
            if tenant_id not in self.rulesets:
                raise TraceFormatError(
                    f"trace tenant {tenant_id!r} has no initial ruleset"
                )
        if self.records.dtype != RECORD_DTYPE:
            raise TraceFormatError(
                f"packet records have dtype {self.records.dtype}, "
                f"expected {RECORD_DTYPE}"
            )
        if len(self.records) == 0:
            raise TraceFormatError("trace contains no packet records")
        times = self.records["time"]
        if not np.all(np.isfinite(times)) or float(times[0]) < 0.0:
            raise TraceFormatError("packet timestamps must be finite and >= 0")
        if np.any(np.diff(times) < 0):
            raise TraceFormatError("packet timestamps must be non-decreasing")
        max_tenant = int(self.records["tenant"].max())
        if max_tenant >= len(self.specs):
            raise TraceFormatError(
                f"packet record references tenant index {max_tenant} but the "
                f"trace declares only {len(self.specs)} tenant(s)"
            )
        known = set(tenant_ids)
        for i, update in enumerate(self.updates):
            if update.tenant_id not in known:
                raise TraceFormatError(
                    f"churn event references unregistered tenant "
                    f"{update.tenant_id!r}"
                )
            if not np.isfinite(update.time) or update.time < 0.0:
                raise TraceFormatError(
                    f"churn event {i} has invalid time {update.time!r}; "
                    f"event times must be finite and >= 0"
                )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_records(self) -> int:
        return len(self.records)

    @property
    def duration(self) -> float:
        """Trace seconds from first to last arrival (0 for one packet)."""
        times = self.records["time"]
        return float(times[-1] - times[0]) if len(times) else 0.0

    @property
    def tenant_ids(self) -> List[str]:
        return [spec.tenant_id for spec in self.specs]

    def golden_priority(self, row: int) -> Optional[int]:
        """The matched-rule priority the live run recorded for one row."""
        record = self.records[row]
        if not record["golden_matched"]:
            return None
        return int(record["golden_priority"])

    def describe(self) -> str:
        return (
            f"ServingTrace(tenants={len(self.specs)}, "
            f"records={self.num_records}, updates={len(self.updates)}, "
            f"duration={self.duration:.4f}s, seed={self.seed})"
        )

    # ------------------------------------------------------------------ #
    # Replay-side reconstruction
    # ------------------------------------------------------------------ #

    def requests(self) -> List[Request]:
        """The recorded packet stream as serving-layer requests.

        Row ``i`` becomes the request with ``seq == i``, so decisions made
        during a replay can be mapped back to the golden column no matter
        how batching or sharding reorders execution.
        """
        tenant_ids = self.tenant_ids
        try:
            return [
                Request(
                    tenant_id=tenant_ids[int(rec["tenant"])],
                    packet=Packet(
                        src_ip=int(rec["src_ip"]),
                        dst_ip=int(rec["dst_ip"]),
                        src_port=int(rec["src_port"]),
                        dst_port=int(rec["dst_port"]),
                        protocol=int(rec["protocol"]),
                    ),
                    time=float(rec["time"]),
                    flow_id=int(rec["flow_id"]),
                    seq=i,
                )
                for i, rec in enumerate(self.records)
            ]
        except Exception as error:
            raise TraceFormatError(
                f"trace packet records could not be decoded: {error}"
            ) from error

    def to_workload(self) -> MultiTenantWorkload:
        """Rebuild the workload this trace recorded.

        The result drives :func:`repro.harness.serving.run_serving` exactly
        like a generated workload would — same request stream, same churn
        schedule — except every byte comes from the file.
        """
        return MultiTenantWorkload(
            specs=list(self.specs),
            rulesets=dict(self.rulesets),
            requests=self.requests(),
            updates=list(self.updates),
        )

    # ------------------------------------------------------------------ #
    # Sidecar packing (used by repro.traces.io)
    # ------------------------------------------------------------------ #

    @property
    def num_sidecar_rules(self) -> int:
        """Rows the rule sidecar will hold (initial rules + churn deltas)."""
        return (
            sum(len(self.rulesets[s.tenant_id]) for s in self.specs)
            + sum(len(u.adds) + len(u.removes) for u in self.updates)
        )

    def rules_sidecar(self) -> np.ndarray:
        """Pack the initial rulesets and churn deltas into one rule table."""
        rows = []
        index = {spec.tenant_id: t for t, spec in enumerate(self.specs)}
        for spec in self.specs:
            for rule in self.rulesets[spec.tenant_id].rules:
                rows.append(_rule_row(index[spec.tenant_id], -1, _OP_ADD, rule))
        for event, update in enumerate(self.updates):
            tenant = index[update.tenant_id]
            for rule in update.adds:
                rows.append(_rule_row(tenant, event, _OP_ADD, rule))
            for rule in update.removes:
                rows.append(_rule_row(tenant, event, _OP_REMOVE, rule))
        table = np.zeros(len(rows), dtype=RULE_DTYPE)
        for i, row in enumerate(rows):
            table[i] = row
        return table

    def events_sidecar(self) -> np.ndarray:
        """Pack the churn-event schedule (row index == event id)."""
        index = {spec.tenant_id: t for t, spec in enumerate(self.specs)}
        table = np.zeros(len(self.updates), dtype=EVENT_DTYPE)
        for i, update in enumerate(self.updates):
            table[i] = (update.time, index[update.tenant_id])
        return table

    @classmethod
    def from_arrays(
        cls,
        header: dict,
        records: np.ndarray,
        rules: np.ndarray,
        events: np.ndarray,
    ) -> "ServingTrace":
        """Rebuild a trace from its decoded header and arrays.

        Raises :class:`~repro.exceptions.TraceFormatError` on any
        inconsistency — unknown tenant references, rules without a tenant,
        undeclarable rulesets — rather than letting NumPy or dataclass
        validation errors escape.
        """
        try:
            specs = [
                TenantSpec(
                    tenant_id=str(entry["tenant_id"]),
                    seed_name=str(entry.get("seed_name", "acl1")),
                    num_rules=int(entry.get("num_rules", 0)),
                    seed=int(entry.get("seed", 0)),
                    algorithm=str(entry.get("algorithm", "HiCuts")),
                    binth=int(entry.get("binth", 8)),
                )
                for entry in header.get("tenants", [])
            ]
            ruleset_names = {
                str(entry["tenant_id"]): str(entry.get("ruleset_name", ""))
                for entry in header.get("tenants", [])
            }
        except (KeyError, TypeError, ValueError) as error:
            raise TraceFormatError(
                f"trace header tenant table is malformed: {error}"
            ) from error
        if not specs:
            raise TraceFormatError("trace header declares no tenants")

        try:
            initial: Dict[str, List[Rule]] = {s.tenant_id: [] for s in specs}
            deltas: Dict[int, dict] = {}
            for row in rules:
                tenant = int(row["tenant"])
                if tenant >= len(specs):
                    raise TraceFormatError(
                        f"rule sidecar references tenant index {tenant} but "
                        f"the trace declares only {len(specs)} tenant(s)"
                    )
                rule = Rule(
                    ranges=tuple(
                        (int(lo), int(hi))
                        for lo, hi in zip(row["lo"], row["hi"])
                    ),
                    priority=int(row["priority"]),
                    name=str(row["name"]),
                )
                event = int(row["event"])
                if event < 0:
                    initial[specs[tenant].tenant_id].append(rule)
                else:
                    if event >= len(events):
                        raise TraceFormatError(
                            f"rule sidecar references churn event {event} "
                            f"but the trace declares only {len(events)}"
                        )
                    op = int(row["op"])
                    if op not in (_OP_ADD, _OP_REMOVE):
                        raise TraceFormatError(
                            f"rule sidecar row carries unknown op code {op} "
                            f"(expected {_OP_ADD}=add or {_OP_REMOVE}=remove)"
                        )
                    delta = deltas.setdefault(
                        event, {"adds": [], "removes": []}
                    )
                    key = "adds" if op == _OP_ADD else "removes"
                    delta[key].append(rule)
        except TraceFormatError:
            raise
        except Exception as error:
            raise TraceFormatError(
                f"trace rule sidecar could not be decoded: {error}"
            ) from error

        rulesets: Dict[str, RuleSet] = {}
        for spec in specs:
            rule_list = initial[spec.tenant_id]
            if not rule_list:
                raise TraceFormatError(
                    f"trace tenant {spec.tenant_id!r} has no initial ruleset"
                )
            rulesets[spec.tenant_id] = RuleSet(
                rule_list, name=ruleset_names.get(spec.tenant_id, "")
            )

        updates: List[RuleUpdate] = []
        try:
            for event, row in enumerate(events):
                tenant = int(row["tenant"])
                if tenant >= len(specs):
                    raise TraceFormatError(
                        f"churn event {event} references tenant index "
                        f"{tenant} but the trace declares only "
                        f"{len(specs)} tenant(s)"
                    )
                delta = deltas.get(event, {"adds": [], "removes": []})
                updates.append(RuleUpdate(
                    tenant_id=specs[tenant].tenant_id,
                    time=float(row["time"]),
                    adds=tuple(delta["adds"]),
                    removes=tuple(delta["removes"]),
                ))
        except TraceFormatError:
            raise
        except Exception as error:
            raise TraceFormatError(
                f"trace churn sidecar could not be decoded: {error}"
            ) from error

        return cls(
            specs=specs,
            rulesets=rulesets,
            records=records,
            updates=updates,
            seed=int(header.get("seed", 0)),
            scenario=dict(header.get("scenario", {})),
        )

    def header(self) -> dict:
        """The JSON header this trace serialises with."""
        return {
            "format_version": TRACE_FORMAT_VERSION,
            "seed": self.seed,
            "scenario": self.scenario,
            "tenants": [
                {
                    "tenant_id": spec.tenant_id,
                    "seed_name": spec.seed_name,
                    "num_rules": spec.num_rules,
                    "seed": spec.seed,
                    "algorithm": spec.algorithm,
                    "binth": spec.binth,
                    "ruleset_name": self.rulesets[spec.tenant_id].name,
                }
                for spec in self.specs
            ],
            "counts": {
                "records": int(self.num_records),
                "rules": self.num_sidecar_rules,
                "events": len(self.updates),
            },
        }

    # ------------------------------------------------------------------ #
    # Equality (field-for-field, used by round-trip tests and diff)
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServingTrace):
            return NotImplemented
        return (
            self.specs == other.specs
            and self.rulesets == other.rulesets
            and all(self.rulesets[t].name == other.rulesets[t].name
                    for t in self.rulesets)
            and np.array_equal(self.records, other.records)
            and self.updates == other.updates
            and self.seed == other.seed
            and self.scenario == other.scenario
        )


#: Character capacity of RULE_DTYPE's name field; longer names would be
#: silently truncated by NumPy, breaking the field-for-field round trip.
#: (NumPy unicode is 4 bytes per character.)
MAX_RULE_NAME_CHARS = RULE_DTYPE["name"].itemsize // 4


def _rule_row(tenant: int, event: int, op: int, rule: Rule) -> tuple:
    if len(rule.name) > MAX_RULE_NAME_CHARS:
        raise TraceFormatError(
            f"rule name {rule.name!r} is {len(rule.name)} characters; the "
            f"trace format stores at most {MAX_RULE_NAME_CHARS} and silent "
            f"truncation would break the round-trip contract"
        )
    los = [lo for lo, _ in rule.ranges]
    his = [hi for _, hi in rule.ranges]
    return (tenant, event, op, rule.priority, los, his, rule.name)
