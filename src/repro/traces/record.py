"""Recording: capture exactly what a live serving run served, as a trace.

The recorder is a tap on the serving harness: run the workload through
:func:`repro.harness.serving.run_serving` with ``record_batches=True``,
then fold the served batches back into arrival order via each request's
``seq`` stamp to produce the golden column — the matched-rule priority the
live run actually answered for every packet.  Works unchanged for
single-process and tenant-sharded runs (``seq`` survives the shard pickle
boundary; batch arrival order does not matter).

Golden traces are only stable under the determinism contract (synchronous
engine swaps, serial retrains — see :mod:`repro.traces.format`), so
:func:`record_serving` defaults ``background_swaps`` to ``False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.exceptions import TraceError
from repro.serve.service import ServedBatch, ServingReport
from repro.traces.format import RECORD_DTYPE, ServingTrace
from repro.traces.io import write_trace
from repro.workloads.scenario import DEFAULT_FAMILIES, MultiTenantWorkload


def fold_batches_by_seq(batches: "list[ServedBatch]", num_records: int,
                        what: str = "workload"):
    """Fold served batches back into stream order via ``Request.seq``.

    Returns ``(served, decisions)``: ``served[i]`` counts how many times
    row ``i`` was answered (exactly once in a healthy run), and
    ``decisions`` is the flat ``(seq, priority)`` list in batch order.
    The one accounting both recording and replay verification rest on —
    a seq outside ``[0, num_records)`` raises :class:`TraceError`.
    """
    served = np.zeros(num_records, dtype=np.int64)
    decisions = []
    for batch in batches:
        for request, priority in zip(batch.requests, batch.priorities):
            seq = request.seq
            if seq < 0 or seq >= num_records:
                raise TraceError(
                    f"served batch carries request seq {seq}, outside the "
                    f"{what}'s {num_records} records"
                )
            served[seq] += 1
            decisions.append((seq, priority))
    return served, decisions


def trace_from_run(
    workload: MultiTenantWorkload,
    report: ServingReport,
    seed: int = 0,
    scenario: Optional[Dict[str, object]] = None,
) -> ServingTrace:
    """Build a trace from a finished run's workload and telemetry.

    ``report`` must carry recorded batches (``record_batches=True``); every
    workload request must have been served exactly once — a request that
    was dropped or double-served raises :class:`~repro.exceptions.TraceError`
    since the golden column would be meaningless.
    """
    if report.batches is None:
        raise TraceError(
            "recording needs served batches; run with record_batches=True"
        )
    requests = workload.requests
    tenant_index = {spec.tenant_id: t
                    for t, spec in enumerate(workload.specs)}

    records = np.zeros(len(requests), dtype=RECORD_DTYPE)
    for i, request in enumerate(requests):
        if request.seq != i:
            raise TraceError(
                f"workload request {i} carries seq {request.seq}; recording "
                f"needs seq-stamped requests (build_workload stamps them)"
            )
        packet = request.packet
        records[i] = (
            request.time,
            tenant_index[request.tenant_id],
            request.flow_id,
            packet.src_ip,
            packet.dst_ip,
            packet.src_port,
            packet.dst_port,
            packet.protocol,
            0,
            -1,
        )

    served, decisions = fold_batches_by_seq(report.batches, len(requests))
    for seq, priority in decisions:
        if priority is not None:
            records[seq]["golden_matched"] = 1
            records[seq]["golden_priority"] = priority
    dropped = int(np.count_nonzero(served == 0))
    duplicated = int(np.count_nonzero(served > 1))
    if dropped or duplicated:
        raise TraceError(
            f"recording is inconsistent: {dropped} request(s) never served, "
            f"{duplicated} served more than once"
        )

    return ServingTrace(
        specs=list(workload.specs),
        rulesets=dict(workload.rulesets),
        records=records,
        updates=list(workload.updates),
        seed=seed,
        scenario=dict(scenario or {}),
    )


@dataclass
class RecordOutcome:
    """What :func:`record_serving` produced: the run, the trace, the file."""

    result: object  #: ServingResult or ShardedServingResult
    trace: ServingTrace
    path: Optional[Path] = None


def record_serving(path: Optional[Union[str, Path]] = None,
                   **run_serving_kwargs) -> RecordOutcome:
    """Run a serving scenario and record it as a replayable trace.

    Accepts every :func:`repro.harness.serving.run_serving` keyword;
    ``record_batches`` is forced on (the golden column comes from the served
    batches) and ``background_swaps`` defaults to ``False`` so the golden
    column is a pure function of the trace clock.  When ``path`` is given
    the trace is also written to disk.
    """
    from repro.harness.serving import run_serving

    run_serving_kwargs["record_batches"] = True
    run_serving_kwargs.setdefault("background_swaps", False)
    scenario = {
        key: value for key, value in sorted(run_serving_kwargs.items())
        if isinstance(value, (int, float, str, bool, type(None)))
    }
    scenario["families"] = list(run_serving_kwargs.get(
        "families", DEFAULT_FAMILIES))
    result = run_serving(**run_serving_kwargs)
    trace = trace_from_run(
        result.workload,
        result.report,
        seed=run_serving_kwargs.get("seed", 0),
        scenario=scenario,
    )
    written = None
    if path is not None:
        written = write_trace(trace, path)
    return RecordOutcome(result=result, trace=trace, path=written)
