"""Binary trace files: the on-disk encoding of a :class:`ServingTrace`.

Layout (all integers little-endian)::

    bytes 0..7    magic  b"REPROTRC"
    bytes 8..9    format version (uint16)
    bytes 10..13  JSON header length in bytes (uint32)
    ...           header JSON (utf-8): seed, scenario, tenant table, counts
    ...           packet records   (np.save, RECORD_DTYPE)
    ...           rule sidecar     (np.save, RULE_DTYPE)
    ...           churn events     (np.save, EVENT_DTYPE)

Every decode error — bad magic, unsupported version, truncated payload,
corrupt arrays, inconsistent counts — surfaces as
:class:`~repro.exceptions.TraceFormatError`, never as a raw NumPy or JSON
traceback, so callers can catch one exception type and report a clean
message for an unreadable file.
"""

from __future__ import annotations

import io
import json
import struct
from pathlib import Path
from typing import Union

import numpy as np

from repro.exceptions import TraceFormatError
from repro.traces.format import (
    EVENT_DTYPE,
    RECORD_DTYPE,
    RULE_DTYPE,
    TRACE_FORMAT_VERSION,
    TRACE_MAGIC,
    ServingTrace,
)

_PREAMBLE = struct.Struct("<HI")  # version, header length


class TraceWriter:
    """Writes :class:`ServingTrace` objects to trace files.

    The encoding is deterministic: the same trace always produces the same
    bytes (header keys are emitted in a fixed order, arrays are fixed
    dtypes), so recorded fixtures can be compared byte-for-byte.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def write(self, trace: ServingTrace) -> Path:
        """Serialise the trace; returns the path written."""
        header = json.dumps(trace.header(), sort_keys=True).encode("utf-8")
        buffer = io.BytesIO()
        buffer.write(TRACE_MAGIC)
        buffer.write(_PREAMBLE.pack(TRACE_FORMAT_VERSION, len(header)))
        buffer.write(header)
        np.save(buffer, trace.records, allow_pickle=False)
        np.save(buffer, trace.rules_sidecar(), allow_pickle=False)
        np.save(buffer, trace.events_sidecar(), allow_pickle=False)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_bytes(buffer.getvalue())
        except OSError as error:
            raise TraceFormatError(
                f"trace file {self.path} could not be written: {error}"
            ) from error
        return self.path


class TraceReader:
    """Reads trace files back into :class:`ServingTrace` objects."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def read(self) -> ServingTrace:
        """Parse and validate the file; raises ``TraceFormatError`` if bad."""
        try:
            data = self.path.read_bytes()
        except OSError as error:
            raise TraceFormatError(
                f"trace file {self.path} could not be read: {error}"
            ) from error
        buffer = io.BytesIO(data)

        magic = buffer.read(len(TRACE_MAGIC))
        if magic != TRACE_MAGIC:
            raise TraceFormatError(
                f"{self.path} is not a repro trace file "
                f"(bad magic {magic!r}, expected {TRACE_MAGIC!r})"
            )
        preamble = buffer.read(_PREAMBLE.size)
        if len(preamble) < _PREAMBLE.size:
            raise TraceFormatError(f"{self.path} is truncated (no preamble)")
        version, header_length = _PREAMBLE.unpack(preamble)
        if version != TRACE_FORMAT_VERSION:
            raise TraceFormatError(
                f"{self.path} uses trace format version {version}; this "
                f"build reads version {TRACE_FORMAT_VERSION}"
            )
        header_bytes = buffer.read(header_length)
        if len(header_bytes) < header_length:
            raise TraceFormatError(
                f"{self.path} is truncated (header cut short)"
            )
        try:
            header = json.loads(header_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise TraceFormatError(
                f"{self.path} has a corrupt header: {error}"
            ) from error
        if not isinstance(header, dict):
            raise TraceFormatError(f"{self.path} header is not a JSON object")

        records = self._load_array(buffer, "packet records", RECORD_DTYPE)
        rules = self._load_array(buffer, "rule sidecar", RULE_DTYPE)
        events = self._load_array(buffer, "churn events", EVENT_DTYPE)

        counts = header.get("counts", {})
        expected = {
            "records": len(records),
            "rules": len(rules),
            "events": len(events),
        }
        for key, actual in expected.items():
            declared = counts.get(key)
            if declared is not None and declared != actual:
                raise TraceFormatError(
                    f"{self.path} declares {declared} {key} but contains "
                    f"{actual} (truncated or corrupt)"
                )

        return ServingTrace.from_arrays(header, records, rules, events)

    def _load_array(self, buffer: io.BytesIO, what: str,
                    dtype: np.dtype) -> np.ndarray:
        try:
            array = np.load(buffer, allow_pickle=False)
        except Exception as error:
            raise TraceFormatError(
                f"{self.path} {what} could not be decoded "
                f"(truncated or corrupt): {error}"
            ) from error
        if array.dtype != dtype:
            raise TraceFormatError(
                f"{self.path} {what} has dtype {array.dtype}, "
                f"expected {dtype}"
            )
        return array


def write_trace(trace: ServingTrace, path: Union[str, Path]) -> Path:
    """Write a trace to disk (convenience wrapper over TraceWriter)."""
    return TraceWriter(path).write(trace)


def read_trace(path: Union[str, Path]) -> ServingTrace:
    """Read and validate a trace file (convenience wrapper over TraceReader)."""
    return TraceReader(path).read()
