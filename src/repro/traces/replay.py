"""Replay: drive the full serving stack from a trace file.

``replay_trace`` rebuilds the serving stack — registry, compiled engines,
micro-batcher, hot swaps, optional retrain controller, optional tenant
shards — from a recorded trace and serves exactly the recorded packet
stream on the trace's own clock.  With ``verify=True`` every served
decision is compared against the trace's golden column, turning the
zero-misclassification invariant into a regression check against a fixed,
versioned input: zero drops, zero duplicates, zero decision diffs.

Replays default to synchronous swaps (the recording determinism contract,
see :mod:`repro.traces.format`); two replays of the same trace then produce
identical decisions *and* identical deterministic telemetry counters
(:func:`deterministic_counters`), in single-process and sharded mode alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.exceptions import TraceError
from repro.ingest.admission import IngestConfig
from repro.serve.controller import RetrainPolicy
from repro.serve.rebalance import DEFAULT_REBALANCE_INTERVAL, RebalancePolicy
from repro.serve.service import ServingReport
from repro.traces.format import ServingTrace
from repro.traces.io import read_trace
from repro.traces.record import fold_batches_by_seq

#: How many mismatch examples a report keeps for display.
MAX_MISMATCH_EXAMPLES = 10


def deterministic_counters(report: ServingReport) -> Dict[str, int]:
    """The telemetry counters that must be identical across replays.

    The canonical definition now lives on
    :meth:`~repro.serve.service.ServingReport.deterministic_counters` (bench
    scorecards gate on it too); this alias keeps the original call site.
    """
    return report.deterministic_counters()


@dataclass(frozen=True)
class ReplayMismatch:
    """One replayed decision that disagreed with the golden column."""

    row: int
    tenant_id: str
    time: float
    golden_priority: Optional[int]
    replayed_priority: Optional[int]


@dataclass
class ReplayReport:
    """Outcome of verifying one replay against a trace's golden column."""

    num_records: int
    num_served: int
    #: Trace rows never answered by the replay (must be 0).
    num_dropped: int
    #: Trace rows answered more than once (must be 0).
    num_duplicates: int
    num_mismatches: int
    mismatches: List[ReplayMismatch] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def is_exact(self) -> bool:
        """True when every packet was served once with the golden answer."""
        return (self.num_dropped == 0 and self.num_duplicates == 0
                and self.num_mismatches == 0)

    def rows(self) -> List[List[object]]:
        """Summary rows for :func:`repro.harness.tables.format_table`."""
        return [
            ["trace records", f"{self.num_records:,}"],
            ["served", f"{self.num_served:,}"],
            ["dropped", f"{self.num_dropped:,}"],
            ["duplicates", f"{self.num_duplicates:,}"],
            ["golden mismatches", f"{self.num_mismatches:,}"],
        ]


def verify_replay(trace: ServingTrace, report: ServingReport) -> ReplayReport:
    """Compare a replay's served decisions against the golden column.

    ``report`` must carry recorded batches.  Decisions map back to trace
    rows via each request's ``seq`` stamp, so batching order, hot swaps,
    retrains, and sharding cannot confuse the comparison.
    """
    if report.batches is None:
        raise TraceError(
            "verification needs served batches; replay with "
            "record_batches=True"
        )
    served, decisions = fold_batches_by_seq(report.batches,
                                            trace.num_records, what="trace")
    mismatches: List[ReplayMismatch] = []
    num_mismatches = 0
    tenant_ids = trace.tenant_ids
    for seq, priority in decisions:
        golden = trace.golden_priority(seq)
        if priority != golden:
            num_mismatches += 1
            if len(mismatches) < MAX_MISMATCH_EXAMPLES:
                record = trace.records[seq]
                mismatches.append(ReplayMismatch(
                    row=seq,
                    tenant_id=tenant_ids[int(record["tenant"])],
                    time=float(record["time"]),
                    golden_priority=golden,
                    replayed_priority=priority,
                ))
    return ReplayReport(
        num_records=trace.num_records,
        num_served=int(served.sum()),
        num_dropped=int(np.count_nonzero(served == 0)),
        num_duplicates=int(np.count_nonzero(served > 1)),
        num_mismatches=num_mismatches,
        mismatches=mismatches,
        counters=deterministic_counters(report),
    )


@dataclass
class ReplayOutcome:
    """What :func:`replay_trace` produced."""

    trace: ServingTrace
    result: object  #: ServingResult or ShardedServingResult
    report: Optional[ReplayReport] = None

    def bench_record(self, name: str,
                     config: Optional[dict] = None) -> "BenchRecord":
        """This replay as a versioned scorecard entry (area ``"replay"``).

        Counters carry the deterministic telemetry plus the verification
        tallies (dropped / duplicates / golden mismatches — all gated at
        exact equality); timings carry the machine-dependent figures.
        """
        from repro.obs.bench import BenchRecord

        serving_report: ServingReport = self.result.report
        counters = dict(serving_report.deterministic_counters())
        counters["num_records"] = self.trace.num_records
        if self.report is not None:
            counters["verify_dropped"] = self.report.num_dropped
            counters["verify_duplicates"] = self.report.num_duplicates
            counters["verify_mismatches"] = self.report.num_mismatches
        timings = {
            "throughput_pps": serving_report.pps,
            "wall_seconds": serving_report.wall_seconds,
            "engine_seconds": serving_report.engine_seconds,
        }
        for pct in sorted(serving_report.latency_percentiles):
            timings[f"latency_p{pct:g}_ms"] = serving_report.latency_ms(pct)
        return BenchRecord(name=name, area="replay", config=config or {},
                           counters=counters, timings=timings)


def replay_trace(
    trace: Union[str, Path, ServingTrace],
    verify: bool = True,
    max_batch: int = 64,
    max_delay: float = 1e-3,
    flow_cache_size: Optional[int] = 2048,
    background_swaps: bool = False,
    retrain_threshold: Optional[int] = None,
    retrain_policy: Optional[RetrainPolicy] = None,
    serving_workers: int = 1,
    serving_backend: str = "process",
    ingest: Optional[IngestConfig] = None,
    rebalance_policy: Optional["RebalancePolicy"] = None,
    rebalance_interval: float = DEFAULT_REBALANCE_INTERVAL,
    bench_path: Optional[Union[str, Path]] = None,
) -> ReplayOutcome:
    """Serve a recorded trace through the full stack and (optionally) verify.

    ``trace`` is a path or an already-loaded :class:`ServingTrace`.  The
    serving knobs are free to differ from the recording run — batch size,
    cache size, shard count, even arming the retrain loop — because served
    decisions depend only on (packet, epoch ruleset) while swaps stay
    synchronous.  ``background_swaps=True`` trades that verifiability for
    realistic swap timing; expect golden mismatches around update times.

    ``ingest`` exercises the ingest-enabled serving path, but admission
    *timing* is bypassed on replays by construction: the trace's packets
    were already admitted when recorded and the trace clock is
    authoritative (docs/traces.md, docs/ingest.md), so golden traces stay
    bit-exact and the ``ingest_*`` counters report zero.

    ``rebalance_policy`` (with ``serving_workers > 1``) replays through
    the rebalancing front-end with live mid-trace tenant migrations;
    decisions still verify exactly because they depend only on
    (packet, epoch ruleset), not on placement.

    ``bench_path`` additionally writes the run as a ``BENCH_replay.json``
    scorecard (see :mod:`repro.obs.bench`).
    """
    from repro.harness.serving import run_serving

    trace_label: Optional[str] = None
    if not isinstance(trace, ServingTrace):
        trace_label = Path(trace).stem
        trace = read_trace(trace)
    result = run_serving(
        trace_path=trace,
        max_batch=max_batch,
        max_delay=max_delay,
        flow_cache_size=flow_cache_size,
        background_swaps=background_swaps,
        record_batches=True,
        retrain_threshold=retrain_threshold,
        retrain_policy=retrain_policy,
        serving_workers=serving_workers,
        serving_backend=serving_backend,
        ingest=ingest,
        rebalance_policy=rebalance_policy,
        rebalance_interval=rebalance_interval,
    )
    report = verify_replay(trace, result.report) if verify else None
    outcome = ReplayOutcome(trace=trace, result=result, report=report)
    if bench_path is not None:
        from repro.obs.bench import write_bench

        record = outcome.bench_record(
            name=f"replay:{trace_label or f'seed{trace.seed}'}",
            config={
                "max_batch": max_batch,
                "max_delay": max_delay,
                "flow_cache_size": flow_cache_size,
                "background_swaps": background_swaps,
                "verify": verify,
                "serving_workers": serving_workers,
            },
        )
        write_bench(record, bench_path)
    return outcome
