"""The classification service: the serving loop over tenants and time.

``ClassificationService.serve`` consumes a time-ordered request stream (and
an optional schedule of rule updates), coalesces requests through the
micro-batcher, executes each released batch on the owning tenant's compiled
engine, and reports serving telemetry: packets/second, latency percentiles,
flow-cache hit rates, and hot-swap counters.

Latency accounting uses two clocks on purpose: the *queueing* delay of a
request (from arrival to batch release) is trace time — a property of the
workload and the batching policy, reproducible across machines — while the
*service* delay is the measured wall time of its batch's engine call.  Both
are seconds, and their sum is the reported request latency.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, \
    Tuple

import numpy as np

from repro.engine.layout import packets_to_array
from repro.ingest.admission import AdmissionController, IngestConfig
from repro.obs.metrics import MetricsRegistry
from repro.rules.rule import Rule
from repro.serve.batcher import BatchPolicy, MicroBatcher, Request
from repro.serve.engines import SwapStats
from repro.serve.registry import TenantRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.controller import RetrainController, RetrainStats

#: Percentiles reported by default (p50 / p90 / p99).
LATENCY_PERCENTILES: Tuple[float, ...] = (50.0, 90.0, 99.0)


@dataclass(frozen=True)
class RuleUpdate:
    """A scheduled rule update for one tenant, applied mid-trace.

    Attributes:
        tenant_id: the tenant whose classifier changes.
        time: trace timestamp at which the update arrives; requests that
            arrived earlier are flushed (and served by the old engine)
            before the update is applied.
        adds: rules to insert (must carry fresh, distinct priorities).
        removes: existing rules to delete.
    """

    tenant_id: str
    time: float
    adds: Tuple[Rule, ...] = ()
    removes: Tuple[Rule, ...] = ()


@dataclass
class ServedBatch:
    """One executed engine batch (kept when ``record_batches=True``)."""

    tenant_id: str
    #: Engine generation that served the batch; index into the slot's
    #: ``ruleset_at`` history, which is what differential checks key on.
    epoch: int
    flush_time: float
    wall_seconds: float
    requests: List[Request]
    #: Winning rule priority per request (None = no match).
    priorities: List[Optional[int]]


@dataclass
class ServingReport:
    """Aggregate telemetry of one ``serve`` run."""

    num_requests: int
    num_batches: int
    num_updates: int
    wall_seconds: float
    engine_seconds: float
    trace_seconds: float
    latency_percentiles: Dict[float, float]
    mean_batch_size: float
    cache_hits: int
    cache_lookups: int
    cache_evictions: int
    cache_invalidations: int
    swaps: int
    swap_stalls: int
    swap_stall_seconds: float
    per_tenant: Dict[str, dict]
    batches: Optional[List[ServedBatch]] = None
    #: Per-request latencies in serve order (``record_latencies=True``);
    #: what lets a sharding front-end merge exact percentiles across workers.
    latencies: Optional[np.ndarray] = None
    #: Retrain-loop counters (zero unless a RetrainController was attached).
    retrains_triggered: int = 0
    retrains_installed: int = 0
    retrains_discarded: int = 0
    #: Retrained trees whose time/space objective failed to beat the
    #: incrementally-patched incumbent (quality gate; see RetrainController).
    retrains_rejected: int = 0
    #: Retrain jobs submitted through a *shared* retrain pool (the
    #: fleet-trainer path; zero when controllers own private executors).
    retrain_queue_submitted: int = 0
    #: Live tenant migrations completed (zero outside the rebalancing
    #: sharded path; see repro.serve.rebalance).
    migrations: int = 0
    #: Rebalance plans evaluated on the trace clock (one per interval).
    rebalance_plans: int = 0
    #: Planned migrations deferred because the tenant had a retrain in
    #: flight at settle time; each deferral is retried until it executes,
    #: so no plan is ever lost (see repro.serve.sharded.serve_rebalancing).
    rebalance_deferred: int = 0
    #: Admission-control tally (all zero when no ingestion frontend is
    #: attached).  Invariant: offered == admitted + throttled + shed, and
    #: num_requests == ingest_admitted whenever ingest_offered > 0 — every
    #: admitted packet is served, every rejection is typed, nothing is
    #: silently dropped.
    ingest_offered: int = 0
    ingest_admitted: int = 0
    ingest_throttled: int = 0
    ingest_shed: int = 0
    #: Phase-timer registry snapshot (compile / swap-install / retrain /
    #: batch-flush / queue-wait spans plus request counters), detached
    #: at the end-of-trace quiesce point so later runs and background
    #: builders can't mutate it.  Cumulative over the registry's lifetime:
    #: repeated ``serve()`` calls on the same ``TenantRegistry`` include
    #: the earlier runs' observations.  Merged exactly across shards by
    #: ``merge_reports``.
    metrics: Optional[MetricsRegistry] = None
    #: Swap counters merged over every tenant slot (raw build_seconds kept,
    #: so cross-shard merges stay exact).
    swap_stats: Optional[SwapStats] = None
    #: Retrain-controller counters with raw train_seconds (None when no
    #: controller was attached).
    retrain_stats: Optional["RetrainStats"] = None

    @property
    def pps(self) -> float:
        """Served packets per wall-clock second."""
        return self.num_requests / max(self.wall_seconds, 1e-12)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.cache_lookups if self.cache_lookups \
            else 0.0

    def latency_ms(self, percentile: float) -> float:
        """A reported latency percentile, in milliseconds."""
        return self.latency_percentiles[percentile] * 1e3

    def deterministic_counters(self) -> Dict[str, int]:
        """The telemetry counters that must be identical across replays.

        Wall-clock figures (pps, latencies, build/train seconds) are
        excluded on purpose: they measure the machine, not the run.  Under
        the determinism contract (synchronous swaps, fixed seed) everything
        here is a pure function of the workload, which is what lets bench
        scorecards gate on exact equality.
        """
        return {
            "num_requests": self.num_requests,
            "num_batches": self.num_batches,
            "num_updates": self.num_updates,
            "swaps": self.swaps,
            "swap_stalls": self.swap_stalls,
            "cache_hits": self.cache_hits,
            "cache_lookups": self.cache_lookups,
            "cache_evictions": self.cache_evictions,
            "cache_invalidations": self.cache_invalidations,
            "retrains_triggered": self.retrains_triggered,
            "retrains_installed": self.retrains_installed,
            "retrains_discarded": self.retrains_discarded,
            "retrains_rejected": self.retrains_rejected,
            "retrain_queue_submitted": self.retrain_queue_submitted,
            "migrations": self.migrations,
            "rebalance_plans": self.rebalance_plans,
            "rebalance_deferred": self.rebalance_deferred,
            "ingest_offered": self.ingest_offered,
            "ingest_admitted": self.ingest_admitted,
            "ingest_throttled": self.ingest_throttled,
            "ingest_shed": self.ingest_shed,
        }

    def rows(self) -> List[List[object]]:
        """Summary rows for :func:`repro.harness.tables.format_table`."""
        rows: List[List[object]] = [
            ["packets served", f"{self.num_requests:,}"],
            ["throughput", f"{self.pps:,.0f} pps"],
            ["batches", f"{self.num_batches:,} "
                        f"(mean {self.mean_batch_size:.1f} pkts)"],
        ]
        for pct in sorted(self.latency_percentiles):
            rows.append([f"latency p{pct:g}", f"{self.latency_ms(pct):.3f} ms"])
        rows.extend([
            ["cache hit rate", f"{self.cache_hit_rate:.1%} "
                               f"({self.cache_hits:,}/{self.cache_lookups:,})"],
            ["cache evictions", f"{self.cache_evictions:,}"],
            ["rule updates", f"{self.num_updates:,}"],
            ["engine swaps", f"{self.swaps:,}"],
            ["swap stalls", f"{self.swap_stalls:,} "
                            f"({self.swap_stall_seconds * 1e3:.1f} ms)"],
        ])
        if self.retrains_triggered:
            rows.append([
                "retrains",
                f"{self.retrains_triggered:,} triggered, "
                f"{self.retrains_installed:,} installed, "
                f"{self.retrains_rejected:,} rejected, "
                f"{self.retrains_discarded:,} discarded",
            ])
        if self.retrain_queue_submitted:
            rows.append([
                "retrain pool",
                f"{self.retrain_queue_submitted:,} jobs via shared pool",
            ])
        if self.migrations or self.rebalance_plans:
            rows.append([
                "rebalancing",
                f"{self.rebalance_plans:,} plans, "
                f"{self.migrations:,} migrations, "
                f"{self.rebalance_deferred:,} deferred",
            ])
        if self.ingest_offered:
            rows.append([
                "admission",
                f"{self.ingest_offered:,} offered: "
                f"{self.ingest_admitted:,} admitted, "
                f"{self.ingest_throttled:,} throttled, "
                f"{self.ingest_shed:,} shed",
            ])
        return rows


class ClassificationService:
    """Serves classification requests for every registered tenant.

    The service is the single *serving thread* the rest of the layer
    assumes: it owns the batcher, calls every slot method, and hosts the
    retrain controller's polling.  Background concurrency (engine builder
    threads, retrain jobs) never touches serving state — finished work is
    *installed* from this thread between batches.  One service instance must
    not be driven from multiple threads; to use more CPUs, shard tenants
    across processes with :mod:`repro.serve.sharded` instead.

    Args:
        registry: tenants to serve (slots are consulted per batch, so
            registrations/updates mid-run are honoured).
        policy: micro-batching knobs.
        record_batches: keep every served batch (with its engine epoch) for
            differential exactness checks.
        record_latencies: additionally report the raw per-request latency
            array, enabling exact percentile merges across sharded workers.
        retrain_controller: a :class:`~repro.serve.controller.RetrainController`
            watching this registry.  The service polls it after every rule
            update and before every batch (so finished retrains install
            promptly), and drains it with the registry at end of trace.
        ingest: attach an ingestion frontend (see :mod:`repro.ingest`):
            every request passes per-tenant admission control before the
            batcher, over-rate traffic is throttled or shed (counted,
            never silently dropped), and admitted requests are re-stamped
            to their admission-queue release times.  ``per_tenant_ingest``
            overrides the uniform config for named tenants.
    """

    def __init__(
        self,
        registry: TenantRegistry,
        policy: BatchPolicy = BatchPolicy(),
        record_batches: bool = False,
        record_latencies: bool = False,
        retrain_controller: Optional["RetrainController"] = None,
        ingest: Optional[IngestConfig] = None,
        per_tenant_ingest: Optional[Dict[str, IngestConfig]] = None,
    ) -> None:
        self.registry = registry
        self.policy = policy
        self.record_batches = record_batches
        self.record_latencies = record_latencies
        self.retrain_controller = retrain_controller
        self.ingest = ingest
        self.per_tenant_ingest = per_tenant_ingest

    # ------------------------------------------------------------------ #
    # Serving loop
    # ------------------------------------------------------------------ #

    def serve(self, requests: Iterable[Request],
              updates: Sequence[RuleUpdate] = ()) -> ServingReport:
        """Serve a time-ordered request stream with scheduled rule updates.

        Every request is answered exactly once; none are dropped across
        updates or engine swaps.  Returns the run's telemetry (and, when
        ``record_batches`` is set, every served batch for differential
        verification).
        """
        # Stable sort: equal-timestamp requests keep their stream order, so
        # a given workload always forms the same batches.
        requests = sorted(requests, key=lambda r: r.time)
        admission: Optional[AdmissionController] = None
        if self.ingest is not None:
            # The frontend decides on arrival stamps and re-stamps admitted
            # requests to their queue release times, so the serving loop
            # below sees the post-admission stream — still time-ordered,
            # still deterministic.
            admission = AdmissionController(
                self.ingest, metrics=self.registry.metrics,
                per_tenant=self.per_tenant_ingest,
            )
            requests = admission.admit(requests)
        session = self.session(updates=updates, admission=admission)
        for request in requests:
            session.offer(request)
        return session.finish()

    def session(self, updates: Sequence[RuleUpdate] = (),
                admission: Optional[AdmissionController] = None
                ) -> "ServingSession":
        """Open an incremental serving session (the streaming form of
        :meth:`serve`).

        Offer requests in time order, then :meth:`ServingSession.finish`.
        The rebalancing front-end (:mod:`repro.serve.sharded`) drives
        several sessions side by side — one per logical shard — routing
        each event to the session that currently owns its tenant, which is
        what makes mid-run tenant migration possible at all.
        """
        return ServingSession(self, updates=updates, admission=admission)


class ServingSession:
    """One in-progress serving run, driven event by event.

    Exactly the loop :meth:`ClassificationService.serve` used to inline,
    split at its event boundaries so a front-end can interleave several
    sessions on one trace clock.  Semantics are identical: updates
    scheduled at construction are applied ahead of the first arrival past
    their timestamp, batches release by size or deadline, and
    :meth:`finish` applies tail updates, drains every queue, and builds
    the :class:`ServingReport`.

    The migration hooks are :meth:`poll` (advance deadline releases to a
    trace timestamp without offering anything), :meth:`queue_depth` (is a
    tenant's in-flight batch drained?), and :meth:`deliver_update` (route
    one update now, for front-ends that own the update schedule).
    """

    def __init__(self, service: ClassificationService,
                 updates: Sequence[RuleUpdate] = (),
                 admission: Optional[AdmissionController] = None) -> None:
        self.service = service
        self.registry = service.registry
        self.batcher = MicroBatcher(service.policy)
        self.admission = admission
        self._pending_updates = sorted(updates, key=lambda u: u.time)
        self._update_index = 0
        self._latencies: List[float] = []
        self._recorded: List[ServedBatch] = []
        self._num_batches = 0
        self._num_served = 0
        self._num_updates = 0
        self._engine_seconds = 0.0
        self._last_time = 0.0
        self._wall_start = time.perf_counter()
        metrics = self.registry.metrics
        self._flush_timing = metrics.timing("serve.batch_flush_seconds")
        self._queue_timing = metrics.timing("serve.queue_wait_seconds")
        self._request_counter = metrics.counter("serve.requests")
        self._batch_counter = metrics.counter("serve.batches")

    # ------------------------------------------------------------------ #
    # Event intake
    # ------------------------------------------------------------------ #

    @property
    def last_time(self) -> float:
        """Largest trace timestamp of any event this session has seen."""
        return self._last_time

    def offer(self, request: Request) -> None:
        """Feed one arrival; applies due scheduled updates first."""
        self._last_time = max(self._last_time, request.time)
        # Apply every update scheduled before this arrival.  The owning
        # tenant's queue is flushed first so packets that arrived before
        # the update are classified by the pre-update engine.
        while self._update_index < len(self._pending_updates) and \
                self._pending_updates[self._update_index].time <= request.time:
            update = self._pending_updates[self._update_index]
            self._update_index += 1
            self.deliver_update(update)
        for tenant_id, batch in self.batcher.offer(request):
            self._execute(tenant_id, batch, request.time)

    def deliver_update(self, update: RuleUpdate) -> None:
        """Apply one rule update now (mid-stream semantics).

        Deadline-expired queues release first, then the owning tenant's
        queue is flushed so pre-update packets see the pre-update engine.
        """
        self._last_time = max(self._last_time, update.time)
        self._num_updates += 1
        for tenant_id, batch in self.batcher.poll(update.time):
            self._execute(tenant_id, batch, update.time)
        self._execute(update.tenant_id, self.batcher.flush(update.tenant_id),
                      update.time)
        self.registry.apply_update(
            update.tenant_id, adds=update.adds, removes=update.removes
        )
        if self.service.retrain_controller is not None:
            # The update may have pushed the slot past its retrain
            # threshold; trigger the background job right away.
            self.service.retrain_controller.poll_tenant(update.tenant_id)

    def poll(self, now: float) -> None:
        """Release every queue whose deadline has passed at ``now``.

        Batch composition is poll-frequency-invariant: a deadline-expired
        queue can never gain members (any later arrival would release it
        first), and the flush-time clamp in ``_execute`` charges latency
        against the deadline either way.  Front-ends use this before a
        migration check so ``queue_depth`` reflects trace time ``now``.
        """
        for tenant_id, batch in self.batcher.poll(now):
            self._execute(tenant_id, batch, now)

    def queue_depth(self, tenant_id: str) -> int:
        """Requests of one tenant still queued (its in-flight batch)."""
        return self.batcher.pending(tenant_id)

    # ------------------------------------------------------------------ #
    # Batch execution
    # ------------------------------------------------------------------ #

    def _execute(self, tenant_id: str, batch: List[Request],
                 flush_time: float) -> None:
        if not batch:
            return
        # The event loop only releases queues when an event (arrival,
        # update, end of trace) reaches it, which can be long after the
        # queue's deadline if the stream went idle.  A timer-driven
        # batcher would have fired at oldest-arrival + max_delay, so
        # queueing latency is charged against that moment (never before
        # the batch's last arrival).
        flush_time = max(batch[-1].time,
                         min(flush_time,
                             batch[0].time + self.service.policy.max_delay))
        if self.service.retrain_controller is not None:
            # Land a finished background retrain before picking the
            # engine, so the new tree starts serving at the earliest
            # batch boundary after training completes.
            self.service.retrain_controller.poll_tenant(tenant_id)
        slot = self.registry.slot(tenant_id)
        engine = slot.engine()  # installs a finished swap, if any
        epoch = slot.epoch
        values = packets_to_array([r.packet for r in batch])
        start = time.perf_counter()
        indices = engine.lookup_batch(values)
        wall = time.perf_counter() - start
        self._engine_seconds += wall
        self._num_batches += 1
        self._num_served += len(batch)
        self._flush_timing.observe(wall)
        self._batch_counter.inc()
        self._request_counter.inc(len(batch))
        self.registry.metrics.counter(
            f"serve.tenant_requests.{tenant_id}").inc(len(batch))
        for request in batch:
            self._queue_timing.observe(flush_time - request.time)
            self._latencies.append((flush_time - request.time) + wall)
        if self.service.record_batches:
            self._recorded.append(ServedBatch(
                tenant_id=tenant_id,
                epoch=epoch,
                flush_time=flush_time,
                wall_seconds=wall,
                requests=batch,
                priorities=[
                    engine.rules[i].priority if i >= 0 else None
                    for i in indices
                ],
            ))

    # ------------------------------------------------------------------ #
    # Quiesce
    # ------------------------------------------------------------------ #

    def finish(self) -> ServingReport:
        """Apply tail updates, drain every queue, and build the report."""
        # Updates scheduled after the last arrival still apply (rule churn
        # with no traffic behind it), then the tail queues drain.
        for update in self._pending_updates[self._update_index:]:
            self._update_index += 1
            self._last_time = max(self._last_time, update.time)
            self._num_updates += 1
            self._execute(update.tenant_id,
                          self.batcher.flush(update.tenant_id), update.time)
            self.registry.apply_update(
                update.tenant_id, adds=update.adds, removes=update.removes
            )
            if self.service.retrain_controller is not None:
                self.service.retrain_controller.poll_tenant(update.tenant_id)
        for tenant_id, batch in self.batcher.flush_all():
            self._execute(tenant_id, batch, self._last_time)
        if self.service.retrain_controller is not None:
            # Quiesce: land every in-flight retrain before the registry
            # drain installs the resulting engine rebuilds.
            self.service.retrain_controller.drain()
        self.registry.drain()
        wall_seconds = time.perf_counter() - self._wall_start

        admission = self.admission
        per_tenant = self.registry.telemetry()
        if admission is not None:
            for tenant_id, summary in \
                    admission.tenant_summary(self._last_time).items():
                per_tenant.setdefault(tenant_id, {})["ingest"] = summary
        cache = {"hits": 0, "lookups": 0, "evictions": 0, "invalidations": 0}
        swaps = stalls = 0
        stall_seconds = 0.0
        for entry in per_tenant.values():
            cache["hits"] += entry["cache"]["hits"]
            cache["lookups"] += entry["cache"]["hits"] + entry["cache"]["misses"]
            cache["evictions"] += entry["cache"]["evictions"]
            cache["invalidations"] += entry["cache"]["invalidations"]
            swaps += entry["swap"]["swaps"]
            stalls += entry["swap"]["stalls"]
            stall_seconds += entry["swap"]["stall_seconds"]
        percentiles = {
            pct: float(np.percentile(self._latencies, pct))
            if self._latencies else 0.0
            for pct in LATENCY_PERCENTILES
        }
        controller = self.service.retrain_controller
        retrain_stats = controller.stats if controller is not None else None
        if retrain_stats is not None:
            # Snapshot (the controller keeps mutating its own instance), with
            # the raw-sample list copied so downstream merges can't alias it.
            retrain_stats = replace(
                retrain_stats, train_seconds=list(retrain_stats.train_seconds)
            )
        return ServingReport(
            num_requests=self._num_served,
            num_batches=self._num_batches,
            num_updates=self._num_updates,
            wall_seconds=wall_seconds,
            engine_seconds=self._engine_seconds,
            trace_seconds=self._last_time,
            latency_percentiles=percentiles,
            mean_batch_size=self._num_served / self._num_batches
            if self._num_batches else 0.0,
            cache_hits=cache["hits"],
            cache_lookups=cache["lookups"],
            cache_evictions=cache["evictions"],
            cache_invalidations=cache["invalidations"],
            swaps=swaps,
            swap_stalls=stalls,
            swap_stall_seconds=stall_seconds,
            per_tenant=per_tenant,
            batches=self._recorded if self.service.record_batches else None,
            latencies=np.asarray(self._latencies, dtype=float)
            if self.service.record_latencies else None,
            retrains_triggered=retrain_stats.triggered if retrain_stats else 0,
            retrains_installed=retrain_stats.installed if retrain_stats else 0,
            retrains_discarded=retrain_stats.discarded if retrain_stats else 0,
            retrains_rejected=retrain_stats.rejected if retrain_stats else 0,
            retrain_queue_submitted=retrain_stats.queued
            if retrain_stats else 0,
            ingest_offered=admission.offered if admission else 0,
            ingest_admitted=admission.admitted if admission else 0,
            ingest_throttled=admission.throttled if admission else 0,
            ingest_shed=admission.shed if admission else 0,
            # Snapshot, like retrain_stats above: the registry is the live
            # shared instance (builder threads and later serve() runs keep
            # writing into it), and the drains above are the one point
            # where no background writer is in flight.
            metrics=self.registry.metrics.snapshot(),
            swap_stats=self.registry.swap_stats(),
            retrain_stats=retrain_stats,
        )
