"""Per-tenant micro-batching of classification requests.

The compiled engine is fastest on vectorised batches, but a serving path
receives *individual* packets.  The :class:`MicroBatcher` bridges the two:
requests accumulate in per-tenant queues and are released as batches when a
queue reaches ``max_batch`` packets or when its oldest request has waited
longer than ``max_delay`` of trace time.  Time is the *workload's* clock
(request arrival timestamps), so batching behaviour is deterministic for a
given trace — the same requests always form the same batches.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.rules.packet import Packet


@dataclass(frozen=True)
class Request:
    """One packet awaiting classification for one tenant.

    Attributes:
        tenant_id: the tenant whose classifier must be consulted.
        packet: the 5-tuple header to classify.
        time: arrival timestamp in trace seconds (drives batching deadlines
            and queueing-latency accounting).
        flow_id: the workload flow this packet belongs to (per-tenant
            namespace; -1 when the source carries no flow structure).
        seq: position of the request in its workload's time-ordered stream
            (-1 for ad-hoc requests).  Stable across batching, hot swaps,
            and the shard pickle boundary, which is what lets trace
            recording map served decisions back to trace rows.
    """

    tenant_id: str
    packet: Packet
    time: float = 0.0
    flow_id: int = -1
    seq: int = -1


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs controlling how requests coalesce into engine batches.

    Attributes:
        max_batch: release a tenant's queue once it holds this many requests.
        max_delay: release a tenant's queue once its oldest request has
            waited this many trace seconds (the latency/throughput knob).
    """

    max_batch: int = 64
    max_delay: float = 1e-3

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_delay < 0:
            raise ValueError("max_delay must be >= 0")


class MicroBatcher:
    """Coalesces per-packet requests into per-tenant batches.

    Not thread-safe by design: the batcher belongs to the single serving
    thread (see :class:`~repro.serve.service.ClassificationService`), and
    all timing is *trace* time carried on the requests themselves — never
    the wall clock — so a given request stream always forms the same
    batches, on any machine, at any execution speed.  ``offer``/``poll``
    release batches on the live path; ``flush``/``flush_all`` are the
    quiesce operations (pre-update barrier, end of trace) that release
    queues regardless of size or deadline.
    """

    def __init__(self, policy: BatchPolicy = BatchPolicy()) -> None:
        self.policy = policy
        # Insertion-ordered so deadline flushes release tenants in the order
        # their oldest requests arrived (OrderedDict keyed by tenant).
        self._queues: "OrderedDict[str, List[Request]]" = OrderedDict()

    def __len__(self) -> int:
        """Total number of queued (not yet released) requests."""
        return sum(len(q) for q in self._queues.values())

    @property
    def pending_tenants(self) -> List[str]:
        return [t for t, q in self._queues.items() if q]

    def pending(self, tenant_id: str) -> int:
        """Requests of one tenant still queued (0 = no in-flight batch)."""
        return len(self._queues.get(tenant_id, []))

    def offer(self, request: Request) -> List[Tuple[str, List[Request]]]:
        """Enqueue a request; returns any batches released by its arrival.

        The arrival first expires every queue whose deadline has passed at
        ``request.time`` (trace time only moves forward), then the request
        joins its tenant's queue, which is released immediately if full.
        """
        released = self.poll(request.time)
        queue = self._queues.setdefault(request.tenant_id, [])
        queue.append(request)
        if len(queue) >= self.policy.max_batch:
            released.append((request.tenant_id, queue))
            self._queues[request.tenant_id] = []
        return released

    def poll(self, now: float) -> List[Tuple[str, List[Request]]]:
        """Release every queue whose oldest request exceeded ``max_delay``."""
        released: List[Tuple[str, List[Request]]] = []
        for tenant_id, queue in list(self._queues.items()):
            if queue and now - queue[0].time >= self.policy.max_delay:
                released.append((tenant_id, queue))
                self._queues[tenant_id] = []
        return released

    def flush(self, tenant_id: str) -> List[Request]:
        """Release one tenant's queue regardless of size or deadline."""
        queue = self._queues.get(tenant_id, [])
        self._queues[tenant_id] = []
        return queue

    def flush_all(self) -> List[Tuple[str, List[Request]]]:
        """Release every non-empty queue (end of trace)."""
        released = [(t, q) for t, q in self._queues.items() if q]
        self._queues = OrderedDict()
        return released
