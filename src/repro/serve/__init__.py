"""Multi-tenant serving layer over the compiled dataplane engine.

Construction (training, heuristics) and execution (the compiled engine)
already exist; this package is the *serving* side: a
:class:`~repro.serve.registry.TenantRegistry` holds one compiled engine per
tenant behind double-buffered :class:`~repro.serve.engines.EngineSlot`
objects (zero-downtime rule updates via background recompile + atomic
swap), a :class:`~repro.serve.batcher.MicroBatcher` coalesces per-packet
requests into vectorised batches, and the
:class:`~repro.serve.service.ClassificationService` drives a time-ordered
request stream through it all while collecting serving telemetry.

Typical use::

    registry = TenantRegistry()
    registry.register("tenant-a", ruleset, algorithm="HiCuts")
    service = ClassificationService(registry, BatchPolicy(max_batch=64))
    report = service.serve(requests, updates=churn_events)
    print(report.pps, report.latency_ms(99.0), report.cache_hit_rate)
"""

from repro.serve.batcher import BatchPolicy, MicroBatcher, Request
from repro.serve.controller import (
    RETRAIN_BACKENDS,
    RetrainController,
    RetrainPolicy,
    RetrainStats,
)
from repro.serve.engines import DEFAULT_RETRAIN_THRESHOLD, EngineSlot, \
    SlotState, SwapStats
from repro.serve.rebalance import (
    DEFAULT_REBALANCE_INTERVAL,
    REBALANCE_POLICIES,
    LoadAwareRebalancePolicy,
    MigrationPlan,
    NoRebalancePolicy,
    RebalancePolicy,
    ScheduledRebalancePolicy,
    ShardTelemetry,
    TelemetrySnapshot,
    TenantLoad,
    TenantMigration,
    make_rebalance_policy,
)
from repro.serve.registry import TenantRegistry, UnknownTenantError
from repro.serve.service import (
    LATENCY_PERCENTILES,
    ClassificationService,
    RuleUpdate,
    ServedBatch,
    ServingReport,
    ServingSession,
)
from repro.serve.sharded import (
    SERVING_BACKENDS,
    ShardOutcome,
    ShardPlan,
    ShardTask,
    ShardTenant,
    merge_reports,
    serve_rebalancing,
    serve_shard,
    serve_sharded,
    shard_tenants,
)

__all__ = [
    "BatchPolicy",
    "MicroBatcher",
    "Request",
    "RETRAIN_BACKENDS",
    "RetrainController",
    "RetrainPolicy",
    "RetrainStats",
    "DEFAULT_RETRAIN_THRESHOLD",
    "EngineSlot",
    "SlotState",
    "SwapStats",
    "DEFAULT_REBALANCE_INTERVAL",
    "REBALANCE_POLICIES",
    "LoadAwareRebalancePolicy",
    "MigrationPlan",
    "NoRebalancePolicy",
    "RebalancePolicy",
    "ScheduledRebalancePolicy",
    "ShardTelemetry",
    "TelemetrySnapshot",
    "TenantLoad",
    "TenantMigration",
    "make_rebalance_policy",
    "TenantRegistry",
    "UnknownTenantError",
    "LATENCY_PERCENTILES",
    "ClassificationService",
    "RuleUpdate",
    "ServedBatch",
    "ServingReport",
    "ServingSession",
    "SERVING_BACKENDS",
    "ShardOutcome",
    "ShardPlan",
    "ShardTask",
    "ShardTenant",
    "merge_reports",
    "serve_rebalancing",
    "serve_shard",
    "serve_sharded",
    "shard_tenants",
]
