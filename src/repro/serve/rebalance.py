"""Load-aware shard rebalancing: telemetry in, migration plans out.

Static round-robin sharding (:func:`repro.serve.sharded.shard_tenants`)
fixes tenant placement for the life of a run, so a flash crowd on one
tenant turns its shard into the hot spot while the others idle.  This
module closes the loop: a :class:`RebalancePolicy` consumes a
:class:`TelemetrySnapshot` — per-tenant request counters, queue-wait
percentiles, and ingestion goodput gauges, all read from the shards' live
:class:`~repro.obs.metrics.MetricsRegistry` instances — and emits a
:class:`MigrationPlan` naming which tenants should move where.  The
rebalancing front-end (:func:`repro.serve.sharded.serve_sharded` with
``rebalance_policy=``) executes the plan via live slot migration.

Determinism is the design constraint throughout:

* Snapshots are taken at **trace-clock interval boundaries** (the first
  event at or past ``k * interval`` triggers evaluation ``k``), never on
  the wall clock, so the same workload always produces the same sequence
  of snapshots.
* A policy's :meth:`~RebalancePolicy.plan` must be a **pure function of
  the snapshot** — no internal mutable state, no randomness.  Planning
  twice on the same snapshot must return the identical plan (the property
  tests in ``tests/test_shard_rebalance.py`` enforce this).
* :class:`LoadAwareRebalancePolicy` only emits **strictly improving**
  moves: each migration must lower the maximum shard load, which is a
  decreasing potential function — re-planning after applying a plan can
  never bounce a tenant back (no oscillation), and a balanced placement
  yields the empty plan.

Tenant load is attributed by *current placement*, not by which shard's
metrics hold the samples: a migrated tenant's request history follows it
to the target shard when shard loads are computed.  Without this, the
source shard would keep a ghost of the migrated tenant's past load and
the policy would over-correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.serialize import stable_dict

#: Prefix of the per-tenant request counters the serving session maintains.
TENANT_REQUESTS_PREFIX = "serve.tenant_requests."

#: Default trace-seconds between rebalance evaluations.
DEFAULT_REBALANCE_INTERVAL = 0.05


# --------------------------------------------------------------------------- #
# Telemetry snapshot
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class TenantLoad:
    """One tenant's load figures at snapshot time.

    ``requests`` is cumulative over the whole run and summed across every
    shard's registry, so it stays meaningful for tenants that already
    migrated (their early samples live in the source shard's metrics).
    """

    tenant_id: str
    #: Requests served so far (all shards, cumulative).
    requests: int
    #: Ingestion goodput gauge (``ingest.goodput_pps.<tenant>``), 0.0 when
    #: no ingestion frontend is attached.
    goodput_pps: float = 0.0
    #: Requests currently queued in the owning shard's micro-batcher.
    queue_depth: int = 0


@dataclass(frozen=True)
class ShardTelemetry:
    """One logical shard's view at snapshot time."""

    shard_index: int
    #: Tenants currently placed on this shard, with their loads.
    tenants: Tuple[TenantLoad, ...]
    #: p99 of ``serve.queue_wait_seconds`` on this shard (0.0 when the
    #: shard has served nothing yet).
    queue_wait_p99: float = 0.0

    @property
    def total_requests(self) -> int:
        return sum(t.requests for t in self.tenants)


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Everything a rebalance policy may look at, frozen at one instant.

    Policies must treat this as their *only* input: two calls on equal
    snapshots must return equal plans.
    """

    #: Which interval boundary triggered this snapshot (1 = first).
    interval: int
    #: Trace timestamp of the event that crossed the boundary.
    time: float
    shards: Tuple[ShardTelemetry, ...]

    def placement(self) -> Dict[str, int]:
        """Current tenant -> shard-index assignment."""
        return {t.tenant_id: shard.shard_index
                for shard in self.shards for t in shard.tenants}

    def shard_loads(self) -> Dict[int, int]:
        """Total served requests per shard under the current placement."""
        return {shard.shard_index: shard.total_requests
                for shard in self.shards}

    @classmethod
    def capture(
        cls,
        interval: int,
        time: float,
        placements: Mapping[str, int],
        registries: Sequence[MetricsRegistry],
        queue_depths: Optional[Mapping[str, int]] = None,
        goodput: Optional[Mapping[str, float]] = None,
    ) -> "TelemetrySnapshot":
        """Read the live registries into a frozen snapshot.

        ``registries`` is indexed by shard; per-tenant request counters are
        summed across *all* of them (migrated tenants leave samples
        behind), then attributed to the shard ``placements`` currently
        assigns the tenant to.  ``goodput`` carries the front-end admission
        controller's per-tenant goodput when one is attached.
        """
        requests: Dict[str, int] = {}
        for registry in registries:
            for name, counter in registry.counters.items():
                if name.startswith(TENANT_REQUESTS_PREFIX):
                    tenant_id = name[len(TENANT_REQUESTS_PREFIX):]
                    requests[tenant_id] = \
                        requests.get(tenant_id, 0) + counter.value
        by_shard: Dict[int, List[TenantLoad]] = \
            {index: [] for index in range(len(registries))}
        for tenant_id in sorted(placements):
            shard_index = placements[tenant_id]
            by_shard.setdefault(shard_index, []).append(TenantLoad(
                tenant_id=tenant_id,
                requests=requests.get(tenant_id, 0),
                goodput_pps=(goodput or {}).get(tenant_id, 0.0),
                queue_depth=(queue_depths or {}).get(tenant_id, 0),
            ))
        shards = tuple(
            ShardTelemetry(
                shard_index=index,
                tenants=tuple(by_shard.get(index, ())),
                queue_wait_p99=(
                    registries[index]
                    .timing("serve.queue_wait_seconds").percentile(99.0)
                    if index < len(registries) else 0.0
                ),
            )
            for index in sorted(by_shard)
        )
        return cls(interval=interval, time=time, shards=shards)


# --------------------------------------------------------------------------- #
# Plans
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class TenantMigration:
    """Move one tenant from ``source_shard`` to ``target_shard``."""

    tenant_id: str
    source_shard: int
    target_shard: int

    def as_dict(self) -> dict:
        return stable_dict({
            "tenant_id": self.tenant_id,
            "source_shard": self.source_shard,
            "target_shard": self.target_shard,
        })


@dataclass(frozen=True)
class MigrationPlan:
    """The (possibly empty) set of moves one evaluation decided on."""

    interval: int
    migrations: Tuple[TenantMigration, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.migrations)


# --------------------------------------------------------------------------- #
# Policies
# --------------------------------------------------------------------------- #

class RebalancePolicy:
    """Base class: turn a telemetry snapshot into a migration plan.

    Subclasses implement :meth:`plan` as a *pure function of the
    snapshot*: no mutable internal state, no clocks, no randomness.  The
    front-end owns when snapshots are taken and how plans are executed; a
    policy only decides *what should move*.
    """

    name = "none"

    def plan(self, snapshot: TelemetrySnapshot) -> MigrationPlan:
        raise NotImplementedError


class NoRebalancePolicy(RebalancePolicy):
    """Never migrates (the explicit form of static placement)."""

    name = "none"

    def plan(self, snapshot: TelemetrySnapshot) -> MigrationPlan:
        return MigrationPlan(interval=snapshot.interval)


@dataclass(frozen=True)
class LoadAwareRebalancePolicy(RebalancePolicy):
    """Greedy strictly-improving moves from the hottest to the coldest shard.

    Each evaluation:

    1. Compute per-shard loads (served requests under current placement).
    2. If ``max_load <= imbalance_ratio * mean_load``, the placement is
       balanced enough: return the empty plan (conservatism — migrations
       are not free, so near-balance is left alone).
    3. Otherwise pick the hottest shard (ties broken by lowest index) and
       the coldest shard, and move the largest tenant of the hottest shard
       whose move *strictly lowers the maximum of the two shards' loads*
       (ties between tenants broken by tenant id).  Repeat against the
       post-move loads up to ``max_migrations_per_cycle`` times.

    Every move strictly decreases ``max(shard loads)`` restricted to the
    pair involved, and never raises the global maximum — a decreasing
    potential, so iterating the policy terminates and two consecutive
    evaluations on the same telemetry can never ping-pong a tenant.
    """

    name = "load"

    #: Plans stay empty until the hottest shard exceeds this multiple of
    #: the mean shard load.
    imbalance_ratio: float = 1.2
    #: Upper bound on moves per evaluation (migrations drain and recompile,
    #: so plans are kept small and the next interval re-evaluates).
    max_migrations_per_cycle: int = 1

    def __post_init__(self) -> None:
        if self.imbalance_ratio < 1.0:
            raise ValueError("imbalance_ratio must be >= 1.0")
        if self.max_migrations_per_cycle < 1:
            raise ValueError("max_migrations_per_cycle must be >= 1")

    def plan(self, snapshot: TelemetrySnapshot) -> MigrationPlan:
        if len(snapshot.shards) < 2:
            return MigrationPlan(interval=snapshot.interval)
        loads = snapshot.shard_loads()
        tenants: Dict[int, List[TenantLoad]] = {
            shard.shard_index: sorted(shard.tenants,
                                      key=lambda t: (-t.requests, t.tenant_id))
            for shard in snapshot.shards
        }
        moves: List[TenantMigration] = []
        for _ in range(self.max_migrations_per_cycle):
            mean = sum(loads.values()) / len(loads)
            hot = min(loads, key=lambda i: (-loads[i], i))
            cold = min(loads, key=lambda i: (loads[i], i))
            if hot == cold or loads[hot] <= self.imbalance_ratio * mean:
                break
            move = None
            for tenant in tenants[hot]:
                # Strict improvement on the pair: after the move, neither
                # shard may reach the hot shard's current load.
                if max(loads[hot] - tenant.requests,
                       loads[cold] + tenant.requests) < loads[hot]:
                    move = tenant
                    break
            if move is None:
                break
            moves.append(TenantMigration(tenant_id=move.tenant_id,
                                         source_shard=hot,
                                         target_shard=cold))
            loads[hot] -= move.requests
            loads[cold] += move.requests
            tenants[hot] = [t for t in tenants[hot]
                            if t.tenant_id != move.tenant_id]
            tenants[cold] = sorted(
                tenants[cold] + [move],
                key=lambda t: (-t.requests, t.tenant_id))
        return MigrationPlan(interval=snapshot.interval,
                             migrations=tuple(moves))


@dataclass(frozen=True)
class ScheduledRebalancePolicy(RebalancePolicy):
    """Migrate named tenants at named interval boundaries, unconditionally.

    The test harness's forcing policy: differential tests use it to inject
    migrations at known trace-clock points regardless of load, so the
    exactness and determinism contracts can be exercised without having to
    construct a load imbalance.  ``moves`` is a sequence of
    ``(interval, tenant_id, target_shard)`` triples; the source shard is
    read from the snapshot's placement, and moves that are already
    satisfied (tenant on the target) or name unknown tenants are skipped.
    Still a pure function of the snapshot: the schedule is frozen at
    construction.
    """

    name = "scheduled"

    moves: Tuple[Tuple[int, str, int], ...] = ()

    def plan(self, snapshot: TelemetrySnapshot) -> MigrationPlan:
        placement = snapshot.placement()
        migrations = []
        for interval, tenant_id, target in self.moves:
            if interval != snapshot.interval:
                continue
            source = placement.get(tenant_id)
            if source is None or source == target:
                continue
            if target >= len(snapshot.shards):
                continue
            migrations.append(TenantMigration(tenant_id=tenant_id,
                                              source_shard=source,
                                              target_shard=target))
        return MigrationPlan(interval=snapshot.interval,
                             migrations=tuple(migrations))


#: Policy names accepted by the CLI / harness (factories, not instances:
#: policies are cheap and some runs want fresh dataclass instances).
REBALANCE_POLICIES = {
    "none": NoRebalancePolicy,
    "load": LoadAwareRebalancePolicy,
}


def make_rebalance_policy(name: str) -> RebalancePolicy:
    """Build a rebalance policy by CLI name."""
    factory = REBALANCE_POLICIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown rebalance policy {name!r}; "
            f"choose from {sorted(REBALANCE_POLICIES)}"
        )
    return factory()
