"""The tenant registry: many classifiers behind one serving endpoint.

Each tenant owns a ruleset, a decision-tree classifier built by any of the
repository's algorithms (a baseline heuristic or a trained NeuroCuts tree),
and an :class:`~repro.serve.engines.EngineSlot` holding its live compiled
engine.  The registry is the control plane: tenants register and deregister
at runtime, and rule updates are routed to the owning slot.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Sequence

from repro.baselines import default_baselines
from repro.engine.cache import DEFAULT_FLOW_CACHE_SIZE
from repro.obs.metrics import MetricsRegistry
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet
from repro.serve.engines import DEFAULT_RETRAIN_THRESHOLD, EngineSlot, \
    SlotState, SwapStats
from repro.tree.lookup import TreeClassifier


class UnknownTenantError(KeyError):
    """Raised when a request or update names a tenant never registered."""


class TenantRegistry:
    """Registers tenants and owns their engine slots.

    **Thread-safety.**  Like the slots it owns, the registry expects a
    single serving thread: registration, updates, and telemetry reads all
    happen from that thread, while each slot's background builder thread
    only ever reads tree state.  Sharding tenants across *processes* (see
    :mod:`repro.serve.sharded`) gives each worker its own registry, so no
    cross-process synchronisation exists or is needed.
    """

    def __init__(
        self,
        default_flow_cache_size: Optional[int] = DEFAULT_FLOW_CACHE_SIZE,
        background_swaps: bool = True,
        default_retrain_threshold: int = DEFAULT_RETRAIN_THRESHOLD,
        metrics: Optional[MetricsRegistry] = None,
        engine_backend: str = "numpy",
        partial_recompile: bool = True,
    ) -> None:
        self.default_flow_cache_size = default_flow_cache_size
        self.background_swaps = background_swaps
        self.default_retrain_threshold = default_retrain_threshold
        #: Traversal backend every slot compiles with (see
        #: repro.engine.kernels.ENGINE_BACKENDS).
        self.engine_backend = engine_backend
        self.partial_recompile = partial_recompile
        #: Shared phase-timer registry: every slot this registry creates
        #: records compile/install/retrain spans here, so one merge covers
        #: the whole control plane.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Pre-register the fleet-trainer gauge so every snapshot carries it
        # with a stable schema, whether or not a shared retrain pool is
        # configured (controllers update it on submit/install).
        self.metrics.gauge("serve.retrain_queue_depth").set(0)
        self._slots: "OrderedDict[str, EngineSlot]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._slots

    def __iter__(self) -> Iterator[str]:
        return iter(self._slots)

    def tenants(self) -> List[str]:
        """Tenant ids in registration order."""
        return list(self._slots)

    # ------------------------------------------------------------------ #
    # Control plane
    # ------------------------------------------------------------------ #

    def register(
        self,
        tenant_id: str,
        ruleset: Optional[RuleSet] = None,
        classifier: Optional[TreeClassifier] = None,
        algorithm: str = "HiCuts",
        binth: int = 8,
        flow_cache_size: Optional[int] = None,
        retrain_threshold: Optional[int] = None,
    ) -> EngineSlot:
        """Register a tenant and compile its serving engine.

        Either pass a prebuilt ``classifier`` (e.g. a trained NeuroCuts
        tree) or a ``ruleset`` plus the name of a baseline ``algorithm`` to
        build one with.  ``retrain_threshold`` overrides the registry-wide
        default for when the slot's ``needs_retraining()`` starts advising a
        retrain.  Returns the tenant's engine slot.
        """
        if tenant_id in self._slots:
            raise ValueError(f"tenant {tenant_id!r} is already registered")
        if classifier is None:
            if ruleset is None:
                raise ValueError("register() needs a ruleset or a classifier")
            builders = default_baselines(binth=binth)
            builder = builders.get(algorithm)
            if builder is None:
                raise ValueError(
                    f"unknown algorithm {algorithm!r}; "
                    f"choose from {sorted(builders)}"
                )
            classifier = builder.build(ruleset)
        if flow_cache_size is None:
            flow_cache_size = self.default_flow_cache_size
        if retrain_threshold is None:
            retrain_threshold = self.default_retrain_threshold
        slot = EngineSlot(
            tenant_id,
            classifier,
            flow_cache_size=flow_cache_size,
            background=self.background_swaps,
            retrain_threshold=retrain_threshold,
            metrics=self.metrics,
            engine_backend=self.engine_backend,
            partial_recompile=self.partial_recompile,
        )
        self._slots[tenant_id] = slot
        self.metrics.gauge("serve.tenants").set(len(self._slots))
        return slot

    def deregister(self, tenant_id: str) -> EngineSlot:
        """Remove a tenant; its in-flight rebuild (if any) is drained first."""
        slot = self.slot(tenant_id)
        slot.force_swap()
        del self._slots[tenant_id]
        self.metrics.gauge("serve.tenants").set(len(self._slots))
        return slot

    def export_slot(self, tenant_id: str) -> SlotState:
        """Remove a tenant and return its picklable serving state.

        The ship half of a live migration: the slot quiesces (pending
        rebuild installed), its full state — trees, epoch history, pending
        update counters, swap stats, flow cache — is snapshotted, and the
        tenant leaves this registry.  Feed the state to another registry's
        :meth:`import_slot`.
        """
        slot = self.slot(tenant_id)
        state = slot.export_state()
        del self._slots[tenant_id]
        self.metrics.gauge("serve.tenants").set(len(self._slots))
        self.metrics.counter("serve.migrations_out").inc()
        return state

    def import_slot(self, state: SlotState) -> EngineSlot:
        """Install a migrated tenant from its shipped state.

        The install half of a live migration: the engine is recompiled
        from the shipped trees (same atomic-install path as registration),
        the epoch history carries over, and the tenant starts serving here
        at the exact epoch it left the source shard on.
        """
        if state.tenant_id in self._slots:
            raise ValueError(
                f"tenant {state.tenant_id!r} is already registered"
            )
        slot = EngineSlot.from_state(state, metrics=self.metrics)
        self._slots[state.tenant_id] = slot
        self.metrics.gauge("serve.tenants").set(len(self._slots))
        self.metrics.counter("serve.migrations_in").inc()
        return slot

    def slot(self, tenant_id: str) -> EngineSlot:
        slot = self._slots.get(tenant_id)
        if slot is None:
            raise UnknownTenantError(
                f"tenant {tenant_id!r} is not registered "
                f"(known: {self.tenants()})"
            )
        return slot

    def apply_update(self, tenant_id: str, adds: Sequence[Rule] = (),
                     removes: Sequence[Rule] = ()) -> EngineSlot:
        """Route a rule update to the owning slot (hot swap scheduled)."""
        slot = self.slot(tenant_id)
        slot.apply_update(adds=adds, removes=removes)
        return slot

    def drain(self) -> None:
        """Force every pending engine swap to complete (quiesce point)."""
        for slot in self._slots.values():
            slot.force_swap()

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #

    def swap_stats(self) -> SwapStats:
        """Swap counters merged across every registered tenant's slot."""
        merged = SwapStats()
        for slot in self._slots.values():
            merged.merge(slot.swap_stats)
        return merged

    def telemetry(self) -> Dict[str, dict]:
        """Per-tenant cache, swap, and retrain counters, keyed by tenant id.

        Each entry is taken through
        :meth:`~repro.serve.engines.EngineSlot.telemetry_snapshot`, which
        captures the slot's classifier/updater pair under its swap
        versioning — a reader racing a background adopt can never see a
        half-updated retrain entry (retrained trees paired with pre-adopt
        counters, or vice versa).
        """
        return {
            tenant_id: slot.telemetry_snapshot()
            for tenant_id, slot in self._slots.items()
        }
