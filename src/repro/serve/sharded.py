"""Multi-process serving: tenants sharded across workers, telemetry merged.

One :class:`~repro.serve.service.ClassificationService` is single-threaded
by design; to use more cores the layer scales *out*, the classic
shard-the-workload move: tenants are partitioned across N serving workers
(each worker a full serving stack — registry, engine slots, micro-batcher,
optional retrain controller — over just its tenants), the request stream is
routed by tenant to the owning shard, and a front-end merges the shards'
telemetry into one report.

Because tenants never share state, sharding is *exact by construction*:
each request is served by the same engine generation it would have seen in
a single-process run, and every per-epoch exactness guarantee carries over
shard-locally.  The merge is exact too — workers return raw latency arrays
(not pre-computed percentiles), so the merged percentiles equal those of a
single process serving the union.

The shard task (:func:`serve_shard`) is a module-level pure function of a
picklable payload, so it runs unchanged on every
:class:`repro.executors.RolloutExecutor` backend: ``"process"`` for real
multi-core serving, ``"thread"``/``"serial"`` for deterministic tests on
small machines.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.executors import EXECUTOR_BACKENDS, make_executor
from repro.ingest.admission import IngestConfig
from repro.obs.metrics import MetricsRegistry
from repro.rules.ruleset import RuleSet
from repro.serve.batcher import BatchPolicy, Request
from repro.serve.controller import RetrainController, RetrainPolicy, \
    RetrainStats
from repro.serve.engines import DEFAULT_RETRAIN_THRESHOLD, SwapStats
from repro.serve.registry import TenantRegistry
from repro.serve.service import (
    LATENCY_PERCENTILES,
    ClassificationService,
    RuleUpdate,
    ServingReport,
)

#: Executor backends serving shards may run on (one source of truth:
#: whatever :func:`repro.executors.make_executor` accepts).
SERVING_BACKENDS = EXECUTOR_BACKENDS


@dataclass(frozen=True)
class ShardTenant:
    """One tenant as a shard worker sees it: id plus engine-build knobs."""

    tenant_id: str
    algorithm: str = "HiCuts"
    binth: int = 8


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic assignment of tenants to serving shards.

    Round-robin in registration order, so the plan is a pure function of
    (tenant order, shard count) — the same workload always shards the same
    way, which keeps sharded runs reproducible and lets tests compare
    against a single-process run of the identical scenario.
    """

    num_shards: int
    assignments: Tuple[Tuple[str, ...], ...]

    def shard_of(self, tenant_id: str) -> int:
        """The shard index serving the given tenant."""
        for index, tenants in enumerate(self.assignments):
            if tenant_id in tenants:
                return index
        raise KeyError(f"tenant {tenant_id!r} is not in this plan")


def shard_tenants(tenant_ids: Sequence[str], num_shards: int) -> ShardPlan:
    """Partition tenants round-robin across ``num_shards`` workers.

    Shards can end up empty when there are more shards than tenants; such
    shards are skipped at dispatch (no worker is launched for them).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    buckets: List[List[str]] = [[] for _ in range(num_shards)]
    for i, tenant_id in enumerate(tenant_ids):
        buckets[i % num_shards].append(tenant_id)
    return ShardPlan(num_shards=num_shards,
                     assignments=tuple(tuple(b) for b in buckets))


@dataclass
class ShardTask:
    """The picklable payload one serving worker executes.

    Carries everything a worker needs to rebuild its slice of the serving
    stack from scratch: tenant specs and rulesets (engines are compiled
    inside the worker — compiled arrays never cross the process boundary),
    the tenant-filtered request stream and update schedule, and the serving
    and retrain knobs.
    """

    shard_index: int
    tenants: List[ShardTenant]
    rulesets: Dict[str, RuleSet]
    requests: List[Request]
    updates: List[RuleUpdate] = field(default_factory=list)
    max_batch: int = 64
    max_delay: float = 1e-3
    flow_cache_size: Optional[int] = 2048
    background_swaps: bool = True
    record_batches: bool = False
    retrain_threshold: int = DEFAULT_RETRAIN_THRESHOLD
    retrain_policy: Optional[RetrainPolicy] = None
    engine_backend: str = "numpy"
    #: Admission control, applied shard-locally.  Exact vs. a single
    #: process: admission state is per-tenant and tenants never share a
    #: shard, so per-shard decisions equal the unsharded ones.
    ingest: Optional[IngestConfig] = None


@dataclass
class ShardOutcome:
    """What one serving worker sends back to the front-end.

    ``report.latencies`` is always populated (shards record latencies so the
    front-end can merge exact percentiles), and ``epoch_rulesets`` carries
    each tenant's full per-epoch ruleset history so differential exactness
    can be verified *in the front-end process* against recorded batches.
    """

    shard_index: int
    tenant_ids: List[str]
    report: ServingReport
    #: Per tenant: the ruleset snapshot of every engine epoch, in order.
    epoch_rulesets: Dict[str, List[RuleSet]]
    #: Wall seconds this shard spent inside its serve() call.
    wall_seconds: float = 0.0


def serve_shard(task: ShardTask) -> ShardOutcome:
    """Serve one shard's tenants (the executor-facing task function)."""
    registry = TenantRegistry(
        default_flow_cache_size=task.flow_cache_size,
        background_swaps=task.background_swaps,
        default_retrain_threshold=task.retrain_threshold,
        engine_backend=task.engine_backend,
    )
    for tenant in task.tenants:
        registry.register(tenant.tenant_id, task.rulesets[tenant.tenant_id],
                          algorithm=tenant.algorithm, binth=tenant.binth)
    retrain_policy = task.retrain_policy
    if retrain_policy is not None and retrain_policy.backend == "process" \
            and multiprocessing.current_process().daemon:
        # Pool workers are daemonic and cannot spawn child processes, so a
        # process-backend retrain inside a process-backend shard would die
        # at the first trigger; threads share the worker's core anyway.
        warnings.warn(
            "process-backend retrains cannot run inside a (daemonic) "
            "serving shard worker; falling back to the thread backend",
            RuntimeWarning,
        )
        retrain_policy = replace(retrain_policy, backend="thread")
    controller = RetrainController(registry, retrain_policy) \
        if retrain_policy is not None else None
    service = ClassificationService(
        registry,
        BatchPolicy(max_batch=task.max_batch, max_delay=task.max_delay),
        record_batches=task.record_batches,
        record_latencies=True,
        retrain_controller=controller,
        ingest=task.ingest,
    )
    started = time.perf_counter()
    try:
        report = service.serve(task.requests, updates=task.updates)
    finally:
        if controller is not None:
            controller.close()
    wall = time.perf_counter() - started
    epoch_rulesets = {}
    for tenant in task.tenants:
        slot = registry.slot(tenant.tenant_id)
        epoch_rulesets[tenant.tenant_id] = [
            slot.ruleset_at(epoch) for epoch in range(slot.epoch + 1)
        ]
    return ShardOutcome(
        shard_index=task.shard_index,
        tenant_ids=[t.tenant_id for t in task.tenants],
        report=report,
        epoch_rulesets=epoch_rulesets,
        wall_seconds=wall,
    )


def merge_reports(outcomes: Sequence[ShardOutcome],
                  wall_seconds: float) -> ServingReport:
    """Fold shard reports into one, as if a single process served the union.

    Counters sum; latency percentiles are recomputed over the concatenated
    raw latency arrays (exact, not an approximation over per-shard
    percentiles); ``wall_seconds`` is the front-end's end-to-end wall time
    (shards overlap, so summing their walls would be wrong) and is what the
    merged ``pps`` is measured against.  ``engine_seconds`` sums CPU-style
    across shards and can therefore exceed the wall on multi-core runs.
    """
    reports = [o.report for o in outcomes]
    latencies = np.concatenate([
        r.latencies for r in reports
        if r.latencies is not None and len(r.latencies)
    ]) if any(r.latencies is not None and len(r.latencies) for r in reports) \
        else np.zeros(0)
    percentiles = {
        pct: float(np.percentile(latencies, pct)) if len(latencies) else 0.0
        for pct in LATENCY_PERCENTILES
    }
    per_tenant: Dict[str, dict] = {}
    for report in reports:
        per_tenant.update(report.per_tenant)
    num_requests = sum(r.num_requests for r in reports)
    num_batches = sum(r.num_batches for r in reports)
    batches = None
    if any(r.batches is not None for r in reports):
        batches = [b for r in reports if r.batches is not None
                   for b in r.batches]
    # Metrics registries, swap stats, and retrain stats all merge under the
    # same raw-sample contract as the latencies above: counters sum, timing
    # series concatenate, so the merged summary equals a single-process run.
    metrics = MetricsRegistry.merged(
        [r.metrics for r in reports if r.metrics is not None]
    )
    swap_stats = SwapStats()
    for r in reports:
        if r.swap_stats is not None:
            swap_stats.merge(r.swap_stats)
    retrain_stats = None
    if any(r.retrain_stats is not None for r in reports):
        retrain_stats = RetrainStats()
        for r in reports:
            if r.retrain_stats is not None:
                retrain_stats.merge(r.retrain_stats)
    return ServingReport(
        num_requests=num_requests,
        num_batches=num_batches,
        num_updates=sum(r.num_updates for r in reports),
        wall_seconds=wall_seconds,
        engine_seconds=sum(r.engine_seconds for r in reports),
        trace_seconds=max((r.trace_seconds for r in reports), default=0.0),
        latency_percentiles=percentiles,
        mean_batch_size=num_requests / num_batches if num_batches else 0.0,
        cache_hits=sum(r.cache_hits for r in reports),
        cache_lookups=sum(r.cache_lookups for r in reports),
        cache_evictions=sum(r.cache_evictions for r in reports),
        cache_invalidations=sum(r.cache_invalidations for r in reports),
        swaps=sum(r.swaps for r in reports),
        swap_stalls=sum(r.swap_stalls for r in reports),
        swap_stall_seconds=sum(r.swap_stall_seconds for r in reports),
        per_tenant=per_tenant,
        batches=batches,
        latencies=latencies,
        retrains_triggered=sum(r.retrains_triggered for r in reports),
        retrains_installed=sum(r.retrains_installed for r in reports),
        retrains_discarded=sum(r.retrains_discarded for r in reports),
        ingest_offered=sum(r.ingest_offered for r in reports),
        ingest_admitted=sum(r.ingest_admitted for r in reports),
        ingest_throttled=sum(r.ingest_throttled for r in reports),
        ingest_shed=sum(r.ingest_shed for r in reports),
        metrics=metrics,
        swap_stats=swap_stats,
        retrain_stats=retrain_stats,
    )


def serve_sharded(
    tenants: Sequence[ShardTenant],
    rulesets: Dict[str, RuleSet],
    requests: Sequence[Request],
    updates: Sequence[RuleUpdate] = (),
    num_workers: int = 2,
    backend: str = "process",
    max_batch: int = 64,
    max_delay: float = 1e-3,
    flow_cache_size: Optional[int] = 2048,
    background_swaps: bool = True,
    record_batches: bool = False,
    retrain_threshold: int = DEFAULT_RETRAIN_THRESHOLD,
    retrain_policy: Optional[RetrainPolicy] = None,
    engine_backend: str = "numpy",
    ingest: Optional[IngestConfig] = None,
) -> Tuple[List[ShardOutcome], ServingReport, ShardPlan]:
    """Serve a multi-tenant workload sharded across ``num_workers`` workers.

    The front-end half of the sharded path: plans the tenant partition,
    routes requests and updates to the owning shard, dispatches one
    :class:`ShardTask` per non-empty shard on a ``repro.executors`` backend,
    and merges the outcomes.  Returns ``(outcomes, merged_report, plan)``.

    With ``backend="process"``, per-tenant retrains inside each worker run
    on ``"thread"``-backend controllers regardless of
    ``retrain_policy.backend`` — pool workers are daemonic and cannot spawn
    nested process pools (``serve_shard`` downgrades with a
    ``RuntimeWarning``).
    """
    if backend not in SERVING_BACKENDS:
        raise ValueError(
            f"backend must be one of {SERVING_BACKENDS}, got {backend!r}"
        )
    plan = shard_tenants([t.tenant_id for t in tenants], num_workers)
    by_tenant = {t.tenant_id: t for t in tenants}
    tasks: List[ShardTask] = []
    for index, assigned in enumerate(plan.assignments):
        if not assigned:
            continue
        assigned_set = set(assigned)
        tasks.append(ShardTask(
            shard_index=index,
            tenants=[by_tenant[tid] for tid in assigned],
            rulesets={tid: rulesets[tid] for tid in assigned},
            requests=[r for r in requests if r.tenant_id in assigned_set],
            updates=[u for u in updates if u.tenant_id in assigned_set],
            max_batch=max_batch,
            max_delay=max_delay,
            flow_cache_size=flow_cache_size,
            background_swaps=background_swaps,
            record_batches=record_batches,
            retrain_threshold=retrain_threshold,
            retrain_policy=retrain_policy,
            engine_backend=engine_backend,
            ingest=ingest,
        ))
    executor = make_executor(max(1, len(tasks)), backend=backend)
    started = time.perf_counter()
    try:
        outcomes = executor.map(serve_shard, tasks)
    finally:
        executor.shutdown()
    wall = time.perf_counter() - started
    outcomes.sort(key=lambda o: o.shard_index)
    return outcomes, merge_reports(outcomes, wall), plan
