"""Multi-process serving: tenants sharded across workers, telemetry merged.

One :class:`~repro.serve.service.ClassificationService` is single-threaded
by design; to use more cores the layer scales *out*, the classic
shard-the-workload move: tenants are partitioned across N serving workers
(each worker a full serving stack — registry, engine slots, micro-batcher,
optional retrain controller — over just its tenants), the request stream is
routed by tenant to the owning shard, and a front-end merges the shards'
telemetry into one report.

Because tenants never share state, sharding is *exact by construction*:
each request is served by the same engine generation it would have seen in
a single-process run, and every per-epoch exactness guarantee carries over
shard-locally.  The merge is exact too — workers return raw latency arrays
(not pre-computed percentiles), so the merged percentiles equal those of a
single process serving the union.

The shard task (:func:`serve_shard`) is a module-level pure function of a
picklable payload, so it runs unchanged on every
:class:`repro.executors.RolloutExecutor` backend: ``"process"`` for real
multi-core serving, ``"thread"``/``"serial"`` for deterministic tests on
small machines.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.executors import EXECUTOR_BACKENDS, make_executor
from repro.ingest.admission import AdmissionController, IngestConfig
from repro.obs.metrics import MetricsRegistry
from repro.rules.ruleset import RuleSet
from repro.serve.batcher import BatchPolicy, Request
from repro.serve.controller import RetrainController, RetrainPolicy, \
    RetrainStats
from repro.serve.engines import DEFAULT_RETRAIN_THRESHOLD, SwapStats
from repro.serve.rebalance import DEFAULT_REBALANCE_INTERVAL, \
    RebalancePolicy, TelemetrySnapshot
from repro.serve.registry import TenantRegistry
from repro.serve.service import (
    LATENCY_PERCENTILES,
    ClassificationService,
    RuleUpdate,
    ServingReport,
    ServingSession,
)

#: Executor backends serving shards may run on (one source of truth:
#: whatever :func:`repro.executors.make_executor` accepts).
SERVING_BACKENDS = EXECUTOR_BACKENDS


@dataclass(frozen=True)
class ShardTenant:
    """One tenant as a shard worker sees it: id plus engine-build knobs."""

    tenant_id: str
    algorithm: str = "HiCuts"
    binth: int = 8


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic assignment of tenants to serving shards.

    Round-robin in registration order, so the plan is a pure function of
    (tenant order, shard count) — the same workload always shards the same
    way, which keeps sharded runs reproducible and lets tests compare
    against a single-process run of the identical scenario.
    """

    num_shards: int
    assignments: Tuple[Tuple[str, ...], ...]

    def shard_of(self, tenant_id: str) -> int:
        """The shard index serving the given tenant."""
        for index, tenants in enumerate(self.assignments):
            if tenant_id in tenants:
                return index
        raise KeyError(f"tenant {tenant_id!r} is not in this plan")


def shard_tenants(tenant_ids: Sequence[str], num_shards: int) -> ShardPlan:
    """Partition tenants round-robin across ``num_shards`` workers.

    Shards can end up empty when there are more shards than tenants; such
    shards are skipped at dispatch (no worker is launched for them).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    buckets: List[List[str]] = [[] for _ in range(num_shards)]
    for i, tenant_id in enumerate(tenant_ids):
        buckets[i % num_shards].append(tenant_id)
    return ShardPlan(num_shards=num_shards,
                     assignments=tuple(tuple(b) for b in buckets))


@dataclass
class ShardTask:
    """The picklable payload one serving worker executes.

    Carries everything a worker needs to rebuild its slice of the serving
    stack from scratch: tenant specs and rulesets (engines are compiled
    inside the worker — compiled arrays never cross the process boundary),
    the tenant-filtered request stream and update schedule, and the serving
    and retrain knobs.
    """

    shard_index: int
    tenants: List[ShardTenant]
    rulesets: Dict[str, RuleSet]
    requests: List[Request]
    updates: List[RuleUpdate] = field(default_factory=list)
    max_batch: int = 64
    max_delay: float = 1e-3
    flow_cache_size: Optional[int] = 2048
    background_swaps: bool = True
    record_batches: bool = False
    retrain_threshold: int = DEFAULT_RETRAIN_THRESHOLD
    retrain_policy: Optional[RetrainPolicy] = None
    engine_backend: str = "numpy"
    #: Admission control, applied shard-locally.  Exact vs. a single
    #: process: admission state is per-tenant and tenants never share a
    #: shard, so per-shard decisions equal the unsharded ones.
    ingest: Optional[IngestConfig] = None


@dataclass
class ShardOutcome:
    """What one serving worker sends back to the front-end.

    ``report.latencies`` is always populated (shards record latencies so the
    front-end can merge exact percentiles), and ``epoch_rulesets`` carries
    each tenant's full per-epoch ruleset history so differential exactness
    can be verified *in the front-end process* against recorded batches.
    """

    shard_index: int
    tenant_ids: List[str]
    report: ServingReport
    #: Per tenant: the ruleset snapshot of every engine epoch, in order.
    epoch_rulesets: Dict[str, List[RuleSet]]
    #: Wall seconds this shard spent inside its serve() call.
    wall_seconds: float = 0.0


#: Process-local latch so the daemonic-downgrade warning fires once per
#: shard worker, not once per retrain-armed shard task it serves.
_DAEMONIC_DOWNGRADE_WARNED = False


def _warn_daemonic_downgrade_once() -> None:
    global _DAEMONIC_DOWNGRADE_WARNED
    if _DAEMONIC_DOWNGRADE_WARNED:
        return
    _DAEMONIC_DOWNGRADE_WARNED = True
    warnings.warn(
        "process-backend retrains cannot run inside a (daemonic) "
        "serving shard worker; falling back to the thread backend",
        RuntimeWarning,
    )


def serve_shard(task: ShardTask) -> ShardOutcome:
    """Serve one shard's tenants (the executor-facing task function)."""
    registry = TenantRegistry(
        default_flow_cache_size=task.flow_cache_size,
        background_swaps=task.background_swaps,
        default_retrain_threshold=task.retrain_threshold,
        engine_backend=task.engine_backend,
    )
    for tenant in task.tenants:
        registry.register(tenant.tenant_id, task.rulesets[tenant.tenant_id],
                          algorithm=tenant.algorithm, binth=tenant.binth)
    retrain_policy = task.retrain_policy
    if retrain_policy is not None and retrain_policy.backend == "process" \
            and retrain_policy.shared_pool_size is None \
            and multiprocessing.current_process().daemon:
        # Pool workers are daemonic and cannot spawn child processes, so a
        # process-backend retrain inside a process-backend shard would die
        # at the first trigger; threads share the worker's core anyway.
        # Shared-pool policies never reach this branch: the pool registry
        # resolves the backend itself (repro.executors.resolve_pool_backend).
        _warn_daemonic_downgrade_once()
        retrain_policy = replace(retrain_policy, backend="thread")
    controller = RetrainController(registry, retrain_policy) \
        if retrain_policy is not None else None
    service = ClassificationService(
        registry,
        BatchPolicy(max_batch=task.max_batch, max_delay=task.max_delay),
        record_batches=task.record_batches,
        record_latencies=True,
        retrain_controller=controller,
        ingest=task.ingest,
    )
    started = time.perf_counter()
    try:
        report = service.serve(task.requests, updates=task.updates)
    finally:
        if controller is not None:
            controller.close()
    wall = time.perf_counter() - started
    epoch_rulesets = {}
    for tenant in task.tenants:
        slot = registry.slot(tenant.tenant_id)
        epoch_rulesets[tenant.tenant_id] = [
            slot.ruleset_at(epoch) for epoch in range(slot.epoch + 1)
        ]
    return ShardOutcome(
        shard_index=task.shard_index,
        tenant_ids=[t.tenant_id for t in task.tenants],
        report=report,
        epoch_rulesets=epoch_rulesets,
        wall_seconds=wall,
    )


def merge_reports(outcomes: Sequence[ShardOutcome],
                  wall_seconds: float) -> ServingReport:
    """Fold shard reports into one, as if a single process served the union.

    Counters sum; latency percentiles are recomputed over the concatenated
    raw latency arrays (exact, not an approximation over per-shard
    percentiles); ``wall_seconds`` is the front-end's end-to-end wall time
    (shards overlap, so summing their walls would be wrong) and is what the
    merged ``pps`` is measured against.  ``engine_seconds`` sums CPU-style
    across shards and can therefore exceed the wall on multi-core runs.
    """
    reports = [o.report for o in outcomes]
    latencies = np.concatenate([
        r.latencies for r in reports
        if r.latencies is not None and len(r.latencies)
    ]) if any(r.latencies is not None and len(r.latencies) for r in reports) \
        else np.zeros(0)
    percentiles = {
        pct: float(np.percentile(latencies, pct)) if len(latencies) else 0.0
        for pct in LATENCY_PERCENTILES
    }
    per_tenant: Dict[str, dict] = {}
    for report in reports:
        per_tenant.update(report.per_tenant)
    num_requests = sum(r.num_requests for r in reports)
    num_batches = sum(r.num_batches for r in reports)
    batches = None
    if any(r.batches is not None for r in reports):
        batches = [b for r in reports if r.batches is not None
                   for b in r.batches]
    # Metrics registries, swap stats, and retrain stats all merge under the
    # same raw-sample contract as the latencies above: counters sum, timing
    # series concatenate, so the merged summary equals a single-process run.
    metrics = MetricsRegistry.merged(
        [r.metrics for r in reports if r.metrics is not None]
    )
    swap_stats = SwapStats()
    for r in reports:
        if r.swap_stats is not None:
            swap_stats.merge(r.swap_stats)
    retrain_stats = None
    if any(r.retrain_stats is not None for r in reports):
        retrain_stats = RetrainStats()
        for r in reports:
            if r.retrain_stats is not None:
                retrain_stats.merge(r.retrain_stats)
    return ServingReport(
        num_requests=num_requests,
        num_batches=num_batches,
        num_updates=sum(r.num_updates for r in reports),
        wall_seconds=wall_seconds,
        engine_seconds=sum(r.engine_seconds for r in reports),
        trace_seconds=max((r.trace_seconds for r in reports), default=0.0),
        latency_percentiles=percentiles,
        mean_batch_size=num_requests / num_batches if num_batches else 0.0,
        cache_hits=sum(r.cache_hits for r in reports),
        cache_lookups=sum(r.cache_lookups for r in reports),
        cache_evictions=sum(r.cache_evictions for r in reports),
        cache_invalidations=sum(r.cache_invalidations for r in reports),
        swaps=sum(r.swaps for r in reports),
        swap_stalls=sum(r.swap_stalls for r in reports),
        swap_stall_seconds=sum(r.swap_stall_seconds for r in reports),
        per_tenant=per_tenant,
        batches=batches,
        latencies=latencies,
        retrains_triggered=sum(r.retrains_triggered for r in reports),
        retrains_installed=sum(r.retrains_installed for r in reports),
        retrains_discarded=sum(r.retrains_discarded for r in reports),
        retrains_rejected=sum(r.retrains_rejected for r in reports),
        retrain_queue_submitted=sum(r.retrain_queue_submitted
                                    for r in reports),
        migrations=sum(r.migrations for r in reports),
        rebalance_plans=sum(r.rebalance_plans for r in reports),
        rebalance_deferred=sum(r.rebalance_deferred for r in reports),
        ingest_offered=sum(r.ingest_offered for r in reports),
        ingest_admitted=sum(r.ingest_admitted for r in reports),
        ingest_throttled=sum(r.ingest_throttled for r in reports),
        ingest_shed=sum(r.ingest_shed for r in reports),
        metrics=metrics,
        swap_stats=swap_stats,
        retrain_stats=retrain_stats,
    )


def serve_sharded(
    tenants: Sequence[ShardTenant],
    rulesets: Dict[str, RuleSet],
    requests: Sequence[Request],
    updates: Sequence[RuleUpdate] = (),
    num_workers: int = 2,
    backend: str = "process",
    max_batch: int = 64,
    max_delay: float = 1e-3,
    flow_cache_size: Optional[int] = 2048,
    background_swaps: bool = True,
    record_batches: bool = False,
    retrain_threshold: int = DEFAULT_RETRAIN_THRESHOLD,
    retrain_policy: Optional[RetrainPolicy] = None,
    engine_backend: str = "numpy",
    ingest: Optional[IngestConfig] = None,
    rebalance_policy: Optional[RebalancePolicy] = None,
    rebalance_interval: float = DEFAULT_REBALANCE_INTERVAL,
) -> Tuple[List[ShardOutcome], ServingReport, ShardPlan]:
    """Serve a multi-tenant workload sharded across ``num_workers`` workers.

    The front-end half of the sharded path: plans the tenant partition,
    routes requests and updates to the owning shard, dispatches one
    :class:`ShardTask` per non-empty shard on a ``repro.executors`` backend,
    and merges the outcomes.  Returns ``(outcomes, merged_report, plan)``.

    With ``backend="process"``, per-tenant retrains inside each worker run
    on ``"thread"``-backend controllers regardless of
    ``retrain_policy.backend`` — pool workers are daemonic and cannot spawn
    nested process pools (``serve_shard`` downgrades with a
    ``RuntimeWarning``).

    Passing ``rebalance_policy`` switches to the *rebalancing* front-end:
    the shards become logical serving stacks driven event-by-event in this
    process, the policy is evaluated every ``rebalance_interval`` trace
    seconds on live telemetry, and planned tenants are live-migrated
    between shards mid-run (see :func:`serve_rebalancing`).  ``backend``
    is ignored in that mode.
    """
    if backend not in SERVING_BACKENDS:
        raise ValueError(
            f"backend must be one of {SERVING_BACKENDS}, got {backend!r}"
        )
    if rebalance_policy is not None:
        return serve_rebalancing(
            tenants, rulesets, requests, updates,
            num_workers=num_workers,
            max_batch=max_batch,
            max_delay=max_delay,
            flow_cache_size=flow_cache_size,
            background_swaps=background_swaps,
            record_batches=record_batches,
            retrain_threshold=retrain_threshold,
            retrain_policy=retrain_policy,
            engine_backend=engine_backend,
            ingest=ingest,
            policy=rebalance_policy,
            interval=rebalance_interval,
        )
    plan = shard_tenants([t.tenant_id for t in tenants], num_workers)
    by_tenant = {t.tenant_id: t for t in tenants}
    tasks: List[ShardTask] = []
    for index, assigned in enumerate(plan.assignments):
        if not assigned:
            continue
        assigned_set = set(assigned)
        tasks.append(ShardTask(
            shard_index=index,
            tenants=[by_tenant[tid] for tid in assigned],
            rulesets={tid: rulesets[tid] for tid in assigned},
            requests=[r for r in requests if r.tenant_id in assigned_set],
            updates=[u for u in updates if u.tenant_id in assigned_set],
            max_batch=max_batch,
            max_delay=max_delay,
            flow_cache_size=flow_cache_size,
            background_swaps=background_swaps,
            record_batches=record_batches,
            retrain_threshold=retrain_threshold,
            retrain_policy=retrain_policy,
            engine_backend=engine_backend,
            ingest=ingest,
        ))
    executor = make_executor(max(1, len(tasks)), backend=backend)
    started = time.perf_counter()
    try:
        outcomes = executor.map(serve_shard, tasks)
    finally:
        executor.shutdown()
    wall = time.perf_counter() - started
    outcomes.sort(key=lambda o: o.shard_index)
    return outcomes, merge_reports(outcomes, wall), plan


# --------------------------------------------------------------------------- #
# The rebalancing front-end (live tenant migration)
# --------------------------------------------------------------------------- #

@dataclass
class _ShardStack:
    """One logical shard in the rebalancing front-end.

    A full serving stack (registry, optional retrain controller, service,
    streaming session), driven event-by-event by the front-end instead of
    executing a pre-routed request list.  All stacks live in the front-end
    process: migration needs the source and target on both ends of the
    same trace-clock instant, which a process boundary cannot give us —
    the :class:`~repro.serve.engines.SlotState` still goes through a
    pickle round-trip so the shipped state is proven process-portable.
    """

    index: int
    registry: TenantRegistry
    controller: Optional[RetrainController]
    service: ClassificationService
    session: ServingSession
    #: Tenants ever placed here (an emptied shard still reports outcomes).
    ever_tenants: bool = False
    #: Migrations that landed here (the import side of each move).
    migrations_in: int = 0


def _migrate_tenant(tenant_id: str, source: _ShardStack,
                    target: _ShardStack) -> None:
    """Drain -> ship -> install: move one quiesced tenant between stacks.

    Caller guarantees the tenant's in-flight batch is drained
    (``queue_depth == 0`` after a ``poll``) and that no retrain is still
    *running* (``settle`` defers the move otherwise).  A finished-but-
    uninstalled retrain lands (or is rejected) here, then the slot state
    crosses a
    real ``pickle`` round-trip — proving every migration this front-end
    performs could equally cross a process boundary — and is installed on
    the target through the same atomic compile-and-install path as tenant
    registration.  Retrain launch counters ship along so the per-tenant
    retrain seed sequence continues unbroken.
    """
    launch_count = 0
    if source.controller is not None:
        source.controller.drain_tenant(tenant_id)
        launch_count = source.controller.export_tenant(tenant_id)
    state = source.registry.export_slot(tenant_id)
    state = pickle.loads(pickle.dumps(state))
    target.registry.import_slot(state)
    if target.controller is not None:
        target.controller.import_tenant(tenant_id, launch_count)
    target.ever_tenants = True
    target.migrations_in += 1


def serve_rebalancing(
    tenants: Sequence[ShardTenant],
    rulesets: Dict[str, RuleSet],
    requests: Sequence[Request],
    updates: Sequence[RuleUpdate] = (),
    num_workers: int = 2,
    max_batch: int = 64,
    max_delay: float = 1e-3,
    flow_cache_size: Optional[int] = 2048,
    background_swaps: bool = True,
    record_batches: bool = False,
    retrain_threshold: int = DEFAULT_RETRAIN_THRESHOLD,
    retrain_policy: Optional[RetrainPolicy] = None,
    engine_backend: str = "numpy",
    ingest: Optional[IngestConfig] = None,
    policy: Optional[RebalancePolicy] = None,
    interval: float = DEFAULT_REBALANCE_INTERVAL,
) -> Tuple[List[ShardOutcome], ServingReport, ShardPlan]:
    """Serve with live load-aware tenant migration between logical shards.

    The rebalancing counterpart of :func:`serve_sharded`: tenants start on
    the same round-robin plan, but the front-end drives one streaming
    :class:`~repro.serve.service.ServingSession` per shard on a single
    trace clock and re-places tenants mid-run:

    1. **Plan** — the first event at or past each interval boundary
       triggers a policy evaluation (the ``k``-th evaluation sees
       ``snapshot.interval == k``) on a frozen
       :class:`~repro.serve.rebalance.TelemetrySnapshot` of live per-shard
       telemetry.  Planned moves become *pending* migrations.
    2. **Drain** — a pending tenant migrates at its next event, once a
       ``poll`` at that event's trace time shows its in-flight batch has
       drained (``queue_depth == 0``).  Waiting for this natural batch
       boundary — rather than force-flushing — keeps batch composition
       identical to a static placement of the same trace, which is what
       the differential tests pin down.
    3. **Ship + install** — the slot state (trees, epoch history, pending
       update counters, flow cache) crosses a pickle round-trip and is
       installed on the target shard via the same double-buffered swap
       path as registration; every later packet of the tenant is still
       classified against its epoch's ruleset, so ``verify_exactness``
       holds straight through the migration boundary.

    Updates are delivered by the front-end on the global event order
    (exactly the single-process semantics), and admission control — when
    ``ingest`` is given — runs once in the front-end over the full stream,
    which per-tenant state makes equivalent to single-process admission.

    A planned move whose tenant has a retrain still *running* at settle
    time is **deferred, never dropped**: the plan stays pending (counted
    once per episode in ``merged_report.rebalance_deferred``) and retries
    at the tenant's later events; a plan still pending when the trace ends
    executes at the quiesce point, after ``finish()`` drained every batch
    and retrain.

    Returns ``(outcomes, merged_report, plan)`` like :func:`serve_sharded`;
    ``merged_report.migrations`` / ``merged_report.rebalance_plans`` /
    ``merged_report.rebalance_deferred`` count the moves executed, the
    policy evaluations run, and the retrain-deferred move episodes.
    """
    if policy is None:
        raise ValueError("serve_rebalancing needs a rebalance policy")
    if interval <= 0:
        raise ValueError("rebalance_interval must be > 0")
    started = time.perf_counter()
    plan = shard_tenants([t.tenant_id for t in tenants], num_workers)
    by_tenant = {t.tenant_id: t for t in tenants}
    placement: Dict[str, int] = {
        tenant_id: index
        for index, assigned in enumerate(plan.assignments)
        for tenant_id in assigned
    }

    stacks: List[_ShardStack] = []
    for index in range(num_workers):
        registry = TenantRegistry(
            default_flow_cache_size=flow_cache_size,
            background_swaps=background_swaps,
            default_retrain_threshold=retrain_threshold,
            engine_backend=engine_backend,
        )
        controller = RetrainController(registry, retrain_policy) \
            if retrain_policy is not None else None
        service = ClassificationService(
            registry,
            BatchPolicy(max_batch=max_batch, max_delay=max_delay),
            record_batches=record_batches,
            record_latencies=True,
            retrain_controller=controller,
        )
        stacks.append(_ShardStack(
            index=index,
            registry=registry,
            controller=controller,
            service=service,
            session=service.session(),
        ))
    for index, assigned in enumerate(plan.assignments):
        for tenant_id in assigned:
            tenant = by_tenant[tenant_id]
            stacks[index].registry.register(
                tenant_id, rulesets[tenant_id],
                algorithm=tenant.algorithm, binth=tenant.binth,
            )
            stacks[index].ever_tenants = True

    # Admission runs once, up front, over the whole stream — its state is
    # per-tenant, so this is exactly the single-process decision sequence,
    # and the serving stacks below see the post-admission stream.
    admission: Optional[AdmissionController] = None
    frontend_metrics: Optional[MetricsRegistry] = None
    requests = sorted(requests, key=lambda r: r.time)
    if ingest is not None:
        frontend_metrics = MetricsRegistry()
        admission = AdmissionController(ingest, metrics=frontend_metrics)
        requests = admission.admit(requests)

    pending_updates = sorted(updates, key=lambda u: u.time)
    update_index = 0
    next_boundary = interval
    num_plans = 0
    num_deferred = 0
    #: tenant -> target shard, decided by a plan, awaiting a drained queue.
    pending_moves: Dict[str, int] = {}
    #: Tenants whose pending move is deferred by an in-flight retrain
    #: (counted once per deferral episode, not once per retried event).
    deferred_moves: set = set()

    def evaluate(now: float) -> None:
        """Run one policy evaluation if ``now`` crossed a boundary."""
        nonlocal next_boundary, num_plans
        if now < next_boundary:
            return
        # Collapse skipped boundaries: one evaluation per *event* that
        # crosses, then re-arm at the next boundary past ``now`` — gaps in
        # the trace don't spin the planner on identical telemetry.
        next_boundary = interval * (int(now / interval) + 1)
        num_plans += 1
        snapshot = TelemetrySnapshot.capture(
            interval=num_plans,
            time=now,
            placements=placement,
            registries=[stack.registry.metrics for stack in stacks],
            queue_depths={
                tenant_id: stacks[index].session.queue_depth(tenant_id)
                for tenant_id, index in placement.items()
            },
            goodput={
                tenant_id: summary["goodput_pps"]
                for tenant_id, summary in
                admission.tenant_summary(now).items()
            } if admission is not None else None,
        )
        for move in policy.plan(snapshot).migrations:
            if placement.get(move.tenant_id) == move.source_shard \
                    and 0 <= move.target_shard < len(stacks):
                pending_moves[move.tenant_id] = move.target_shard

    def settle(tenant_id: str, now: float) -> None:
        """Execute a pending migration once the tenant is quiesced.

        Two things can hold a planned move back, and both leave the plan
        *pending-until-settled* (retried at every later event of the
        tenant, so no plan is ever lost): an undrained in-flight batch
        (the normal batch-boundary wait) and a retrain still running on
        the source shard.  The latter is counted — once per deferral
        episode — in ``rebalance_deferred``; blocking the whole event loop
        on the training job (the old behaviour) would stall every tenant
        on the shard behind one background retrain.
        """
        nonlocal num_deferred
        target_index = pending_moves.get(tenant_id)
        if target_index is None:
            return
        source_index = placement[tenant_id]
        if source_index == target_index:
            del pending_moves[tenant_id]
            deferred_moves.discard(tenant_id)
            return
        source = stacks[source_index]
        source.session.poll(now)
        if source.session.queue_depth(tenant_id) > 0:
            return  # not a batch boundary yet; retry at the next event
        if source.controller is not None and \
                source.controller.retrain_in_flight(tenant_id):
            # Defer, don't drop: the plan stays pending and the migration
            # executes at a later event once the retrain lands.
            if tenant_id not in deferred_moves:
                deferred_moves.add(tenant_id)
                num_deferred += 1
                source.registry.metrics.counter(
                    "serve.rebalance_deferred").inc()
            return
        _migrate_tenant(tenant_id, source, stacks[target_index])
        placement[tenant_id] = target_index
        del pending_moves[tenant_id]
        deferred_moves.discard(tenant_id)

    def deliver(update: RuleUpdate) -> None:
        evaluate(update.time)
        settle(update.tenant_id, update.time)
        stacks[placement[update.tenant_id]].session.deliver_update(update)

    # try/finally so a mid-trace exception cannot leak the per-stack
    # retrain executors (close() is idempotent; shared pools are left to
    # the process-level registry and its interpreter-exit hook).
    reports: List[ServingReport] = []
    try:
        for request in requests:
            # Global event order, exactly like the single-process loop:
            # every update scheduled at or before this arrival applies
            # first.
            while update_index < len(pending_updates) and \
                    pending_updates[update_index].time <= request.time:
                deliver(pending_updates[update_index])
                update_index += 1
            evaluate(request.time)
            settle(request.tenant_id, request.time)
            stacks[placement[request.tenant_id]].session.offer(request)
        for update in pending_updates[update_index:]:
            deliver(update)

        for stack in stacks:
            reports.append(stack.session.finish())

        # End-of-trace settlement: a move deferred behind a retrain whose
        # tenant had no later event still executes at the quiesce point —
        # finish() flushed every batch and drained every retrain, so
        # nothing can hold it back and no plan is ever lost.
        for tenant_id, target_index in list(pending_moves.items()):
            source_index = placement[tenant_id]
            if source_index != target_index:
                _migrate_tenant(tenant_id, stacks[source_index],
                                stacks[target_index])
                placement[tenant_id] = target_index
            del pending_moves[tenant_id]
            deferred_moves.discard(tenant_id)

        for stack, report in zip(stacks, reports):
            report.migrations = stack.migrations_in
    finally:
        for stack in stacks:
            if stack.controller is not None:
                stack.controller.close()

    outcomes: List[ShardOutcome] = []
    for stack, report in zip(stacks, reports):
        if not stack.ever_tenants and not report.num_requests:
            continue
        epoch_rulesets = {}
        for tenant_id in stack.registry.tenants():
            slot = stack.registry.slot(tenant_id)
            epoch_rulesets[tenant_id] = [
                slot.ruleset_at(epoch) for epoch in range(slot.epoch + 1)
            ]
        outcomes.append(ShardOutcome(
            shard_index=stack.index,
            tenant_ids=stack.registry.tenants(),
            report=report,
            epoch_rulesets=epoch_rulesets,
            wall_seconds=report.wall_seconds,
        ))

    wall = time.perf_counter() - started
    merged = merge_reports(outcomes, wall)
    merged.rebalance_plans = num_plans
    merged.rebalance_deferred = num_deferred
    if admission is not None:
        # The frontend owns admission in this mode; fold its counters and
        # per-tenant summaries into the merged report the same way a
        # single-process serve() does.
        merged.ingest_offered = admission.offered
        merged.ingest_admitted = admission.admitted
        merged.ingest_throttled = admission.throttled
        merged.ingest_shed = admission.shed
        last_time = max((s.session.last_time for s in stacks), default=0.0)
        for tenant_id, summary in \
                admission.tenant_summary(last_time).items():
            merged.per_tenant.setdefault(tenant_id, {})["ingest"] = summary
        if merged.metrics is not None and frontend_metrics is not None:
            merged.metrics = MetricsRegistry.merged(
                [merged.metrics, frontend_metrics.snapshot()]
            )
    return outcomes, merged, plan
