"""The retrain-on-churn control loop: watch slots, retrain, swap the tree.

PR 1–3 left a gap between the serving layer and the trainer: an
:class:`~repro.serve.engines.EngineSlot` whose ``needs_retraining()`` fires
had no one listening.  The :class:`RetrainController` closes that loop.  It
watches every slot's accumulated-update counters, and when a tenant's drift
crosses its retrain threshold it launches a background NeuroCuts training
job (a :func:`repro.neurocuts.service.run_retrain` task on a
``repro.executors`` backend), then installs the resulting *tree* — not just
recompiled arrays — through the slot's double-buffered
:meth:`~repro.serve.engines.EngineSlot.adopt_classifier` path.  Rule churn
that lands while the retrain is running is replayed onto the new tree at
installation, so the per-epoch exactness guarantees hold across the whole
retrain → adopt → swap sequence.

**Thread-safety.**  The controller itself runs on the serving thread —
``poll_tenant``/``poll``/``drain`` are called between batches, exactly like
slot methods.  Only the *training job* runs elsewhere (a thread-pool or
process-pool task, per :class:`RetrainPolicy.backend`); completions are
detected by polling the task handle, and installation always happens on the
serving thread.  With ``backend="serial"`` the retrain runs inline at
trigger time, which keeps single-threaded runs deterministic.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.executors import EXECUTOR_BACKENDS, RolloutExecutor, TaskHandle, \
    make_executor
from repro.neurocuts.config import NeuroCutsConfig
from repro.neurocuts.service import (
    RetrainRequest,
    RetrainResponse,
    default_retrain_config,
    run_retrain,
)
from repro.obs.serialize import stable_dict
from repro.rules.ruleset import RuleSet
from repro.serve.registry import TenantRegistry, UnknownTenantError

#: Executor backends a controller may run retrain jobs on (one source of
#: truth: whatever :func:`repro.executors.make_executor` accepts).
RETRAIN_BACKENDS = EXECUTOR_BACKENDS


@dataclass(frozen=True)
class RetrainPolicy:
    """How (and how hard) to retrain when a slot's drift crosses threshold.

    Attributes:
        timesteps: NeuroCuts timestep budget per retrain job.  Serving-loop
            retrains favour turnaround over ultimate tree quality; see
            :func:`repro.neurocuts.service.default_retrain_config`.
        max_iterations: optional PPO-iteration cap per job (tests use this
            to bound wall time independently of the timestep budget).
        rollout_workers: rollout shards inside each training job (>1 spawns
            the trainer's own ``repro.executors`` process pool).
        backend: where the retrain job itself runs — ``"thread"`` (default:
            overlaps serving in-process, no pickling), ``"process"`` (a
            spawn pool; request/response are picklable by construction), or
            ``"serial"`` (inline at trigger time, deterministic).
        time_space_coeff: the paper's time/space coefficient for the
            retrained tree's objective.
        seed: base RNG seed; each launched job derives its own seed from
            this plus the per-tenant launch counter, so successive retrains
            explore different rollouts.
    """

    timesteps: int = 3_000
    max_iterations: Optional[int] = None
    rollout_workers: int = 1
    backend: str = "thread"
    time_space_coeff: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.timesteps < 1:
            raise ValueError("timesteps must be >= 1")
        if self.rollout_workers < 1:
            raise ValueError("rollout_workers must be >= 1")
        if self.backend not in RETRAIN_BACKENDS:
            raise ValueError(
                f"backend must be one of {RETRAIN_BACKENDS}, "
                f"got {self.backend!r}"
            )

    def training_config(self, seed: int) -> NeuroCutsConfig:
        """The NeuroCuts configuration one retrain job runs with."""
        return default_retrain_config(
            timesteps=self.timesteps,
            rollout_workers=self.rollout_workers,
            seed=seed,
            time_space_coeff=self.time_space_coeff,
            reward_scaling="log" if self.time_space_coeff < 1.0 else "linear",
        )


@dataclass
class RetrainStats:
    """Counters describing the controller's activity."""

    #: Retrain jobs launched (a tenant crossed its threshold).
    triggered: int = 0
    #: Retrained trees installed through ``adopt_classifier``.
    installed: int = 0
    #: Finished jobs thrown away (tenant deregistered while training).
    discarded: int = 0
    #: Wall seconds each *installed* job spent training, in install order.
    train_seconds: List[float] = field(default_factory=list)

    def merge(self, other: "RetrainStats") -> "RetrainStats":
        """Accumulate another controller's counters (across shards).

        ``train_seconds`` concatenates, so merged means/percentiles are
        exact over the union of installed jobs.
        """
        self.triggered += other.triggered
        self.installed += other.installed
        self.discarded += other.discarded
        self.train_seconds.extend(other.train_seconds)
        return self

    def as_dict(self) -> dict:
        return stable_dict({
            "triggered": self.triggered,
            "installed": self.installed,
            "discarded": self.discarded,
            "mean_train_seconds": (
                sum(self.train_seconds) / len(self.train_seconds)
                if self.train_seconds else 0.0
            ),
        })


@dataclass
class _RetrainJob:
    """One in-flight retrain: the handle plus the snapshot it trains on."""

    tenant_id: str
    base_ruleset: RuleSet
    handle: TaskHandle[RetrainResponse]


class RetrainController:
    """Watches a registry's slots and closes the retrain-on-churn loop.

    Args:
        registry: the registry whose tenants are watched.
        policy: training budget, backend, and objective knobs.
        executor: optional pre-built executor to run jobs on (the controller
            then never shuts it down).  By default the controller owns one
            sized for a single concurrent job per poll cycle, built by
            :func:`repro.executors.make_executor` from ``policy.backend``.

    Call :meth:`poll_tenant` from the serving loop (cheap: a dict probe and
    a counter comparison), :meth:`drain` at quiesce points to land every
    in-flight job, and :meth:`close` when done.
    """

    def __init__(self, registry: TenantRegistry,
                 policy: RetrainPolicy = RetrainPolicy(),
                 executor: Optional[RolloutExecutor] = None) -> None:
        self.registry = registry
        self.policy = policy
        self.stats = RetrainStats()
        if executor is None:
            # One worker per concurrently-retraining tenant is overkill on
            # small machines; a single background worker serialises jobs
            # while keeping them off the serving thread.
            executor = make_executor(1, backend=policy.backend)
            self._owns_executor = True
        else:
            self._owns_executor = False
        self._executor = executor
        self._jobs: Dict[str, _RetrainJob] = {}
        self._launch_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # The control loop
    # ------------------------------------------------------------------ #

    @property
    def in_flight(self) -> List[str]:
        """Tenants with a retrain currently running (or awaiting install)."""
        return list(self._jobs)

    def poll_tenant(self, tenant_id: str) -> bool:
        """Advance one tenant's retrain state machine; True if a tree landed.

        Installs the tenant's retrained tree if its job finished, otherwise
        launches a job if the slot crossed its threshold and none is in
        flight.  Non-blocking except on the serial backend (where launching
        *is* the retrain).
        """
        job = self._jobs.get(tenant_id)
        if job is not None:
            if not job.handle.ready():
                return False
            del self._jobs[tenant_id]
            return self._install(job)
        slot = self.registry.slot(tenant_id)
        if slot.needs_retraining():
            self._launch(tenant_id)
            # Serial jobs complete inside _launch; land them immediately so
            # the very next batch serves from the retrained tree.
            job = self._jobs[tenant_id]
            if job.handle.ready():
                del self._jobs[tenant_id]
                return self._install(job)
        return False

    def poll(self) -> List[str]:
        """Poll every registered tenant; returns those that got a new tree."""
        return [tenant_id for tenant_id in self.registry.tenants()
                if self.poll_tenant(tenant_id)]

    def drain(self) -> List[str]:
        """Block until every in-flight retrain finishes and installs.

        A quiesce point (end of trace, shutdown) — the registry's own
        ``drain()`` should follow so the adopted trees' engine rebuilds are
        installed too.  Returns the tenants whose trees were installed.
        """
        landed = []
        for tenant_id, job in list(self._jobs.items()):
            del self._jobs[tenant_id]
            if self._install(job):
                landed.append(tenant_id)
        return landed

    def close(self) -> None:
        """Shut down the controller-owned executor (idempotent)."""
        if self._owns_executor:
            self._executor.shutdown()

    def __enter__(self) -> "RetrainController":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _launch(self, tenant_id: str) -> None:
        slot = self.registry.slot(tenant_id)
        count = self._launch_counts.get(tenant_id, 0)
        self._launch_counts[tenant_id] = count + 1
        base = slot.ruleset
        request = RetrainRequest(
            tenant_id=tenant_id,
            ruleset=base,
            config=self.policy.training_config(
                seed=self.policy.seed + 9973 * count
                + (zlib.crc32(tenant_id.encode()) & 0xFFFF)
            ),
            max_iterations=self.policy.max_iterations,
        )
        handle = self._executor.submit(run_retrain, request)
        self._jobs[tenant_id] = _RetrainJob(tenant_id=tenant_id,
                                            base_ruleset=base, handle=handle)
        self.stats.triggered += 1

    def _install(self, job: _RetrainJob) -> bool:
        response = job.handle.result()
        try:
            slot = self.registry.slot(job.tenant_id)
        except UnknownTenantError:
            self.stats.discarded += 1
            return False
        classifier = response.classifier(job.base_ruleset)
        slot.adopt_classifier(classifier, base_ruleset=job.base_ruleset)
        self.stats.installed += 1
        self.stats.train_seconds.append(response.wall_seconds)
        # The retrain-job phase span: training ran off-thread, so the job's
        # own wall time is observed at install rather than wrapped inline.
        slot.metrics.timing("serve.retrain_seconds").observe(
            response.wall_seconds)
        return True
