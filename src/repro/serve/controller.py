"""The retrain-on-churn control loop: watch slots, retrain, swap the tree.

PR 1–3 left a gap between the serving layer and the trainer: an
:class:`~repro.serve.engines.EngineSlot` whose ``needs_retraining()`` fires
had no one listening.  The :class:`RetrainController` closes that loop.  It
watches every slot's accumulated-update counters, and when a tenant's drift
crosses its retrain threshold it launches a background NeuroCuts training
job (a :func:`repro.neurocuts.service.run_retrain` task on a
``repro.executors`` backend), then installs the resulting *tree* — not just
recompiled arrays — through the slot's double-buffered
:meth:`~repro.serve.engines.EngineSlot.adopt_classifier` path.  Rule churn
that lands while the retrain is running is replayed onto the new tree at
installation, so the per-epoch exactness guarantees hold across the whole
retrain → adopt → swap sequence.

**Thread-safety.**  The controller itself runs on the serving thread —
``poll_tenant``/``poll``/``drain`` are called between batches, exactly like
slot methods.  Only the *training job* runs elsewhere (a thread-pool or
process-pool task, per :class:`RetrainPolicy.backend`); completions are
detected by polling the task handle, and installation always happens on the
serving thread.  With ``backend="serial"`` the retrain runs inline at
trigger time, which keeps single-threaded runs deterministic.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.executors import EXECUTOR_BACKENDS, RetrainPool, RolloutExecutor, \
    TaskHandle, make_executor, shared_retrain_pool
from repro.neurocuts.config import NeuroCutsConfig
from repro.neurocuts.service import (
    RetrainRequest,
    RetrainResponse,
    default_retrain_config,
    run_retrain,
)
from repro.obs.serialize import stable_dict
from repro.rules.ruleset import RuleSet
from repro.serve.registry import TenantRegistry, UnknownTenantError

#: Executor backends a controller may run retrain jobs on (one source of
#: truth: whatever :func:`repro.executors.make_executor` accepts).
RETRAIN_BACKENDS = EXECUTOR_BACKENDS


def classifier_objective(stats, time_space_coeff: float) -> float:
    """The scalar time/space objective a retrained tree must beat.

    Mirrors the paper's weighted objective (Section 4.2): the time term is
    the classifier's worst-case traversal cost in node accesses, the space
    term its per-rule memory footprint.  ``time_space_coeff=1.0`` (the
    default policy) reduces to pure classification time.  Both terms come
    from :mod:`repro.tree.stats` so the gate compares candidate and
    incumbent under the identical cost model used by the figure benchmarks.
    """
    return (time_space_coeff * stats.classification_time
            + (1.0 - time_space_coeff) * stats.bytes_per_rule)


@dataclass(frozen=True)
class RetrainPolicy:
    """How (and how hard) to retrain when a slot's drift crosses threshold.

    Attributes:
        timesteps: NeuroCuts timestep budget per retrain job.  Serving-loop
            retrains favour turnaround over ultimate tree quality; see
            :func:`repro.neurocuts.service.default_retrain_config`.
        max_iterations: optional PPO-iteration cap per job (tests use this
            to bound wall time independently of the timestep budget).
        rollout_workers: rollout shards inside each training job (>1 spawns
            the trainer's own ``repro.executors`` process pool).
        backend: where the retrain job itself runs — ``"thread"`` (default:
            overlaps serving in-process, no pickling), ``"process"`` (a
            spawn pool; request/response are picklable by construction), or
            ``"serial"`` (inline at trigger time, deterministic).
        time_space_coeff: the paper's time/space coefficient for the
            retrained tree's objective.
        quality_gate: when True (default), a finished retrain is only
            adopted if its time/space objective *strictly beats* the
            incrementally-patched incumbent classifier; otherwise it is
            rejected (counted in :attr:`RetrainStats.rejected`) and the
            incumbent keeps serving.  Training is stochastic — a short
            retrain budget can produce a worse tree than the patched
            original, and adopting it unconditionally would regress
            serving latency.  Set False to restore unconditional adoption
            (tests of the adoption mechanics use this).
        seed: base RNG seed; each launched job derives its own seed from
            this plus the per-tenant launch counter, so successive retrains
            explore different rollouts.
        shared_pool_size: when set (>= 1), controllers submit retrain jobs
            to the process-local *shared* :class:`repro.executors.RetrainPool`
            of this width (and ``backend``) instead of each owning a private
            executor — the fleet-trainer path.  Tenants across controllers
            (and shards within a process) multiplex over one pool with
            round-robin fairness.  The policy stays picklable, so process
            shards reconstruct their own process-local pool from it.
    """

    timesteps: int = 3_000
    max_iterations: Optional[int] = None
    rollout_workers: int = 1
    backend: str = "thread"
    time_space_coeff: float = 1.0
    quality_gate: bool = True
    seed: int = 0
    shared_pool_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.timesteps < 1:
            raise ValueError("timesteps must be >= 1")
        if self.rollout_workers < 1:
            raise ValueError("rollout_workers must be >= 1")
        if self.backend not in RETRAIN_BACKENDS:
            raise ValueError(
                f"backend must be one of {RETRAIN_BACKENDS}, "
                f"got {self.backend!r}"
            )
        if self.shared_pool_size is not None and self.shared_pool_size < 1:
            raise ValueError("shared_pool_size must be >= 1 when set")

    def training_config(self, seed: int) -> NeuroCutsConfig:
        """The NeuroCuts configuration one retrain job runs with."""
        return default_retrain_config(
            timesteps=self.timesteps,
            rollout_workers=self.rollout_workers,
            seed=seed,
            time_space_coeff=self.time_space_coeff,
            reward_scaling="log" if self.time_space_coeff < 1.0 else "linear",
        )


@dataclass
class RetrainStats:
    """Counters describing the controller's activity."""

    #: Retrain jobs launched (a tenant crossed its threshold).
    triggered: int = 0
    #: Retrained trees installed through ``adopt_classifier``.
    installed: int = 0
    #: Finished jobs thrown away (tenant deregistered while training).
    discarded: int = 0
    #: Finished jobs whose tree failed the quality gate (objective did not
    #: beat the patched incumbent); the incumbent kept serving.
    rejected: int = 0
    #: Jobs submitted through a *shared* retrain pool (0 when the
    #: controller owns a private executor).  Deterministic: every trigger
    #: under a shared-pool policy enqueues exactly once.
    queued: int = 0
    #: Wall seconds each *installed* job spent training, in install order.
    train_seconds: List[float] = field(default_factory=list)

    def merge(self, other: "RetrainStats") -> "RetrainStats":
        """Accumulate another controller's counters (across shards).

        ``train_seconds`` concatenates, so merged means/percentiles are
        exact over the union of installed jobs.
        """
        self.triggered += other.triggered
        self.installed += other.installed
        self.discarded += other.discarded
        self.rejected += other.rejected
        self.queued += other.queued
        self.train_seconds.extend(other.train_seconds)
        return self

    def as_dict(self) -> dict:
        return stable_dict({
            "triggered": self.triggered,
            "installed": self.installed,
            "discarded": self.discarded,
            "rejected": self.rejected,
            "queued": self.queued,
            "mean_train_seconds": (
                sum(self.train_seconds) / len(self.train_seconds)
                if self.train_seconds else 0.0
            ),
        })


@dataclass
class _RetrainJob:
    """One in-flight retrain: the handle plus the snapshot it trains on."""

    tenant_id: str
    base_ruleset: RuleSet
    handle: TaskHandle[RetrainResponse]
    #: The incumbent's objective at launch, when it served exactly
    #: ``base_ruleset`` — the apples-to-apples bar for the quality gate.
    incumbent_objective: float = float("inf")


class RetrainController:
    """Watches a registry's slots and closes the retrain-on-churn loop.

    Args:
        registry: the registry whose tenants are watched.
        policy: training budget, backend, and objective knobs.
        executor: optional pre-built executor to run jobs on (the controller
            then never shuts it down).  By default the controller owns one
            sized for a single concurrent job per poll cycle, built by
            :func:`repro.executors.make_executor` from ``policy.backend`` —
            unless ``policy.shared_pool_size`` is set, in which case jobs
            multiplex over the process-local shared
            :class:`~repro.executors.RetrainPool` instead.
        pool: optional explicit :class:`~repro.executors.RetrainPool` to
            submit jobs to (overrides both ``executor`` and the policy's
            shared pool; the controller never shuts it down).  Pool
            lifecycle belongs to the serving layer / interpreter-exit hook,
            never to individual controllers.

    Call :meth:`poll_tenant` from the serving loop (cheap: a dict probe and
    a counter comparison), :meth:`drain` at quiesce points to land every
    in-flight job, and :meth:`close` when done.
    """

    def __init__(self, registry: TenantRegistry,
                 policy: RetrainPolicy = RetrainPolicy(),
                 executor: Optional[RolloutExecutor] = None,
                 pool: Optional[RetrainPool] = None) -> None:
        self.registry = registry
        self.policy = policy
        self.stats = RetrainStats()
        self._owns_executor = False
        if pool is None and executor is None \
                and policy.shared_pool_size is not None:
            pool = shared_retrain_pool(policy.shared_pool_size,
                                       backend=policy.backend)
        if pool is None and executor is None:
            # One worker per concurrently-retraining tenant is overkill on
            # small machines; a single background worker serialises jobs
            # while keeping them off the serving thread.
            executor = make_executor(1, backend=policy.backend)
            self._owns_executor = True
        self._pool = pool
        self._executor = executor
        self._jobs: Dict[str, _RetrainJob] = {}
        self._launch_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # The control loop
    # ------------------------------------------------------------------ #

    @property
    def in_flight(self) -> List[str]:
        """Tenants with a retrain currently running (or awaiting install)."""
        return list(self._jobs)

    def poll_tenant(self, tenant_id: str) -> bool:
        """Advance one tenant's retrain state machine; True if a tree landed.

        Installs the tenant's retrained tree if its job finished, otherwise
        launches a job if the slot crossed its threshold and none is in
        flight.  Non-blocking except on the serial backend (where launching
        *is* the retrain).
        """
        job = self._jobs.get(tenant_id)
        if job is not None:
            if not job.handle.ready():
                return False
            del self._jobs[tenant_id]
            return self._install(job)
        slot = self.registry.slot(tenant_id)
        if slot.needs_retraining():
            self._launch(tenant_id)
            # Serial jobs complete inside _launch; land them immediately so
            # the very next batch serves from the retrained tree.
            job = self._jobs[tenant_id]
            if job.handle.ready():
                del self._jobs[tenant_id]
                return self._install(job)
        return False

    def poll(self) -> List[str]:
        """Poll every registered tenant; returns those that got a new tree."""
        return [tenant_id for tenant_id in self.registry.tenants()
                if self.poll_tenant(tenant_id)]

    def retrain_in_flight(self, tenant_id: str) -> bool:
        """True while the tenant's launched retrain is still *running*.

        A finished-but-uninstalled job returns False: the caller's next
        poll or drain lands it without waiting, so it must not defer a
        migration.  Polling the handle also pumps a shared pool, advancing
        queued jobs of other tenants.
        """
        job = self._jobs.get(tenant_id)
        return job is not None and not job.handle.ready()

    def drain_tenant(self, tenant_id: str) -> bool:
        """Land (or reject) one tenant's in-flight retrain, blocking.

        The pre-migration quiesce: a tenant cannot ship to another shard
        while a retrain trained against its old slot is still in flight.
        Returns True if a tree was installed.
        """
        job = self._jobs.pop(tenant_id, None)
        if job is None:
            return False
        return self._install(job)

    def export_tenant(self, tenant_id: str) -> int:
        """Forget a migrating tenant and return its retrain launch count.

        Call after :meth:`drain_tenant`; raises if a job is still in
        flight.  The launch count ships with the tenant so the target
        shard's controller continues the per-tenant seed sequence exactly
        where this one left off — retrain N produces the same training run
        no matter which shard launches it.
        """
        if tenant_id in self._jobs:
            raise RuntimeError(
                f"tenant {tenant_id!r} has a retrain in flight; "
                f"drain_tenant() before exporting"
            )
        return self._launch_counts.pop(tenant_id, 0)

    def import_tenant(self, tenant_id: str, launch_count: int) -> None:
        """Adopt a migrated tenant's retrain launch count (seed continuity)."""
        self._launch_counts[tenant_id] = launch_count

    def drain(self) -> List[str]:
        """Block until every in-flight retrain finishes and installs.

        A quiesce point (end of trace, shutdown) — the registry's own
        ``drain()`` should follow so the adopted trees' engine rebuilds are
        installed too.  Returns the tenants whose trees were installed.
        """
        landed = []
        for tenant_id, job in list(self._jobs.items()):
            del self._jobs[tenant_id]
            if self._install(job):
                landed.append(tenant_id)
        return landed

    @property
    def pool(self) -> Optional[RetrainPool]:
        """The shared retrain pool jobs multiplex over (None = private)."""
        return self._pool

    def close(self) -> None:
        """Shut down the controller-owned executor (idempotent).

        Shared pools (and caller-provided executors) are left running —
        their lifecycle belongs to the serving layer, which wraps serving
        loops in ``try/finally`` and shuts pools down at interpreter exit
        via :func:`repro.executors.shutdown_shared_retrain_pools`.
        """
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown()

    def __enter__(self) -> "RetrainController":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _launch(self, tenant_id: str) -> None:
        slot = self.registry.slot(tenant_id)
        count = self._launch_counts.get(tenant_id, 0)
        self._launch_counts[tenant_id] = count + 1
        base = slot.ruleset
        request = RetrainRequest(
            tenant_id=tenant_id,
            ruleset=base,
            config=self.policy.training_config(
                seed=self.policy.seed + 9973 * count
                + (zlib.crc32(tenant_id.encode()) & 0xFFFF)
            ),
            max_iterations=self.policy.max_iterations,
        )
        if self._pool is not None:
            handle = self._pool.submit(tenant_id, run_retrain, request)
            self.stats.queued += 1
            self.registry.metrics.gauge("serve.retrain_queue_depth").set(
                self._pool.queue_depth())
        else:
            handle = self._executor.submit(run_retrain, request)
        self._jobs[tenant_id] = _RetrainJob(
            tenant_id=tenant_id, base_ruleset=base, handle=handle,
            incumbent_objective=classifier_objective(
                slot.classifier.stats(), self.policy.time_space_coeff),
        )
        self.stats.triggered += 1

    def _install(self, job: _RetrainJob) -> bool:
        response = job.handle.result()
        if self._pool is not None:
            self.registry.metrics.gauge("serve.retrain_queue_depth").set(
                self._pool.queue_depth())
        try:
            slot = self.registry.slot(job.tenant_id)
        except UnknownTenantError:
            self.stats.discarded += 1
            return False
        classifier = response.classifier(job.base_ruleset)
        if self.policy.quality_gate:
            # Strict improvement required: a tie means the retrain bought
            # nothing, so the incumbent (with its warm flow cache and
            # already-compiled engine) keeps serving.  The bar is the
            # incumbent's objective *at launch*, when both trees served
            # exactly ``base_ruleset``: updates that raced the retrain are
            # replayed onto the candidate at adoption anyway, and reading
            # the incumbent at install time instead would make the verdict
            # depend on how many of them landed first — i.e. on backend
            # scheduling, breaking serial/thread/process count parity.
            coeff = self.policy.time_space_coeff
            candidate = classifier_objective(classifier.stats(), coeff)
            if candidate >= job.incumbent_objective:
                self.stats.rejected += 1
                # Restart the drift counters: without this the very next
                # poll would relaunch the same losing retrain in a loop.
                slot.note_retrain_rejected()
                slot.metrics.counter("serve.retrains_rejected").inc()
                return False
        slot.adopt_classifier(classifier, base_ruleset=job.base_ruleset)
        self.stats.installed += 1
        self.stats.train_seconds.append(response.wall_seconds)
        # The retrain-job phase span: training ran off-thread, so the job's
        # own wall time is observed at install rather than wrapped inline.
        slot.metrics.timing("serve.retrain_seconds").observe(
            response.wall_seconds)
        return True
