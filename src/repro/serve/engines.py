"""Double-buffered engine slots: zero-downtime rule updates per tenant.

A tenant's packets are served from a compiled engine (flat arrays); its rule
updates are applied to the *Python* tree through
:class:`~repro.neurocuts.updates.IncrementalUpdater` and recompiled in the
background while the old engine keeps serving.  The finished engine is
swapped in atomically between batches, keyed on the trees' structural
version counters so a swap can never install arrays compiled from a stale
tree.  The serving path therefore never waits for a recompile — the only
stall happens if a *second* update arrives while the previous rebuild is
still in flight, in which case the slot joins the builder first (counted in
:class:`SwapStats`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.engine.cache import DEFAULT_FLOW_CACHE_SIZE, FlowCacheStats
from repro.engine.compile import compile_classifier, \
    partial_compile_classifier
from repro.engine.dispatch import CompiledClassifier
from repro.neurocuts.updates import IncrementalUpdater, UpdateStats
from repro.obs.metrics import MetricsRegistry
from repro.obs.serialize import stable_dict
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet
from repro.tree.lookup import TreeClassifier
from repro.tree.serialize import tree_from_dict, tree_to_dict

#: Default number of accumulated rule updates before a slot advises a
#: retrain.  Effectively "never" — retraining is opt-in; pass a real
#: threshold to :class:`EngineSlot` (or ``TenantRegistry.register``) and pair
#: it with a :class:`~repro.serve.controller.RetrainController` to act on it.
DEFAULT_RETRAIN_THRESHOLD = 10 ** 9


@dataclass
class SwapStats:
    """Bookkeeping about engine swaps and the stalls they (rarely) cause."""

    swaps: int = 0
    #: Updates that had to join a still-running rebuild before applying.
    stalls: int = 0
    #: Total seconds spent blocked on in-flight rebuilds.
    stall_seconds: float = 0.0
    #: Wall seconds each background rebuild took, in swap order.
    build_seconds: List[float] = field(default_factory=list)
    #: Discarded shadow engines (compiled from a tree version that moved on).
    stale_builds: int = 0

    def merge(self, other: "SwapStats") -> "SwapStats":
        """Accumulate another slot's counters (telemetry across tenants/shards).

        ``build_seconds`` concatenates, so the merged mean (and any
        percentile a caller computes) is exact over the union — the same
        raw-sample contract as the sharded latency merge.
        """
        self.swaps += other.swaps
        self.stalls += other.stalls
        self.stall_seconds += other.stall_seconds
        self.build_seconds.extend(other.build_seconds)
        self.stale_builds += other.stale_builds
        return self

    def as_dict(self) -> dict:
        return stable_dict({
            "swaps": self.swaps,
            "stalls": self.stalls,
            "stall_seconds": self.stall_seconds,
            "stale_builds": self.stale_builds,
            "mean_build_seconds": (
                sum(self.build_seconds) / len(self.build_seconds)
                if self.build_seconds else 0.0
            ),
        })


@dataclass
class SlotState:
    """A picklable snapshot of one :class:`EngineSlot`, taken at quiesce.

    This is what crosses the wire when a tenant migrates between serving
    shards (:mod:`repro.serve.rebalance`): the decision trees (serialized,
    compiled arrays never travel), the full per-epoch ruleset history so
    differential exactness holds *across* the migration boundary, the
    pending-update counters so the retrain trigger carries over, and the
    flow-cache contents so cache telemetry stays continuous.  Restore with
    :meth:`EngineSlot.from_state` — the rebuilt slot compiles an engine
    from the shipped trees for the *same* epoch, so every later packet is
    still classified against its epoch's ruleset.
    """

    tenant_id: str
    #: One ``(tree_to_dict(tree), tree.ruleset)`` pair per tree; each tree
    #: is reconstructed against its own ruleset (partitioned trees hold
    #: subsets of the classifier ruleset).
    tree_payloads: List[Tuple[dict, RuleSet]]
    classifier_name: str
    #: The classifier's current ruleset (equals ``epoch_rulesets[-1]``).
    ruleset: RuleSet
    #: Per-epoch ruleset snapshots, epoch 0 first.
    epoch_rulesets: List[RuleSet]
    epoch: int
    #: ``(rules_added, rules_removed, leaves_touched)`` per updater, so
    #: ``updates_since_adoption`` / ``needs_retraining`` survive the move.
    updater_stats: List[Tuple[int, int, int]]
    retrain_threshold: int
    flow_cache_size: Optional[int]
    background: bool
    engine_backend: str
    partial_recompile: bool
    swap_stats: SwapStats
    retired_cache_stats: FlowCacheStats
    #: Live flow-cache contents as ``(flow key, matched rule or None)``.
    #: Entries ship as *rules*, not engine indices: the source engine's
    #: rule table reflects its compile history (partial recompiles append
    #: new rules at the end), so its indices are meaningless in the
    #: target's freshly-compiled table.  The import side re-interns each
    #: rule against the new engine's table.
    cache_entries: List[Tuple[Tuple[int, int, int, int, int], Optional[Rule]]]
    cache_stats: FlowCacheStats


class EngineSlot:
    """One tenant's serving state: live engine, shadow engine, update path.

    The *active* engine serves every batch.  :meth:`apply_update` edits the
    decision trees incrementally, snapshots the post-update ruleset, and
    kicks off a rebuild (a daemon thread when ``background=True``, inline
    otherwise).  :meth:`engine` is the per-batch accessor: it installs a
    finished shadow engine — the atomic swap — and returns the current one.
    :meth:`adopt_classifier` swaps the decision *trees* themselves (a
    retrained tree, not just recompiled arrays) through the same
    double-buffered path.

    Epochs number the engine generations: epoch 0 is the engine compiled at
    registration, and every swap increments it.  ``ruleset_at(epoch)``
    returns the exact ruleset an epoch's engine was compiled from, which is
    what lets benchmarks assert differential exactness *across* a hot swap.

    **Thread-safety.**  A slot assumes *one* serving thread: every public
    method must be called from that thread.  The only concurrency is the
    slot's own builder thread, which exclusively *reads* the trees while
    compiling the shadow engine — the serving thread never mutates them with
    a build in flight because every mutating method joins the builder first.
    Do not call slot methods from multiple threads.

    **Stall vs quiesce.**  Waiting on the builder is counted as a *stall*
    (``SwapStats.stalls``) only when it delays the live update path — i.e. a
    second ``apply_update`` arrives while the previous rebuild is still in
    flight and must join it to keep epochs strictly ordered.  Waits at
    *quiesce points* — :meth:`force_swap` at end of trace, deregistration,
    or a retrain adoption — are not serving stalls and are not counted.
    """

    def __init__(
        self,
        tenant_id: str,
        classifier: TreeClassifier,
        flow_cache_size: Optional[int] = DEFAULT_FLOW_CACHE_SIZE,
        background: bool = True,
        retrain_threshold: int = DEFAULT_RETRAIN_THRESHOLD,
        metrics: Optional[MetricsRegistry] = None,
        engine_backend: str = "numpy",
        partial_recompile: bool = True,
    ) -> None:
        self.tenant_id = tenant_id
        self.classifier = classifier
        self.flow_cache_size = flow_cache_size
        self.background = background
        self.retrain_threshold = retrain_threshold
        self.engine_backend = engine_backend
        #: When True (the default), update rebuilds go through
        #: partial_compile_classifier: only subtrees the delta touched are
        #: re-flattened, everything else is reused by reference.
        self.partial_recompile = partial_recompile
        self.swap_stats = SwapStats()
        #: Phase-timer spans land here; a registry-owned MetricsRegistry is
        #: shared across slots (see TenantRegistry), else the slot owns one.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # The builder thread records compile spans and counters, so every
        # series must exist before any build starts (list.append and the
        # int += are GIL-atomic under the one-builder-at-a-time invariant;
        # series *creation* is not).
        self._compile_timing = self.metrics.timing("engine.compile_seconds")
        self._partial_timing = self.metrics.timing(
            "engine.partial_compile_seconds")
        self._full_compiles = self.metrics.counter("engine.compiles_full")
        self._partial_compiles = self.metrics.counter(
            "engine.compiles_partial")
        self._nodes_recompiled = self.metrics.gauge("engine.nodes_recompiled")
        self._install_timing = self.metrics.timing(
            "serve.swap_install_seconds")
        #: Flow-cache counters of engines already retired by swaps.
        self.retired_cache_stats = FlowCacheStats()
        self._updaters = [
            IncrementalUpdater(tree, retrain_threshold=retrain_threshold)
            for tree in classifier.trees
        ]
        with self.metrics.span("engine.compile_seconds"):
            self._active = compile_classifier(classifier,
                                              flow_cache_size=flow_cache_size,
                                              backend=engine_backend)
        self._full_compiles.inc()
        self._rulesets: List[RuleSet] = [classifier.ruleset]
        self.epoch = 0
        self._builder: Optional[threading.Thread] = None
        self._shadow_build_seconds: float = 0.0
        self._shadow: Optional[CompiledClassifier] = None
        self._shadow_ruleset: Optional[RuleSet] = None
        self._shadow_versions: Optional[Tuple[int, ...]] = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def ruleset(self) -> RuleSet:
        """The *latest* ruleset (updates applied, even mid-swap).

        The engine currently serving may still be a generation behind —
        ``ruleset_at(epoch)`` gives the snapshot it was compiled from.
        """
        return self.classifier.ruleset

    def ruleset_at(self, epoch: int) -> RuleSet:
        """The ruleset the given engine epoch was compiled from."""
        return self._rulesets[epoch]

    @property
    def swap_pending(self) -> bool:
        """True while an updated engine is being built or awaits install."""
        return self._builder is not None

    def needs_retraining(self) -> bool:
        """True once accumulated updates advise retraining (Section 4.2).

        Fires when any tree's accumulated add/remove count reaches
        ``retrain_threshold``.  The slot only *advises*; acting on it — a
        background NeuroCuts run followed by :meth:`adopt_classifier` —
        is the :class:`~repro.serve.controller.RetrainController`'s job.
        """
        return any(u.needs_retraining() for u in self._updaters)

    @property
    def updates_since_adoption(self) -> int:
        """Rule updates accumulated since the current trees were installed.

        Counted per tree and summed (an update touching several trees counts
        once per tree, matching how incremental patches degrade each tree).
        Resets when :meth:`adopt_classifier` installs retrained trees.
        """
        return sum(u.stats.total_updates for u in self._updaters)

    def cache_stats(self) -> FlowCacheStats:
        """Cumulative flow-cache counters across every engine generation."""
        total = FlowCacheStats(
            hits=self.retired_cache_stats.hits,
            misses=self.retired_cache_stats.misses,
            evictions=self.retired_cache_stats.evictions,
            invalidations=self.retired_cache_stats.invalidations,
        )
        if self._active.flow_cache is not None:
            total.merge(self._active.flow_cache.stats)
        return total

    def telemetry_snapshot(self) -> dict:
        """A *consistent* per-tenant telemetry entry.

        Field-by-field reads (the old ``TenantRegistry.telemetry()`` path)
        can race a concurrent :meth:`adopt_classifier`: the classifier
        reference and the updater list are replaced in two steps, so a
        reader could pair the retrained trees with the pre-adopt update
        counters — a half-updated retrain entry.  The snapshot captures
        the references once, computes every figure from the captured pair,
        and retries if the slot swapped underneath — the same versioning
        discipline the end-of-trace quiesce gives ``ServingReport.metrics``.
        """
        while True:
            epoch = self.epoch
            classifier = self.classifier
            updaters = self._updaters
            entry = {
                "rules": len(classifier.ruleset),
                "epoch": epoch,
                "cache": self.cache_stats().as_dict(),
                "swap": self.swap_stats.as_dict(),
                "retrain": {
                    "accumulated_updates": sum(
                        u.stats.total_updates for u in updaters),
                    "threshold": self.retrain_threshold,
                    "needs_retraining": any(
                        u.needs_retraining() for u in updaters),
                },
            }
            if self.epoch == epoch and self.classifier is classifier \
                    and self._updaters is updaters:
                return entry

    # ------------------------------------------------------------------ #
    # Serving path
    # ------------------------------------------------------------------ #

    def engine(self) -> CompiledClassifier:
        """The engine to serve the next batch with (installs ready swaps)."""
        self._try_install()
        return self._active

    # ------------------------------------------------------------------ #
    # Update path
    # ------------------------------------------------------------------ #

    def apply_update(self, adds: Sequence[Rule] = (),
                     removes: Sequence[Rule] = ()) -> None:
        """Apply a rule update and schedule the engine rebuild.

        Removals are cleared from every tree; additions are routed into the
        first tree (every tree's root spans the full header space, and the
        multi-tree dispatch takes the best-priority match across trees, so
        one copy suffices).  The active engine keeps serving the *previous*
        ruleset until the rebuilt engine is swapped in.
        """
        if not adds and not removes:
            return
        # A still-running rebuild must land first: joining here (a stall)
        # keeps updates strictly ordered — every epoch's engine corresponds
        # to exactly one ruleset snapshot.
        self._join_builder(count_stall=True)
        # Removed rules must be mapped to their subtrees *before* the
        # updaters strip them from the node rule lists.
        dirty_roots = self._dirty_roots_for(removes)
        for rule in removes:
            for updater in self._updaters:
                updater.remove_rule(rule)
        for rule in adds:
            self._updaters[0].add_rule(rule)
        if dirty_roots is not None:
            # Additions sit on their insert path now; map them after.
            dirty_roots |= self._dirty_roots_for(adds)
        ruleset = self.ruleset
        if removes:
            ruleset = ruleset.with_rules_removed(removes)
        if adds:
            ruleset = ruleset.with_rules_added(adds)
        self.classifier.ruleset = ruleset
        self._start_build(ruleset, dirty_roots=dirty_roots)

    def _dirty_roots_for(self, rules: Sequence[Rule]) -> Optional[set]:
        """Ids of the active engine's stable expanded roots holding ``rules``.

        Returns ``None`` when partial recompilation is off or the active
        engine carries no provenance (hand-assembled engine) — the build
        then falls back to recompiling every changed tree in full.
        """
        if not self.partial_recompile:
            return None
        provenance = getattr(self._active, "provenance", None)
        if provenance is None:
            return None
        dirty: set = set()
        for rule in rules:
            for tree_roots in provenance.roots:
                if tree_roots is None:
                    continue
                for root in tree_roots:
                    if rule in root.rules:
                        dirty.add(id(root))
        return dirty

    def adopt_classifier(self, classifier: TreeClassifier,
                         base_ruleset: Optional[RuleSet] = None) -> None:
        """Swap in a replacement for the decision *trees* themselves.

        This is the install half of the retrain-on-churn loop: a background
        NeuroCuts run produced a fresh tree for ``base_ruleset`` (the
        snapshot of this slot's ruleset when the retrain launched), and the
        slot now replaces its trees wholesale — the same double-buffered
        path as :meth:`apply_update`, so the old engine keeps serving until
        the new tree's compiled engine is ready.

        Rule updates that landed *while* the retrain ran are not lost:
        passing ``base_ruleset`` replays the delta between it and the
        current ruleset onto the new trees (via the same incremental-update
        machinery) before compiling, so the adopted epoch's snapshot equals
        the latest ruleset and per-epoch differential exactness holds
        across the adoption.  With ``base_ruleset=None`` the classifier is
        assumed to already match the current ruleset.

        Update counters restart from the replayed delta (normally zero):
        the retrain absorbed every update up to ``base_ruleset``, while
        churn that raced it remains incremental patchwork on the new trees
        and keeps counting toward the next retrain.

        Joining a still-running rebuild here is a quiesce, not a stall —
        the adoption supersedes whatever that rebuild would have installed.
        """
        self._join_builder(count_stall=False)
        current = self.ruleset
        updaters = [
            IncrementalUpdater(tree, retrain_threshold=self.retrain_threshold)
            for tree in classifier.trees
        ]
        if base_ruleset is not None:
            # Rule is a hashable frozen dataclass, so the delta is two O(n)
            # set probes rather than quadratic list scans on the serving
            # thread; iteration order stays that of the rule lists.
            base_set = set(base_ruleset.rules)
            current_set = set(current.rules)
            for rule in base_ruleset.rules:
                if rule not in current_set:
                    for updater in updaters:
                        updater.remove_rule(rule)
            for rule in current.rules:
                if rule not in base_set:
                    updaters[0].add_rule(rule)
        classifier.ruleset = current
        self.classifier = classifier
        self._updaters = updaters
        self._start_build(current)

    def force_swap(self) -> None:
        """Block until any pending rebuild has been built and installed.

        A quiesce point (end of trace, deregistration) — waiting here is not
        a serving stall, so it is not counted in :class:`SwapStats`.
        """
        self._join_builder(count_stall=False)

    def note_retrain_rejected(self) -> None:
        """Reset the retrain trigger after a quality-gate rejection.

        The incrementally-patched incumbent beat the retrained candidate,
        i.e. the accumulated drift did not actually degrade this slot —
        so the evidence that triggered the retrain is spent.  Counting
        restarts from zero; without this the controller would relaunch on
        every poll against the same (already-refuted) counters.
        """
        for updater in self._updaters:
            updater.stats = UpdateStats()

    # ------------------------------------------------------------------ #
    # Migration (ship the slot across a shard boundary)
    # ------------------------------------------------------------------ #

    def export_state(self) -> SlotState:
        """Snapshot everything a target shard needs to take this slot over.

        Quiesces first (any in-flight rebuild lands), then serialises the
        decision trees, the per-epoch ruleset history, the pending-update
        and swap counters, and the live flow-cache contents.  The returned
        :class:`SlotState` is picklable and decoupled from this slot (no
        shared mutable state), so the source can be deregistered the
        moment it is taken.
        """
        self.force_swap()
        cache = self._active.flow_cache
        return SlotState(
            tenant_id=self.tenant_id,
            tree_payloads=[(tree_to_dict(tree), tree.ruleset)
                           for tree in self.classifier.trees],
            classifier_name=self.classifier.name,
            ruleset=self.ruleset,
            epoch_rulesets=list(self._rulesets),
            epoch=self.epoch,
            updater_stats=[(u.stats.rules_added, u.stats.rules_removed,
                            u.stats.leaves_touched) for u in self._updaters],
            retrain_threshold=self.retrain_threshold,
            flow_cache_size=self.flow_cache_size,
            background=self.background,
            engine_backend=self.engine_backend,
            partial_recompile=self.partial_recompile,
            swap_stats=SwapStats(
                swaps=self.swap_stats.swaps,
                stalls=self.swap_stats.stalls,
                stall_seconds=self.swap_stats.stall_seconds,
                build_seconds=list(self.swap_stats.build_seconds),
                stale_builds=self.swap_stats.stale_builds,
            ),
            retired_cache_stats=FlowCacheStats(
                hits=self.retired_cache_stats.hits,
                misses=self.retired_cache_stats.misses,
                evictions=self.retired_cache_stats.evictions,
                invalidations=self.retired_cache_stats.invalidations,
            ),
            cache_entries=[
                (key, None if index < 0 else self._active.rules[index])
                for key, index in cache.entries()
            ] if cache is not None else [],
            cache_stats=FlowCacheStats(
                hits=cache.stats.hits,
                misses=cache.stats.misses,
                evictions=cache.stats.evictions,
                invalidations=cache.stats.invalidations,
            ) if cache is not None else FlowCacheStats(),
        )

    @classmethod
    def from_state(cls, state: SlotState,
                   metrics: Optional[MetricsRegistry] = None) -> "EngineSlot":
        """Rebuild a slot from a shipped :class:`SlotState` (the install).

        The engine is compiled from the shipped trees through the normal
        constructor path (compiled arrays never cross the wire), then the
        epoch history, update counters, swap counters, and flow-cache
        contents are restored — the rebuilt engine serves the *same*
        epoch the source was on, so the per-epoch exactness contract holds
        straight through the migration.
        """
        if state.epoch != len(state.epoch_rulesets) - 1:
            raise ValueError(
                f"slot state for {state.tenant_id!r} is inconsistent: "
                f"epoch {state.epoch} with "
                f"{len(state.epoch_rulesets)} ruleset snapshots"
            )
        trees = [tree_from_dict(payload, ruleset)
                 for payload, ruleset in state.tree_payloads]
        classifier = TreeClassifier(state.ruleset, trees,
                                    name=state.classifier_name)
        slot = cls(
            state.tenant_id,
            classifier,
            flow_cache_size=state.flow_cache_size,
            background=state.background,
            retrain_threshold=state.retrain_threshold,
            metrics=metrics,
            engine_backend=state.engine_backend,
            partial_recompile=state.partial_recompile,
        )
        slot._rulesets = list(state.epoch_rulesets)
        slot.epoch = state.epoch
        slot.swap_stats = state.swap_stats
        slot.retired_cache_stats = state.retired_cache_stats
        for updater, (added, removed, touched) in zip(slot._updaters,
                                                      state.updater_stats):
            updater.stats = UpdateStats(rules_added=added,
                                        rules_removed=removed,
                                        leaves_touched=touched)
        if slot._active.flow_cache is not None:
            # Re-intern the shipped (flow key, rule) pairs against the new
            # engine's rule table; -1 is the cached "no match" sentinel.
            index_of = {rule: i for i, rule in enumerate(slot._active.rules)}
            entries = [
                (key, -1 if rule is None else index_of[rule])
                for key, rule in state.cache_entries
                if rule is None or rule in index_of
            ]
            slot._active.flow_cache.restore(entries, state.cache_stats)
        return slot

    def _join_builder(self, count_stall: bool) -> None:
        if self._builder is None:
            return
        start = time.perf_counter()
        alive = self._builder.is_alive()
        self._builder.join()
        if alive and count_stall:
            self.swap_stats.stalls += 1
            self.swap_stats.stall_seconds += time.perf_counter() - start
        self._try_install()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _versions(self) -> Tuple[int, ...]:
        return tuple(tree.version for tree in self.classifier.trees)

    def _start_build(self, target_ruleset: RuleSet,
                     dirty_roots: Optional[set] = None) -> None:
        target_versions = self._versions()
        # Captured on the serving thread: _active cannot change while this
        # build is in flight (installs only happen once the builder exits).
        previous = self._active

        def build() -> None:
            # The builder only *reads* the trees; the main thread never
            # mutates them while a build is in flight (apply_update joins
            # first), so no lock is needed around the traversal.
            started = time.perf_counter()
            if self.partial_recompile:
                result = partial_compile_classifier(
                    self.classifier,
                    previous,
                    dirty_roots=dirty_roots,
                    flow_cache_size=self.flow_cache_size,
                    backend=self.engine_backend,
                )
                shadow = result.classifier
                elapsed = time.perf_counter() - started
                if result.full_rebuild:
                    self._full_compiles.inc()
                    self._compile_timing.observe(elapsed)
                else:
                    self._partial_compiles.inc()
                    self._partial_timing.observe(elapsed)
                    self._nodes_recompiled.set(result.nodes_recompiled)
            else:
                shadow = compile_classifier(
                    self.classifier,
                    flow_cache_size=self.flow_cache_size,
                    backend=self.engine_backend,
                )
                elapsed = time.perf_counter() - started
                self._full_compiles.inc()
                self._compile_timing.observe(elapsed)
            self._shadow_build_seconds = elapsed
            self._shadow = shadow
            self._shadow_ruleset = target_ruleset
            self._shadow_versions = target_versions

        if self.background:
            self._builder = threading.Thread(
                target=build, name=f"engine-build-{self.tenant_id}", daemon=True
            )
            self._builder.start()
            self._try_install()
        else:
            build()
            self._install_shadow()

    def _try_install(self) -> None:
        """Install the shadow engine if its build finished (the atomic swap)."""
        if self._builder is None or self._builder.is_alive():
            return
        self._builder.join()
        self._builder = None
        self._install_shadow()

    def _install_shadow(self) -> None:
        shadow, ruleset = self._shadow, self._shadow_ruleset
        versions = self._shadow_versions
        self._shadow = self._shadow_ruleset = self._shadow_versions = None
        if shadow is None or ruleset is None:
            return
        if versions != self._versions():
            # The trees moved on while this engine compiled; its arrays are
            # stale and must never serve.  (Unreachable through apply_update,
            # which serialises builds, but guards direct tree mutation.)
            self.swap_stats.stale_builds += 1
            self._start_build(self.classifier.ruleset)
            return
        install_start = time.perf_counter()
        if self._active.flow_cache is not None:
            # The retiring engine's cached flows are invalidated by the swap
            # (counted via clear()), then its counters fold into the totals.
            self._active.flow_cache.clear()
            self.retired_cache_stats.merge(self._active.flow_cache.stats)
        self._active = shadow
        self._rulesets.append(ruleset)
        self.epoch += 1
        self.swap_stats.swaps += 1
        self.swap_stats.build_seconds.append(self._shadow_build_seconds)
        self._install_timing.observe(time.perf_counter() - install_start)
