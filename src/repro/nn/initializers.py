"""Weight initializers for the numpy neural-network substrate."""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape: tuple, rng: np.random.Generator,
                   gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation, the default for tanh networks."""
    fan_in, fan_out = shape[0], shape[1]
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def orthogonal(shape: tuple, rng: np.random.Generator,
               gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialisation, commonly used for policy-gradient networks."""
    rows, cols = shape
    flat = rng.normal(size=(max(rows, cols), min(rows, cols)))
    q, _ = np.linalg.qr(flat)
    q = q[:rows, :cols] if rows >= cols else q.T[:rows, :cols]
    return (gain * q).astype(np.float64)


def zeros(shape: tuple) -> np.ndarray:
    """All-zero initialisation (biases, final policy head)."""
    return np.zeros(shape, dtype=np.float64)


def small_normal(shape: tuple, rng: np.random.Generator,
                 scale: float = 0.01) -> np.ndarray:
    """Small-variance normal initialisation for output heads."""
    return (rng.normal(scale=scale, size=shape)).astype(np.float64)
