"""Actor-critic MLP: shared tanh trunk with policy and value heads.

This matches Appendix B of the paper: a fully connected network with hidden
layers ``[512, 512]``, tanh nonlinearity, and weight sharing between the
policy parameters θ and the value parameters θ_v (the two heads read the same
trunk output).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.initializers import orthogonal, small_normal, zeros
from repro.nn.layers import ACTIVATIONS, Dense


class ActorCriticMLP:
    """A shared-trunk actor-critic network.

    Args:
        obs_size: size of the flat observation vector.
        action_sizes: number of categories for each action component (the
            NeuroCuts action is a tuple of two categoricals, so this is a
            2-element sequence).
        hidden_sizes: trunk layer widths (default [512, 512] as in the paper).
        activation: "tanh" (paper default) or "relu".
        seed: RNG seed for weight initialisation.
    """

    def __init__(
        self,
        obs_size: int,
        action_sizes: Sequence[int],
        hidden_sizes: Sequence[int] = (512, 512),
        activation: str = "tanh",
        seed: int = 0,
    ) -> None:
        if activation not in ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        self.obs_size = obs_size
        self.action_sizes = tuple(int(a) for a in action_sizes)
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)
        self.activation_name = activation
        rng = np.random.default_rng(seed)

        self._trunk: List[Dense] = []
        self._acts = []
        last = obs_size
        for i, width in enumerate(self.hidden_sizes):
            self._trunk.append(Dense(last, width, rng, name=f"trunk{i}"))
            self._acts.append(ACTIVATIONS[activation]())
            last = width
        total_logits = sum(self.action_sizes)
        self._policy_head = Dense(last, total_logits, rng, gain=0.01, name="policy")
        self._value_head = Dense(last, 1, rng, gain=1.0, name="value")

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #

    def forward(self, obs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Compute (logits, values) for a batch of observations.

        Returns:
            logits with shape ``(batch, sum(action_sizes))`` and values with
            shape ``(batch,)``.
        """
        x = np.asarray(obs, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        for layer, act in zip(self._trunk, self._acts):
            x = act.forward(layer.forward(x))
        logits = self._policy_head.forward(x)
        values = self._value_head.forward(x)[:, 0]
        return logits, values

    def backward(self, grad_logits: np.ndarray,
                 grad_values: np.ndarray) -> Dict[str, np.ndarray]:
        """Backpropagate head gradients; returns named parameter grads.

        Must be called right after :meth:`forward` on the same batch.
        """
        grads: Dict[str, np.ndarray] = {}
        grad_from_policy = self._policy_head.backward(grad_logits, grads)
        grad_from_value = self._value_head.backward(
            np.asarray(grad_values, dtype=np.float64).reshape(-1, 1), grads
        )
        grad_trunk = grad_from_policy + grad_from_value
        for layer, act in zip(reversed(self._trunk), reversed(self._acts)):
            grad_trunk = layer.backward(act.backward(grad_trunk), grads)
        return grads

    # ------------------------------------------------------------------ #
    # Parameter management
    # ------------------------------------------------------------------ #

    def parameters(self) -> Dict[str, np.ndarray]:
        """All named parameters of the network."""
        params: Dict[str, np.ndarray] = {}
        for layer in [*self._trunk, self._policy_head, self._value_head]:
            params.update(layer.parameters())
        return params

    def load_parameters(self, params: Dict[str, np.ndarray]) -> None:
        """Load parameters produced by :meth:`parameters` (e.g. a checkpoint)."""
        for layer in [*self._trunk, self._policy_head, self._value_head]:
            layer.load_parameters(params)

    def apply_updates(self, new_params: Dict[str, np.ndarray]) -> None:
        """Alias of :meth:`load_parameters` for optimiser integration."""
        self.load_parameters(new_params)

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters().values())

    def split_logits(self, logits: np.ndarray) -> List[np.ndarray]:
        """Split the flat logits into one block per action component."""
        blocks = []
        start = 0
        for size in self.action_sizes:
            blocks.append(logits[:, start:start + size])
            start += size
        return blocks

    def clone_config(self) -> Dict:
        """Constructor arguments needed to rebuild an identical architecture."""
        return {
            "obs_size": self.obs_size,
            "action_sizes": list(self.action_sizes),
            "hidden_sizes": list(self.hidden_sizes),
            "activation": self.activation_name,
        }
