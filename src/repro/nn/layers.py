"""Dense layers and activations with explicit forward/backward passes.

The network sizes in the paper (two 512-unit tanh layers over a 278-bit
observation) are small enough that a straightforward numpy implementation
with hand-written backpropagation is fast and keeps the whole RL stack free
of external deep-learning dependencies.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.initializers import orthogonal, zeros


class Dense:
    """A fully connected layer ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, gain: float = np.sqrt(2.0),
                 name: str = "dense") -> None:
        self.name = name
        self.weight = orthogonal((in_features, out_features), rng, gain=gain)
        self.bias = zeros((out_features,))
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches the input for the subsequent backward pass."""
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad_output: np.ndarray,
                 grads: Dict[str, np.ndarray]) -> np.ndarray:
        """Backward pass: accumulate parameter grads, return input grad."""
        if self._input is None:
            raise RuntimeError("backward called before forward")
        grads[f"{self.name}.weight"] = grads.get(
            f"{self.name}.weight", 0.0) + self._input.T @ grad_output
        grads[f"{self.name}.bias"] = grads.get(
            f"{self.name}.bias", 0.0) + grad_output.sum(axis=0)
        return grad_output @ self.weight.T

    def parameters(self) -> Dict[str, np.ndarray]:
        """Named parameter views (mutating them updates the layer)."""
        return {f"{self.name}.weight": self.weight, f"{self.name}.bias": self.bias}

    def load_parameters(self, params: Dict[str, np.ndarray]) -> None:
        """Replace this layer's parameters from a named dict."""
        self.weight = np.array(params[f"{self.name}.weight"], dtype=np.float64)
        self.bias = np.array(params[f"{self.name}.bias"], dtype=np.float64)


class Tanh:
    """Elementwise tanh activation (the paper's nonlinearity)."""

    def __init__(self) -> None:
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(x)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._output ** 2)


class ReLU:
    """Elementwise ReLU activation (available for ablations)."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


ACTIVATIONS = {"tanh": Tanh, "relu": ReLU}
