"""Model checkpointing: save/restore network parameters as ``.npz`` files."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.exceptions import CheckpointError
from repro.nn.model import ActorCriticMLP


def save_checkpoint(model: ActorCriticMLP, path: Union[str, Path]) -> None:
    """Save model architecture and parameters to a single ``.npz`` file."""
    path = Path(path)
    params = model.parameters()
    arrays = {f"param::{name}": value for name, value in params.items()}
    arrays["__config__"] = np.frombuffer(
        json.dumps(model.clone_config()).encode(), dtype=np.uint8
    )
    try:
        np.savez(path, **arrays)
    except OSError as exc:
        raise CheckpointError(f"could not write checkpoint to {path}: {exc}") from exc


def load_checkpoint(path: Union[str, Path]) -> ActorCriticMLP:
    """Rebuild a model (architecture + weights) from a checkpoint file."""
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    try:
        data = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"could not read checkpoint {path}: {exc}") from exc
    if "__config__" not in data:
        raise CheckpointError(f"{path} is not a repro checkpoint (missing config)")
    config = json.loads(bytes(data["__config__"]).decode())
    model = ActorCriticMLP(
        obs_size=config["obs_size"],
        action_sizes=config["action_sizes"],
        hidden_sizes=config["hidden_sizes"],
        activation=config["activation"],
    )
    params: Dict[str, np.ndarray] = {}
    for key in data.files:
        if key.startswith("param::"):
            params[key[len("param::"):]] = data[key]
    model.load_parameters(params)
    return model
