"""Checkpointing and flat-array parameter serialization.

Two related services live here:

* **Flat weight snapshots** — :func:`parameter_spec`,
  :func:`flatten_parameters` and :func:`unflatten_parameters` pack a named
  parameter dict into a single contiguous ``float64`` vector (and back).
  The actor/learner trainer broadcasts these snapshots to rollout workers:
  one array pickles far cheaper than a dict of many small ones, and the spec
  is recomputed locally on each side from the (identical) architecture.

* **Checkpoint files** — :func:`save_checkpoint` /
  :func:`load_checkpoint` persist a model as ``.npz``.  Passing the
  optimiser (and an optional ``trainer_state`` dict) also captures learner
  state so interrupted training can resume exactly;
  :func:`load_training_checkpoint` restores the full bundle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import CheckpointError
from repro.nn.model import ActorCriticMLP
from repro.nn.optim import Optimizer

#: (name, shape) pairs describing the layout of a flat parameter vector.
ParameterSpec = List[Tuple[str, Tuple[int, ...]]]


# --------------------------------------------------------------------------- #
# Flat-array parameter serialization (weight broadcast)
# --------------------------------------------------------------------------- #

def parameter_spec(params: Dict[str, np.ndarray]) -> ParameterSpec:
    """The canonical (sorted-by-name) layout of a flat parameter vector."""
    return [(name, tuple(params[name].shape)) for name in sorted(params)]


def flatten_parameters(params: Dict[str, np.ndarray]) -> np.ndarray:
    """Pack named parameters into one contiguous float64 vector.

    The layout follows :func:`parameter_spec` (names sorted), so any holder
    of an identically-shaped parameter dict can unpack the vector without
    transmitting the spec alongside it.
    """
    spec = parameter_spec(params)
    if not spec:
        return np.empty(0, dtype=np.float64)
    return np.concatenate(
        [np.asarray(params[name], dtype=np.float64).ravel() for name, _ in spec]
    )


def unflatten_parameters(flat: np.ndarray,
                         spec: ParameterSpec) -> Dict[str, np.ndarray]:
    """Unpack a flat vector produced by :func:`flatten_parameters`."""
    flat = np.asarray(flat, dtype=np.float64)
    expected = sum(int(np.prod(shape, dtype=np.int64)) for _, shape in spec)
    if flat.size != expected:
        raise CheckpointError(
            f"flat parameter vector has {flat.size} values, spec needs {expected}"
        )
    params: Dict[str, np.ndarray] = {}
    offset = 0
    for name, shape in spec:
        size = int(np.prod(shape, dtype=np.int64))
        params[name] = flat[offset:offset + size].reshape(shape).copy()
        offset += size
    return params


# --------------------------------------------------------------------------- #
# Checkpoint files
# --------------------------------------------------------------------------- #

@dataclass
class TrainingCheckpoint:
    """A fully restored checkpoint bundle."""

    model: ActorCriticMLP
    #: Optimiser state as produced by ``Optimizer.state_dict`` (or None).
    optimizer_state: Optional[Dict] = None
    #: Arbitrary JSON-serialisable trainer state (or None).
    trainer_state: Optional[Dict] = None

    def restore_optimizer(self, optimizer: Optimizer) -> Optimizer:
        """Load the saved optimiser state into ``optimizer`` and return it."""
        if self.optimizer_state is not None:
            optimizer.load_state_dict(self.optimizer_state)
        return optimizer


def _encode_json(payload: Dict) -> np.ndarray:
    return np.frombuffer(json.dumps(payload).encode(), dtype=np.uint8)


def _decode_json(array: np.ndarray) -> Dict:
    return json.loads(bytes(array).decode())


def save_checkpoint(model: ActorCriticMLP, path: Union[str, Path],
                    optimizer: Optional[Optimizer] = None,
                    trainer_state: Optional[Dict] = None) -> None:
    """Save a model — and optionally full learner state — to one ``.npz``.

    With only ``model`` given this produces the historical model-only
    checkpoint.  Passing ``optimizer`` captures its ``state_dict`` (moment
    arrays and step counters) and ``trainer_state`` may carry any
    JSON-serialisable driver state (timestep counters, RNG states, best-tree
    records); both are restored by :func:`load_training_checkpoint`.
    """
    path = Path(path)
    params = model.parameters()
    arrays = {f"param::{name}": value for name, value in params.items()}
    arrays["__config__"] = _encode_json(model.clone_config())
    if optimizer is not None:
        opt_meta: Dict[str, object] = {"groups": []}
        for key, value in optimizer.state_dict().items():
            if isinstance(value, dict):
                opt_meta["groups"].append(key)
                for name, array in value.items():
                    arrays[f"opt::{key}::{name}"] = np.asarray(array)
            else:
                opt_meta[key] = value
        arrays["__optimizer__"] = _encode_json(opt_meta)
    if trainer_state is not None:
        arrays["__trainer__"] = _encode_json(trainer_state)
    try:
        np.savez(path, **arrays)
    except OSError as exc:
        raise CheckpointError(f"could not write checkpoint to {path}: {exc}") from exc


def _load_npz(path: Union[str, Path]):
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    try:
        return path, np.load(path, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"could not read checkpoint {path}: {exc}") from exc


def _model_from_npz(path: Path, data) -> ActorCriticMLP:
    if "__config__" not in data:
        raise CheckpointError(f"{path} is not a repro checkpoint (missing config)")
    config = _decode_json(data["__config__"])
    model = ActorCriticMLP(
        obs_size=config["obs_size"],
        action_sizes=config["action_sizes"],
        hidden_sizes=config["hidden_sizes"],
        activation=config["activation"],
    )
    params: Dict[str, np.ndarray] = {}
    for key in data.files:
        if key.startswith("param::"):
            params[key[len("param::"):]] = data[key]
    model.load_parameters(params)
    return model


def load_checkpoint(path: Union[str, Path]) -> ActorCriticMLP:
    """Rebuild a model (architecture + weights) from a checkpoint file."""
    path, data = _load_npz(path)
    return _model_from_npz(path, data)


def load_training_checkpoint(path: Union[str, Path]) -> TrainingCheckpoint:
    """Restore model plus any optimiser/trainer state stored alongside it."""
    path, data = _load_npz(path)
    model = _model_from_npz(path, data)
    optimizer_state: Optional[Dict] = None
    if "__optimizer__" in data.files:
        opt_meta = _decode_json(data["__optimizer__"])
        groups = opt_meta.pop("groups", [])
        optimizer_state = dict(opt_meta)
        for key in groups:
            prefix = f"opt::{key}::"
            optimizer_state[key] = {
                name[len(prefix):]: data[name]
                for name in data.files if name.startswith(prefix)
            }
    trainer_state: Optional[Dict] = None
    if "__trainer__" in data.files:
        trainer_state = _decode_json(data["__trainer__"])
    return TrainingCheckpoint(
        model=model,
        optimizer_state=optimizer_state,
        trainer_state=trainer_state,
    )
