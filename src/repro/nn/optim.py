"""Gradient-descent optimisers over named parameter dictionaries."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


class Optimizer:
    """Base class: applies named gradients to named parameters in place."""

    def step(self, params: Dict[str, np.ndarray],
             grads: Dict[str, np.ndarray]) -> None:
        """Update ``params`` in place using ``grads``."""
        raise NotImplementedError

    def state_dict(self) -> Dict:
        """Serialisable optimiser state (for checkpointing)."""
        return {}

    def load_state_dict(self, state: Dict) -> None:
        """Restore optimiser state."""


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 1e-3, momentum: float = 0.0) -> None:
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: Dict[str, np.ndarray] = {}

    def step(self, params: Dict[str, np.ndarray],
             grads: Dict[str, np.ndarray]) -> None:
        for name, grad in grads.items():
            if name not in params:
                continue
            if self.momentum:
                vel = self._velocity.get(name)
                if vel is None:
                    vel = np.zeros_like(params[name])
                vel = self.momentum * vel + grad
                self._velocity[name] = vel
                update = vel
            else:
                update = grad
            params[name] -= self.learning_rate * update

    def state_dict(self) -> Dict:
        return {"velocity": {k: v.copy() for k, v in self._velocity.items()}}

    def load_state_dict(self, state: Dict) -> None:
        self._velocity = {k: np.array(v) for k, v in state.get("velocity", {}).items()}


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(self, learning_rate: float = 5e-5, beta1: float = 0.9,
                 beta2: float = 0.999, epsilon: float = 1e-8) -> None:
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._t = 0

    def step(self, params: Dict[str, np.ndarray],
             grads: Dict[str, np.ndarray]) -> None:
        self._t += 1
        for name, grad in grads.items():
            if name not in params:
                continue
            m = self._m.get(name)
            v = self._v.get(name)
            if m is None:
                m = np.zeros_like(params[name])
                v = np.zeros_like(params[name])
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * (grad ** 2)
            self._m[name] = m
            self._v[name] = v
            m_hat = m / (1 - self.beta1 ** self._t)
            v_hat = v / (1 - self.beta2 ** self._t)
            params[name] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def state_dict(self) -> Dict:
        return {
            "t": self._t,
            "m": {k: v.copy() for k, v in self._m.items()},
            "v": {k: v.copy() for k, v in self._v.items()},
        }

    def load_state_dict(self, state: Dict) -> None:
        self._t = state.get("t", 0)
        self._m = {k: np.array(v) for k, v in state.get("m", {}).items()}
        self._v = {k: np.array(v) for k, v in state.get("v", {}).items()}


def clip_gradients(grads: Dict[str, np.ndarray],
                   max_norm: Optional[float]) -> Dict[str, np.ndarray]:
    """Globally clip gradients to a maximum L2 norm (no-op if None)."""
    if max_norm is None:
        return grads
    total = np.sqrt(sum(float(np.sum(g ** 2)) for g in grads.values()))
    if total <= max_norm or total == 0.0:
        return grads
    scale = max_norm / total
    return {name: g * scale for name, g in grads.items()}
