"""Numpy neural-network substrate: layers, models, optimisers, distributions."""

from repro.nn.layers import ACTIVATIONS, Dense, ReLU, Tanh
from repro.nn.model import ActorCriticMLP
from repro.nn.optim import Adam, Optimizer, SGD, clip_gradients
from repro.nn.distributions import (
    Categorical,
    MultiCategorical,
    log_softmax,
    masked_logits,
    softmax,
)
from repro.nn.checkpoints import (
    TrainingCheckpoint,
    flatten_parameters,
    load_checkpoint,
    load_training_checkpoint,
    parameter_spec,
    save_checkpoint,
    unflatten_parameters,
)
from repro.nn.initializers import orthogonal, small_normal, xavier_uniform, zeros

__all__ = [
    "ACTIVATIONS",
    "Dense",
    "ReLU",
    "Tanh",
    "ActorCriticMLP",
    "Adam",
    "Optimizer",
    "SGD",
    "clip_gradients",
    "Categorical",
    "MultiCategorical",
    "log_softmax",
    "masked_logits",
    "softmax",
    "TrainingCheckpoint",
    "flatten_parameters",
    "load_checkpoint",
    "load_training_checkpoint",
    "parameter_spec",
    "save_checkpoint",
    "unflatten_parameters",
    "orthogonal",
    "small_normal",
    "xavier_uniform",
    "zeros",
]
