"""Categorical action distributions with masking and analytic gradients.

The PPO trainer needs, for each distribution: sampling, log-probability,
entropy, and the gradients of log-probability and entropy with respect to the
logits.  Implementing those analytically keeps the numpy backward pass simple
and exact:

* ``d log p(a) / d z = onehot(a) - softmax(z)``
* ``d H / d z_i = -p_i (log p_i + H)``

Invalid (masked) actions are handled by adding a large negative constant to
their logits, so their probability — and therefore their gradient — is zero.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

#: Logit offset applied to masked-out actions.
MASK_LOGIT = -1e9


def masked_logits(logits: np.ndarray, mask: Optional[np.ndarray]) -> np.ndarray:
    """Apply an action mask (1 = allowed, 0 = forbidden) to logits."""
    if mask is None:
        return logits
    mask = np.asarray(mask, dtype=bool)
    return np.where(mask, logits, MASK_LOGIT)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable log-softmax along the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax along the last axis."""
    return np.exp(log_softmax(logits))


class Categorical:
    """A batch of categorical distributions parameterised by logits."""

    def __init__(self, logits: np.ndarray,
                 mask: Optional[np.ndarray] = None) -> None:
        logits = np.asarray(logits, dtype=np.float64)
        if logits.ndim == 1:
            logits = logits[None, :]
        if mask is not None:
            mask = np.asarray(mask)
            if mask.ndim == 1:
                mask = mask[None, :]
        self.logits = masked_logits(logits, mask)
        self.log_probs = log_softmax(self.logits)
        self.probs = np.exp(self.log_probs)

    @property
    def batch_size(self) -> int:
        return self.logits.shape[0]

    @property
    def num_actions(self) -> int:
        return self.logits.shape[1]

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Sample one action per batch row using the Gumbel-max trick."""
        gumbel = rng.gumbel(size=self.logits.shape)
        return np.argmax(self.logits + gumbel, axis=-1)

    def mode(self) -> np.ndarray:
        """Most probable action per batch row."""
        return np.argmax(self.logits, axis=-1)

    def log_prob(self, actions: np.ndarray) -> np.ndarray:
        """Log probability of the given actions."""
        actions = np.asarray(actions, dtype=np.int64)
        return self.log_probs[np.arange(self.batch_size), actions]

    def entropy(self) -> np.ndarray:
        """Entropy per batch row, ignoring masked-out actions."""
        safe = np.where(self.probs > 0, self.log_probs, 0.0)
        return -(self.probs * safe).sum(axis=-1)

    def log_prob_grad(self, actions: np.ndarray) -> np.ndarray:
        """Gradient of log p(action) with respect to the logits."""
        actions = np.asarray(actions, dtype=np.int64)
        grad = -self.probs.copy()
        grad[np.arange(self.batch_size), actions] += 1.0
        return grad

    def entropy_grad(self) -> np.ndarray:
        """Gradient of the entropy with respect to the logits."""
        entropy = self.entropy()[:, None]
        safe_log = np.where(self.probs > 0, self.log_probs, 0.0)
        return -self.probs * (safe_log + entropy)

    def kl(self, other: "Categorical") -> np.ndarray:
        """KL divergence ``KL(self || other)`` per batch row."""
        safe = np.where(self.probs > 0, self.log_probs - other.log_probs, 0.0)
        return (self.probs * safe).sum(axis=-1)


class MultiCategorical:
    """A tuple of independent categorical components (the NeuroCuts action).

    The flat logits vector is split into per-component blocks; log-prob and
    entropy are sums over components and gradients are concatenated back in
    the flat layout the model produces.
    """

    def __init__(self, flat_logits: np.ndarray, sizes: Sequence[int],
                 masks: Optional[Sequence[Optional[np.ndarray]]] = None) -> None:
        flat_logits = np.asarray(flat_logits, dtype=np.float64)
        if flat_logits.ndim == 1:
            flat_logits = flat_logits[None, :]
        self.sizes = tuple(int(s) for s in sizes)
        if flat_logits.shape[1] != sum(self.sizes):
            raise ValueError(
                f"flat logits of width {flat_logits.shape[1]} do not match "
                f"component sizes {self.sizes}"
            )
        masks = masks or [None] * len(self.sizes)
        self.components: List[Categorical] = []
        start = 0
        for size, mask in zip(self.sizes, masks):
            block = flat_logits[:, start:start + size]
            self.components.append(Categorical(block, mask=mask))
            start += size

    @property
    def batch_size(self) -> int:
        return self.components[0].batch_size

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Sample a (batch, num_components) integer action array."""
        return np.stack([c.sample(rng) for c in self.components], axis=1)

    def mode(self) -> np.ndarray:
        return np.stack([c.mode() for c in self.components], axis=1)

    def log_prob(self, actions: np.ndarray) -> np.ndarray:
        actions = np.asarray(actions, dtype=np.int64)
        return sum(
            c.log_prob(actions[:, i]) for i, c in enumerate(self.components)
        )

    def entropy(self) -> np.ndarray:
        return sum(c.entropy() for c in self.components)

    def log_prob_grad(self, actions: np.ndarray) -> np.ndarray:
        """Gradient of total log-prob w.r.t. the flat logits."""
        actions = np.asarray(actions, dtype=np.int64)
        grads = [
            c.log_prob_grad(actions[:, i]) for i, c in enumerate(self.components)
        ]
        return np.concatenate(grads, axis=1)

    def entropy_grad(self) -> np.ndarray:
        """Gradient of total entropy w.r.t. the flat logits."""
        return np.concatenate([c.entropy_grad() for c in self.components], axis=1)

    def kl(self, other: "MultiCategorical") -> np.ndarray:
        return sum(c.kl(o) for c, o in zip(self.components, other.components))
