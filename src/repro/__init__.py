"""NeuroCuts reproduction: neural packet classification via deep RL.

This package is a self-contained reproduction of *Neural Packet
Classification* (Liang, Zhu, Jin, Stoica — SIGCOMM 2019).  It provides:

* :mod:`repro.rules` — packet classifier rules, packets, and matching.
* :mod:`repro.classbench` — ClassBench-style synthetic workload generation.
* :mod:`repro.tree` — the decision-tree engine shared by all algorithms.
* :mod:`repro.baselines` — HiCuts, HyperCuts, EffiCuts, CutSplit and more.
* :mod:`repro.nn` / :mod:`repro.rl` — a numpy neural-network and PPO substrate.
* :mod:`repro.neurocuts` — the NeuroCuts RL formulation, sharded rollout
  workers, and the actor/learner trainer.
* :mod:`repro.executors` — backend-pluggable task executors (serial /
  persistent process pools) shared by training and the harness.
* :mod:`repro.engine` — the compiled dataplane: flat-array trees, batched
  lookup, and the LRU flow cache.
* :mod:`repro.workloads` — serving workloads: flow traces with Zipf
  locality and bursty arrivals, multi-tenant scenarios, rule churn.
* :mod:`repro.serve` — the multi-tenant serving layer: tenant registry,
  micro-batching, and zero-downtime engine hot swaps.
* :mod:`repro.metrics` / :mod:`repro.harness` — evaluation metrics and the
  experiment harness used by the benchmark suite.
"""

from repro._version import __version__
from repro.rules import Dimension, Packet, Rule, RuleSet
from repro.tree import DecisionTree, Node
from repro.neurocuts import NeuroCutsConfig, NeuroCutsTrainer

__all__ = [
    "__version__",
    "Dimension",
    "Packet",
    "Rule",
    "RuleSet",
    "DecisionTree",
    "Node",
    "NeuroCutsConfig",
    "NeuroCutsTrainer",
]
