"""Packet header field (dimension) definitions.

Packet classification in this paper is five-dimensional: source and
destination IPv4 addresses, source and destination transport ports, and the
IP protocol number.  Every rule and every tree node is described by one
half-open integer range ``[lo, hi)`` per dimension.

The half-open convention matches the reference NeuroCuts implementation and
makes equal-size cuts exact: cutting ``[0, 2**32)`` into four pieces yields
four ranges that tile the space with no off-by-one adjustments.
"""

from __future__ import annotations

import enum
from typing import Tuple

from repro.exceptions import InvalidRangeError


class Dimension(enum.IntEnum):
    """The five packet header dimensions, in canonical order."""

    SRC_IP = 0
    DST_IP = 1
    SRC_PORT = 2
    DST_PORT = 3
    PROTOCOL = 4

    @property
    def bits(self) -> int:
        """Number of bits in this field."""
        return FIELD_BITS[self]

    @property
    def size(self) -> int:
        """Number of distinct values in this field (``2 ** bits``)."""
        return 1 << FIELD_BITS[self]


#: Number of dimensions used for classification (d = 5 in the paper).
NUM_DIMENSIONS = 5

#: Bit width of each dimension.
FIELD_BITS = {
    Dimension.SRC_IP: 32,
    Dimension.DST_IP: 32,
    Dimension.SRC_PORT: 16,
    Dimension.DST_PORT: 16,
    Dimension.PROTOCOL: 8,
}

#: The full half-open range covered by each dimension.
FIELD_RANGES: dict[Dimension, Tuple[int, int]] = {
    dim: (0, 1 << bits) for dim, bits in FIELD_BITS.items()
}

#: Tuple of all dimensions in canonical order, for iteration.
DIMENSIONS: Tuple[Dimension, ...] = tuple(Dimension)

#: The full 5-dimensional space as a tuple of ranges (used for tree roots).
FULL_SPACE: Tuple[Tuple[int, int], ...] = tuple(FIELD_RANGES[d] for d in DIMENSIONS)

Range = Tuple[int, int]
Ranges = Tuple[Range, ...]


def validate_range(dim: Dimension, lo: int, hi: int) -> Range:
    """Validate a half-open range for ``dim`` and return it as a tuple.

    Raises:
        InvalidRangeError: if ``lo >= hi`` or the range exceeds field bounds.
    """
    field_lo, field_hi = FIELD_RANGES[dim]
    if lo >= hi:
        raise InvalidRangeError(
            f"empty range [{lo}, {hi}) for dimension {dim.name}"
        )
    if lo < field_lo or hi > field_hi:
        raise InvalidRangeError(
            f"range [{lo}, {hi}) out of bounds for dimension {dim.name}: "
            f"allowed [{field_lo}, {field_hi})"
        )
    return (int(lo), int(hi))


def prefix_to_range(value: int, prefix_len: int, bits: int = 32) -> Range:
    """Convert a prefix match (``value/prefix_len``) to a half-open range.

    Args:
        value: the (already masked or unmasked) field value.
        prefix_len: number of leading bits that must match.
        bits: total bit width of the field.

    Returns:
        The half-open range of values matching the prefix.
    """
    if not 0 <= prefix_len <= bits:
        raise InvalidRangeError(
            f"prefix length {prefix_len} out of bounds for {bits}-bit field"
        )
    span = 1 << (bits - prefix_len)
    lo = (value >> (bits - prefix_len) << (bits - prefix_len)) if prefix_len else 0
    return (lo, lo + span)


def range_to_prefix(lo: int, hi: int, bits: int = 32) -> Tuple[int, int]:
    """Convert a half-open range back to a ``(value, prefix_len)`` pair.

    Only ranges that are exactly expressible as a single prefix are accepted.

    Raises:
        InvalidRangeError: if the range is not a power-of-two aligned block.
    """
    span = hi - lo
    if span <= 0 or span & (span - 1):
        raise InvalidRangeError(f"range [{lo}, {hi}) is not a prefix block")
    prefix_len = bits - span.bit_length() + 1
    if lo & (span - 1):
        raise InvalidRangeError(f"range [{lo}, {hi}) is not prefix aligned")
    return lo, prefix_len


def ip_to_int(text: str) -> int:
    """Parse a dotted-quad IPv4 address into an integer."""
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise InvalidRangeError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise InvalidRangeError(f"malformed IPv4 address: {text!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format an integer as a dotted-quad IPv4 address."""
    if not 0 <= value < (1 << 32):
        raise InvalidRangeError(f"IPv4 value out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def range_overlap(a: Range, b: Range) -> bool:
    """Return True if two half-open ranges intersect."""
    return a[0] < b[1] and b[0] < a[1]


def range_contains(outer: Range, inner: Range) -> bool:
    """Return True if ``outer`` fully contains ``inner``."""
    return outer[0] <= inner[0] and inner[1] <= outer[1]


def range_intersection(a: Range, b: Range) -> Range | None:
    """Return the intersection of two half-open ranges, or None if disjoint."""
    lo = max(a[0], b[0])
    hi = min(a[1], b[1])
    if lo >= hi:
        return None
    return (lo, hi)
