"""Rules, packets, and classifier containers."""

from repro.rules.fields import (
    DIMENSIONS,
    FIELD_BITS,
    FIELD_RANGES,
    FULL_SPACE,
    NUM_DIMENSIONS,
    Dimension,
    Range,
    Ranges,
    int_to_ip,
    ip_to_int,
    prefix_to_range,
    range_contains,
    range_intersection,
    range_overlap,
    range_to_prefix,
    validate_range,
)
from repro.rules.packet import Packet
from repro.rules.rule import Rule, format_prefix, highest_priority, parse_prefix
from repro.rules.ruleset import RuleSet, RuleSetStats
from repro.rules import io

__all__ = [
    "DIMENSIONS",
    "FIELD_BITS",
    "FIELD_RANGES",
    "FULL_SPACE",
    "NUM_DIMENSIONS",
    "Dimension",
    "Range",
    "Ranges",
    "int_to_ip",
    "ip_to_int",
    "prefix_to_range",
    "range_contains",
    "range_intersection",
    "range_overlap",
    "range_to_prefix",
    "validate_range",
    "Packet",
    "Rule",
    "RuleSet",
    "RuleSetStats",
    "format_prefix",
    "parse_prefix",
    "highest_priority",
    "io",
]
