"""Rule-set container: an ordered packet classifier.

A :class:`RuleSet` is the classifier the paper's Figure 1 shows: a list of
rules, each with a priority, where the highest-priority matching rule is the
classification result.  The linear scan implemented here is the ground truth
against which every decision tree is validated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.exceptions import RuleFormatError
from repro.rules.fields import DIMENSIONS, FIELD_RANGES, Dimension, Range
from repro.rules.packet import Packet
from repro.rules.rule import Rule


@dataclass
class RuleSetStats:
    """Summary statistics of a classifier's geometry.

    Attributes:
        num_rules: number of rules in the classifier.
        wildcard_fraction: per-dimension fraction of rules that are full
            wildcards in that dimension.
        mean_coverage: per-dimension mean coverage fraction.
        distinct_ranges: per-dimension count of distinct (lo, hi) ranges.
    """

    num_rules: int
    wildcard_fraction: Dict[Dimension, float]
    mean_coverage: Dict[Dimension, float]
    distinct_ranges: Dict[Dimension, int]


class RuleSet:
    """An ordered collection of rules forming a packet classifier.

    Rules are stored highest-priority first.  If the rules supplied do not
    carry distinct priorities, priorities are assigned from list order (first
    rule wins), which is the usual convention for ClassBench filter files.
    """

    def __init__(self, rules: Sequence[Rule], name: str = "", *,
                 reassign_priorities: bool = False) -> None:
        rules = list(rules)
        if not rules:
            raise RuleFormatError("a classifier must contain at least one rule")
        if reassign_priorities or len({r.priority for r in rules}) != len(rules):
            rules = [
                Rule(ranges=r.ranges, priority=len(rules) - i, name=r.name or f"r{i}")
                for i, r in enumerate(rules)
            ]
        self._rules: List[Rule] = sorted(rules, key=lambda r: -r.priority)
        self.name = name

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __getitem__(self, index: int) -> Rule:
        return self._rules[index]

    def __contains__(self, rule: Rule) -> bool:
        return rule in self._rules

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RuleSet):
            return NotImplemented
        return self._rules == other._rules

    def __repr__(self) -> str:
        return f"RuleSet(name={self.name!r}, num_rules={len(self)})"

    @property
    def rules(self) -> List[Rule]:
        """The rules, highest priority first (copy-free view)."""
        return self._rules

    # ------------------------------------------------------------------ #
    # Classification (ground truth)
    # ------------------------------------------------------------------ #

    def classify(self, packet: Packet) -> Optional[Rule]:
        """Linear-scan classification: the highest-priority matching rule."""
        for rule in self._rules:
            if rule.matches(packet):
                return rule
        return None

    def matching_rules(self, packet: Packet) -> List[Rule]:
        """All rules matching the packet, highest priority first."""
        return [rule for rule in self._rules if rule.matches(packet)]

    # ------------------------------------------------------------------ #
    # Editing (classifier updates, Section 4.2 "Handling classifier updates")
    # ------------------------------------------------------------------ #

    def with_rules_added(self, new_rules: Iterable[Rule]) -> "RuleSet":
        """Return a new classifier with additional rules.

        If every rule (old and new) carries a distinct priority the
        priorities are preserved, so callers can insert high-priority rules;
        otherwise priorities are reassigned from list order with the new
        rules ranked lowest.
        """
        combined = list(self._rules) + list(new_rules)
        distinct = len({r.priority for r in combined}) == len(combined)
        return RuleSet(combined, name=self.name,
                       reassign_priorities=not distinct)

    def with_rules_removed(self, to_remove: Iterable[Rule]) -> "RuleSet":
        """Return a new classifier with the given rules removed."""
        removal = set(to_remove)
        remaining = [r for r in self._rules if r not in removal]
        if not remaining:
            raise RuleFormatError("cannot remove every rule from a classifier")
        return RuleSet(remaining, name=self.name)

    # ------------------------------------------------------------------ #
    # Sampling and statistics
    # ------------------------------------------------------------------ #

    def sample_matching_packet(self, rule: Rule,
                               rng: Optional[random.Random] = None) -> Packet:
        """Sample a packet uniformly from one rule's hypercube."""
        rng = rng or random.Random()
        values = tuple(rng.randrange(lo, hi) for lo, hi in rule.ranges)
        return Packet.from_values(values)

    def sample_packets(self, count: int, seed: Optional[int] = None,
                       rule_bias: float = 0.9) -> List[Packet]:
        """Sample a packet trace.

        With probability ``rule_bias`` a packet is drawn from a random rule's
        hypercube (so it hits real rules, like ClassBench's trace generator);
        otherwise it is drawn uniformly from the full space.
        """
        rng = random.Random(seed)
        packets = []
        for _ in range(count):
            if rng.random() < rule_bias:
                rule = rng.choice(self._rules)
                packets.append(self.sample_matching_packet(rule, rng))
            else:
                values = tuple(rng.randrange(lo, hi)
                               for lo, hi in (FIELD_RANGES[d] for d in DIMENSIONS))
                packets.append(Packet.from_values(values))
        return packets

    def stats(self) -> RuleSetStats:
        """Compute per-dimension geometry statistics for this classifier."""
        wildcard = {}
        coverage = {}
        distinct = {}
        for dim in DIMENSIONS:
            wc = sum(1 for r in self._rules if r.is_wildcard(dim))
            wildcard[dim] = wc / len(self._rules)
            coverage[dim] = float(
                np.mean([r.coverage_fraction(dim) for r in self._rules])
            )
            distinct[dim] = len({r.range_for(dim) for r in self._rules})
        return RuleSetStats(
            num_rules=len(self._rules),
            wildcard_fraction=wildcard,
            mean_coverage=coverage,
            distinct_ranges=distinct,
        )

    def distinct_ranges(self, dim: Dimension | int) -> List[Range]:
        """Sorted distinct ranges present along one dimension."""
        return sorted({r.range_for(dim) for r in self._rules})

    def subset(self, count: int, seed: Optional[int] = None) -> "RuleSet":
        """Return a random subset of the classifier with ``count`` rules."""
        if count >= len(self._rules):
            return RuleSet(self._rules, name=self.name)
        rng = random.Random(seed)
        chosen = rng.sample(self._rules, count)
        return RuleSet(chosen, name=f"{self.name}_subset{count}")

    def has_default_rule(self) -> bool:
        """Return True if some rule matches every possible packet."""
        full = tuple(FIELD_RANGES[d] for d in DIMENSIONS)
        return any(r.ranges == full for r in self._rules)

    def with_default_rule(self) -> "RuleSet":
        """Return a classifier guaranteed to match every packet."""
        if self.has_default_rule():
            return self
        lowest = min(r.priority for r in self._rules)
        default = Rule.wildcard(priority=lowest - 1, name="default")
        return RuleSet(list(self._rules) + [default], name=self.name)
