"""Packet header representation.

A packet, for classification purposes, is just the 5-tuple of header values
the classifier examines: source IP, destination IP, source port, destination
port, and protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.exceptions import InvalidRangeError
from repro.rules.fields import (
    DIMENSIONS,
    FIELD_RANGES,
    Dimension,
    int_to_ip,
    ip_to_int,
)


@dataclass(frozen=True)
class Packet:
    """An immutable 5-tuple packet header.

    Attributes:
        src_ip: 32-bit source IPv4 address as an integer.
        dst_ip: 32-bit destination IPv4 address as an integer.
        src_port: 16-bit source port.
        dst_port: 16-bit destination port.
        protocol: 8-bit IP protocol number.
    """

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int

    def __post_init__(self) -> None:
        for dim, value in zip(DIMENSIONS, self.as_tuple()):
            lo, hi = FIELD_RANGES[dim]
            if not lo <= value < hi:
                raise InvalidRangeError(
                    f"packet field {dim.name}={value} out of range [{lo}, {hi})"
                )

    def as_tuple(self) -> Tuple[int, int, int, int, int]:
        """Return the header values in canonical dimension order."""
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.protocol)

    def __iter__(self) -> Iterator[int]:
        return iter(self.as_tuple())

    def __getitem__(self, dim: Dimension | int) -> int:
        return self.as_tuple()[int(dim)]

    @classmethod
    def from_values(cls, values: Tuple[int, ...]) -> "Packet":
        """Build a packet from a 5-element tuple in canonical order."""
        if len(values) != len(DIMENSIONS):
            raise InvalidRangeError(
                f"expected {len(DIMENSIONS)} header values, got {len(values)}"
            )
        return cls(*[int(v) for v in values])

    @classmethod
    def from_strings(
        cls,
        src_ip: str,
        dst_ip: str,
        src_port: int,
        dst_port: int,
        protocol: int,
    ) -> "Packet":
        """Build a packet from dotted-quad IP strings and integer fields."""
        return cls(ip_to_int(src_ip), ip_to_int(dst_ip), src_port, dst_port, protocol)

    def pretty(self) -> str:
        """Human-readable representation with dotted-quad addresses."""
        return (
            f"{int_to_ip(self.src_ip)} -> {int_to_ip(self.dst_ip)} "
            f"sport={self.src_port} dport={self.dst_port} proto={self.protocol}"
        )
