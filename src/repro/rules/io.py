"""ClassBench filter-file I/O.

ClassBench filter files (the ``@`` format) look like::

    @192.168.0.0/16  10.0.0.0/8  0 : 65535  80 : 80  0x06/0xFF

with one rule per line: source prefix, destination prefix, source port range,
destination port range, and protocol value/mask.  Rules appear highest
priority first.  This module parses and emits that format so externally
generated ClassBench rule sets can be loaded directly.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, List, Union

from repro.exceptions import RuleFormatError
from repro.rules.fields import Dimension, FIELD_RANGES
from repro.rules.rule import Rule, parse_prefix
from repro.rules.ruleset import RuleSet

_PORT_RANGE_RE = re.compile(r"^\s*(\d+)\s*:\s*(\d+)\s*$")
_PROTO_RE = re.compile(r"^\s*(0x[0-9a-fA-F]+|\d+)\s*/\s*(0x[0-9a-fA-F]+|\d+)\s*$")


def parse_rule_line(line: str, priority: int = 0, name: str = "") -> Rule:
    """Parse one ClassBench filter line into a :class:`Rule`.

    Trailing extra fields (some ClassBench variants append flags) are ignored.
    """
    text = line.strip()
    if text.startswith("@"):
        text = text[1:]
    fields = [f for f in re.split(r"\t+|\s{2,}", text) if f.strip()]
    if len(fields) < 5:
        # Fall back to whitespace-splitting into positional tokens.
        tokens = text.split()
        if len(tokens) < 9:
            raise RuleFormatError(f"malformed ClassBench rule line: {line!r}")
        fields = [
            tokens[0],
            tokens[1],
            f"{tokens[2]} : {tokens[4]}",
            f"{tokens[5]} : {tokens[7]}",
            tokens[8],
        ]

    src_prefix, dst_prefix, sport_text, dport_text, proto_text = fields[:5]

    src_ip = parse_prefix(src_prefix, bits=32)
    dst_ip = parse_prefix(dst_prefix, bits=32)
    src_port = _parse_port_range(sport_text)
    dst_port = _parse_port_range(dport_text)
    protocol = _parse_protocol(proto_text)

    return Rule(
        ranges=(src_ip, dst_ip, src_port, dst_port, protocol),
        priority=priority,
        name=name,
    )


def _parse_port_range(text: str):
    match = _PORT_RANGE_RE.match(text)
    if not match:
        raise RuleFormatError(f"malformed port range: {text!r}")
    lo, hi = int(match.group(1)), int(match.group(2))
    if hi < lo:
        raise RuleFormatError(f"inverted port range: {text!r}")
    return (lo, hi + 1)


def _parse_protocol(text: str):
    match = _PROTO_RE.match(text)
    if not match:
        raise RuleFormatError(f"malformed protocol field: {text!r}")
    value = int(match.group(1), 0)
    mask = int(match.group(2), 0)
    if mask == 0:
        return FIELD_RANGES[Dimension.PROTOCOL]
    return (value & 0xFF, (value & 0xFF) + 1)


def loads(text: str, name: str = "") -> RuleSet:
    """Parse a whole ClassBench filter file from a string."""
    lines = [ln for ln in text.splitlines() if ln.strip() and not ln.startswith("#")]
    if not lines:
        raise RuleFormatError("rule file contains no rules")
    rules = [
        parse_rule_line(line, priority=len(lines) - i, name=f"r{i}")
        for i, line in enumerate(lines)
    ]
    return RuleSet(rules, name=name)


def load(path: Union[str, Path]) -> RuleSet:
    """Load a ClassBench filter file from disk."""
    path = Path(path)
    return loads(path.read_text(), name=path.stem)


def dumps(ruleset: RuleSet) -> str:
    """Serialise a classifier to ClassBench filter-file text."""
    return "\n".join(rule.to_classbench() for rule in ruleset) + "\n"


def dump(ruleset: RuleSet, path: Union[str, Path]) -> None:
    """Write a classifier to disk in ClassBench filter-file format."""
    Path(path).write_text(dumps(ruleset))


def load_many(paths: Iterable[Union[str, Path]]) -> List[RuleSet]:
    """Load several filter files, preserving order."""
    return [load(p) for p in paths]
