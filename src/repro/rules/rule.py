"""Classifier rule representation and geometric helpers.

A rule is a hypercube in the 5-dimensional header space: one half-open range
per dimension, plus a priority used to break ties when a packet matches more
than one rule.  Higher priority wins, matching the paper's convention
(Figure 1 lists rules from highest to lowest priority).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

from repro.exceptions import InvalidRangeError, RuleFormatError
from repro.rules.fields import (
    DIMENSIONS,
    FIELD_BITS,
    FIELD_RANGES,
    Dimension,
    Range,
    Ranges,
    int_to_ip,
    ip_to_int,
    prefix_to_range,
    range_contains,
    range_intersection,
    range_overlap,
    validate_range,
)
from repro.rules.packet import Packet


@dataclass(frozen=True)
class Rule:
    """A single classifier rule.

    Attributes:
        ranges: one half-open ``(lo, hi)`` range per dimension, in canonical
            order (SrcIP, DstIP, SrcPort, DstPort, Protocol).
        priority: tie-breaking priority; higher values win.
        name: optional human-readable label (e.g. its line in a rule file).
    """

    ranges: Ranges
    priority: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        if len(self.ranges) != len(DIMENSIONS):
            raise RuleFormatError(
                f"rule must have {len(DIMENSIONS)} ranges, got {len(self.ranges)}"
            )
        normalized = tuple(
            validate_range(dim, lo, hi)
            for dim, (lo, hi) in zip(DIMENSIONS, self.ranges)
        )
        object.__setattr__(self, "ranges", normalized)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_fields(
        cls,
        src_ip: Range | None = None,
        dst_ip: Range | None = None,
        src_port: Range | None = None,
        dst_port: Range | None = None,
        protocol: Range | None = None,
        priority: int = 0,
        name: str = "",
    ) -> "Rule":
        """Build a rule from per-field ranges; ``None`` means wildcard."""
        defaults = [FIELD_RANGES[d] for d in DIMENSIONS]
        explicit = [src_ip, dst_ip, src_port, dst_port, protocol]
        ranges = tuple(
            rng if rng is not None else default
            for rng, default in zip(explicit, defaults)
        )
        return cls(ranges=ranges, priority=priority, name=name)

    @classmethod
    def from_prefixes(
        cls,
        src_ip: str = "0.0.0.0/0",
        dst_ip: str = "0.0.0.0/0",
        src_port: Range | None = None,
        dst_port: Range | None = None,
        protocol: Optional[int] = None,
        priority: int = 0,
        name: str = "",
    ) -> "Rule":
        """Build a rule from CIDR prefixes, port ranges and a protocol number."""
        sip = parse_prefix(src_ip, bits=32)
        dip = parse_prefix(dst_ip, bits=32)
        proto: Range | None
        if protocol is None:
            proto = None
        else:
            proto = (protocol, protocol + 1)
        return cls.from_fields(
            src_ip=sip,
            dst_ip=dip,
            src_port=src_port,
            dst_port=dst_port,
            protocol=proto,
            priority=priority,
            name=name,
        )

    @classmethod
    def wildcard(cls, priority: int = 0, name: str = "default") -> "Rule":
        """The default match-everything rule (last resort in a classifier)."""
        return cls(ranges=tuple(FIELD_RANGES[d] for d in DIMENSIONS),
                   priority=priority, name=name)

    # ------------------------------------------------------------------ #
    # Matching and geometry
    # ------------------------------------------------------------------ #

    def matches(self, packet: Packet) -> bool:
        """Return True if the packet's header falls inside every range."""
        for value, (lo, hi) in zip(packet.as_tuple(), self.ranges):
            if not lo <= value < hi:
                return False
        return True

    def range_for(self, dim: Dimension | int) -> Range:
        """Return this rule's range for one dimension."""
        return self.ranges[int(dim)]

    def intersects(self, ranges: Sequence[Range]) -> bool:
        """Return True if the rule's hypercube intersects the given box."""
        for mine, other in zip(self.ranges, ranges):
            if not range_overlap(mine, other):
                return False
        return True

    def is_covered_by(self, ranges: Sequence[Range]) -> bool:
        """Return True if the rule's hypercube lies entirely inside the box."""
        for mine, other in zip(self.ranges, ranges):
            if not range_contains(other, mine):
                return False
        return True

    def covers(self, other: "Rule") -> bool:
        """Return True if this rule's hypercube fully contains ``other``'s."""
        return other.is_covered_by(self.ranges)

    def clip_to(self, ranges: Sequence[Range]) -> Optional["Rule"]:
        """Return a copy of this rule clipped to a box, or None if disjoint."""
        clipped = []
        for mine, other in zip(self.ranges, ranges):
            inter = range_intersection(mine, other)
            if inter is None:
                return None
            clipped.append(inter)
        return Rule(ranges=tuple(clipped), priority=self.priority, name=self.name)

    def span(self, dim: Dimension | int) -> int:
        """Number of values this rule covers along one dimension."""
        lo, hi = self.ranges[int(dim)]
        return hi - lo

    def coverage_fraction(self, dim: Dimension | int) -> float:
        """Fraction of the full field range this rule covers along ``dim``.

        EffiCuts calls a rule "large" in a dimension when this fraction
        exceeds a threshold (0.5 in the original paper).
        """
        dim = Dimension(int(dim))
        return self.span(dim) / dim.size

    def is_wildcard(self, dim: Dimension | int) -> bool:
        """Return True if the rule covers the whole field along ``dim``."""
        return self.ranges[int(dim)] == FIELD_RANGES[Dimension(int(dim))]

    def num_wildcard_dims(self) -> int:
        """Number of dimensions in which the rule is a full wildcard."""
        return sum(1 for d in DIMENSIONS if self.is_wildcard(d))

    def overlaps(self, other: "Rule") -> bool:
        """Return True if the two rules' hypercubes intersect."""
        return self.intersects(other.ranges)

    # ------------------------------------------------------------------ #
    # Formatting
    # ------------------------------------------------------------------ #

    def to_classbench(self) -> str:
        """Format as a ClassBench filter-file line (without priority)."""
        sip = format_prefix(self.ranges[Dimension.SRC_IP], bits=32)
        dip = format_prefix(self.ranges[Dimension.DST_IP], bits=32)
        sp_lo, sp_hi = self.ranges[Dimension.SRC_PORT]
        dp_lo, dp_hi = self.ranges[Dimension.DST_PORT]
        pr_lo, pr_hi = self.ranges[Dimension.PROTOCOL]
        if pr_hi - pr_lo == 1:
            proto = f"0x{pr_lo:02x}/0xff"
        elif (pr_lo, pr_hi) == FIELD_RANGES[Dimension.PROTOCOL]:
            proto = "0x00/0x00"
        else:
            # Non-prefix protocol ranges are rare; emit lo with a zero mask.
            proto = "0x00/0x00"
        return (
            f"@{sip}\t{dip}\t{sp_lo} : {sp_hi - 1}\t{dp_lo} : {dp_hi - 1}\t{proto}"
        )

    def pretty(self) -> str:
        """Human readable multi-field description."""
        parts = []
        for dim in DIMENSIONS:
            lo, hi = self.ranges[dim]
            if self.is_wildcard(dim):
                parts.append(f"{dim.name}=*")
            elif dim in (Dimension.SRC_IP, Dimension.DST_IP):
                parts.append(f"{dim.name}={int_to_ip(lo)}-{int_to_ip(hi - 1)}")
            else:
                parts.append(f"{dim.name}=[{lo},{hi})")
        return f"Rule(prio={self.priority}, " + ", ".join(parts) + ")"


def parse_prefix(text: str, bits: int = 32) -> Range:
    """Parse ``a.b.c.d/len`` (or a bare address) into a half-open range."""
    text = text.strip()
    if "/" in text:
        addr, _, plen_text = text.partition("/")
        prefix_len = int(plen_text)
    else:
        addr, prefix_len = text, bits
    value = ip_to_int(addr)
    return prefix_to_range(value, prefix_len, bits=bits)


def format_prefix(rng: Range, bits: int = 32) -> str:
    """Format a half-open range as the smallest covering CIDR prefix."""
    lo, hi = rng
    span = hi - lo
    if span & (span - 1) == 0 and lo % span == 0:
        prefix_len = bits - (span.bit_length() - 1)
    else:
        # Not prefix-expressible; fall back to the covering /0 block.
        prefix_len = 0
        lo = 0
    return f"{int_to_ip(lo)}/{prefix_len}"


def highest_priority(rules: Iterable[Rule]) -> Optional[Rule]:
    """Return the highest-priority rule in an iterable, or None if empty."""
    best: Optional[Rule] = None
    for rule in rules:
        if best is None or rule.priority > best.priority:
            best = rule
    return best
