"""Evaluation metrics: analytic improvements and empirical trace measurements."""

from repro.metrics.summary import (
    ImprovementSummary,
    best_baseline,
    improvement,
    median_by_algorithm,
    sorted_improvements,
    speedup,
    summarize_improvements,
)
from repro.metrics.empirical import EmpiricalMetrics, measure_lookup

__all__ = [
    "ImprovementSummary",
    "best_baseline",
    "improvement",
    "median_by_algorithm",
    "sorted_improvements",
    "speedup",
    "summarize_improvements",
    "EmpiricalMetrics",
    "measure_lookup",
]
