"""Empirical (trace-driven) classification metrics.

The paper's headline metrics are analytic: worst-case tree depth and bytes
per rule.  For completeness the library also measures *observed* behaviour
when a classifier processes a packet trace: average and tail lookup depth,
and throughput of the Python implementation (useful for the microbenchmarks,
not comparable to line-rate hardware numbers).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.rules.packet import Packet
from repro.tree.lookup import TreeClassifier


@dataclass(frozen=True)
class EmpiricalMetrics:
    """Observed lookup statistics for one classifier over one trace."""

    num_packets: int
    mean_depth: float
    p50_depth: float
    p99_depth: float
    max_depth: int
    lookups_per_second: float

    def as_dict(self) -> dict:
        return {
            "num_packets": self.num_packets,
            "mean_depth": self.mean_depth,
            "p50_depth": self.p50_depth,
            "p99_depth": self.p99_depth,
            "max_depth": self.max_depth,
            "lookups_per_second": self.lookups_per_second,
        }


def measure_lookup(classifier: TreeClassifier,
                   packets: Sequence[Packet]) -> EmpiricalMetrics:
    """Classify a trace, recording visited-node depth per packet and timing."""
    if not packets:
        raise ValueError("cannot measure over an empty trace")
    depths: List[int] = []
    start = time.perf_counter()
    for packet in packets:
        total_depth = 0
        for tree in classifier.trees:
            _, depth = tree.classify_with_depth(packet)
            total_depth += depth
        depths.append(total_depth)
    elapsed = time.perf_counter() - start
    arr = np.array(depths)
    return EmpiricalMetrics(
        num_packets=len(packets),
        mean_depth=float(arr.mean()),
        p50_depth=float(np.percentile(arr, 50)),
        p99_depth=float(np.percentile(arr, 99)),
        max_depth=int(arr.max()),
        lookups_per_second=len(packets) / elapsed if elapsed > 0 else float("inf"),
    )
