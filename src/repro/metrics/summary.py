"""Improvement statistics used throughout the evaluation section.

The paper reports comparisons as relative improvements ``1 - a/b`` (Figure
10's y-axis), medians/means over the 36-classifier suite, and "better than
the minimum of all baselines in X % of cases".  These helpers compute those
aggregates from per-classifier result dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.obs.serialize import stable_dict


def improvement(ours: float, baseline: float) -> float:
    """Relative improvement ``1 - ours/baseline`` (positive = we are better)."""
    if baseline == 0:
        return 0.0
    return 1.0 - (ours / baseline)


def speedup(baseline: float, ours: float) -> float:
    """Multiplicative factor ``baseline / ours`` (>1 means we are better)."""
    if ours == 0:
        return float("inf")
    return baseline / ours


@dataclass(frozen=True)
class ImprovementSummary:
    """Aggregate improvement of one algorithm over another across a suite."""

    median: float
    mean: float
    best: float
    worst: float
    win_fraction: float
    per_classifier: Dict[str, float]

    def as_dict(self) -> Dict[str, float]:
        return stable_dict({
            "median": self.median,
            "mean": self.mean,
            "best": self.best,
            "worst": self.worst,
            "win_fraction": self.win_fraction,
        })


def summarize_improvements(ours: Mapping[str, float],
                           baseline: Mapping[str, float]) -> ImprovementSummary:
    """Per-classifier improvements of ``ours`` over ``baseline`` and aggregates.

    Both mappings are keyed by classifier label; only shared keys are used.
    """
    shared = sorted(set(ours) & set(baseline))
    if not shared:
        raise ValueError("no shared classifiers between the two result sets")
    per = {label: improvement(ours[label], baseline[label]) for label in shared}
    values = np.array(list(per.values()))
    return ImprovementSummary(
        median=float(np.median(values)),
        mean=float(np.mean(values)),
        best=float(np.max(values)),
        worst=float(np.min(values)),
        win_fraction=float(np.mean(values > 0)),
        per_classifier=per,
    )


def best_baseline(per_algorithm: Mapping[str, Mapping[str, float]],
                  exclude: Sequence[str] = ()) -> Dict[str, float]:
    """Per-classifier minimum over all (non-excluded) algorithms.

    This is the "minimum of all baselines" comparison of Section 6.1.
    """
    algorithms = [name for name in per_algorithm if name not in exclude]
    if not algorithms:
        raise ValueError("no algorithms left after exclusion")
    labels = set(per_algorithm[algorithms[0]])
    for name in algorithms[1:]:
        labels &= set(per_algorithm[name])
    return {
        label: min(per_algorithm[name][label] for name in algorithms)
        for label in sorted(labels)
    }


def median_by_algorithm(per_algorithm: Mapping[str, Mapping[str, float]]
                        ) -> Dict[str, float]:
    """Median metric value per algorithm across classifiers."""
    return {
        name: float(np.median(list(values.values())))
        for name, values in per_algorithm.items()
    }


def sorted_improvements(per_classifier: Mapping[str, float]) -> List[float]:
    """Improvements sorted ascending — the x-order of Figure 10's ranking plots."""
    return sorted(per_classifier.values())
