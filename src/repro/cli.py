"""Command-line interface.

The subcommands cover the library's day-to-day workflows without writing
Python (full reference with copy-pasteable invocations: docs/cli.md):

* ``repro generate`` — emit a ClassBench-style filter file for a seed family.
* ``repro compare``  — build a rule file with every baseline (and optionally
  NeuroCuts) and print the time/space comparison.
* ``repro train``    — train NeuroCuts on a rule file and save the best tree
  as JSON.
* ``repro classify`` — classify packets from a trace against a saved tree.
* ``repro engine-bench`` — compile a classifier for the dataplane engine and
  measure packets/sec against the interpreter.
* ``repro serve-bench`` — drive the multi-tenant serving layer with a
  generated flow workload (Zipf locality, bursty arrivals, optional rule
  churn with zero-downtime engine hot swaps) and report pps, latency
  percentiles, cache hit rate, and swap telemetry.  ``--retrain-threshold``
  arms the retrain-on-churn loop (background NeuroCuts retrains swap in new
  trees mid-run) and ``--serving-workers`` shards tenants across serving
  processes with merged telemetry.

Run ``python -m repro.cli --help`` (or the installed ``repro`` script) for
details.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.baselines import default_baselines
from repro.classbench import generate_classifier, generate_trace, seed_names
from repro.executors import EXECUTOR_BACKENDS
from repro.neurocuts import NeuroCutsConfig, NeuroCutsTrainer
from repro.rules import io as rules_io
from repro.tree import load_tree, save_tree, validate_classifier
from repro.harness import format_table


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NeuroCuts packet classification toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    gen = subparsers.add_parser(
        "generate", help="generate a ClassBench-style rule file"
    )
    gen.add_argument("--seed-family", choices=sorted(seed_names()),
                     default="acl1", help="ClassBench seed family")
    gen.add_argument("--num-rules", type=int, default=1000)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--output", type=Path, required=True,
                     help="path of the filter file to write")

    compare = subparsers.add_parser(
        "compare", help="compare baseline algorithms on a rule file"
    )
    compare.add_argument("rules", type=Path, help="ClassBench filter file")
    compare.add_argument("--binth", type=int, default=16,
                         help="rules per terminal leaf")
    compare.add_argument("--with-neurocuts", action="store_true",
                         help="also train NeuroCuts (slower)")
    compare.add_argument("--timesteps", type=int, default=12_000,
                         help="NeuroCuts training budget")

    train = subparsers.add_parser(
        "train", help="train NeuroCuts on a rule file and save the best tree"
    )
    train.add_argument("rules", type=Path, help="ClassBench filter file")
    train.add_argument("--output", type=Path, required=True,
                       help="path of the tree JSON to write")
    train.add_argument("--timesteps", type=int, default=20_000)
    train.add_argument("--coefficient", type=float, default=1.0,
                       help="time-space coefficient c in [0, 1]")
    train.add_argument("--partition-mode", default="none",
                       choices=("none", "simple", "efficuts"))
    train.add_argument("--leaf-threshold", type=int, default=16)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--workers", type=int, default=1,
                       help="rollout workers collecting experience shards in "
                            "parallel (1 = serial collection)")

    classify = subparsers.add_parser(
        "classify", help="classify sampled packets against a saved tree"
    )
    classify.add_argument("rules", type=Path, help="ClassBench filter file")
    classify.add_argument("tree", type=Path, help="tree JSON from `repro train`")
    classify.add_argument("--num-packets", type=int, default=1000)
    classify.add_argument("--seed", type=int, default=0)

    bench = subparsers.add_parser(
        "engine-bench",
        help="benchmark compiled-engine throughput vs the interpreter",
    )
    bench.add_argument("--rules", type=Path, default=None,
                       help="ClassBench filter file (default: generate one)")
    bench.add_argument("--seed-family", choices=sorted(seed_names()),
                       default="acl1", help="seed family when generating")
    bench.add_argument("--num-rules", type=int, default=500)
    bench.add_argument("--algorithm", default="HiCuts",
                       help="builder to benchmark (default HiCuts)")
    bench.add_argument("--num-packets", type=int, default=50_000)
    bench.add_argument("--binth", type=int, default=8,
                       help="rules per terminal leaf")
    bench.add_argument("--flow-cache", type=int, default=None, metavar="N",
                       help="also time a pass with an N-flow LRU cache")
    bench.add_argument("--seed", type=int, default=0,
                       help="seed for ruleset generation and packet sampling")

    serve = subparsers.add_parser(
        "serve-bench",
        help="benchmark the multi-tenant serving layer on a generated "
             "flow workload",
    )
    serve.add_argument("--tenants", type=int, default=3,
                       help="number of tenants to register")
    serve.add_argument("--families", default="acl1,fw1,ipc1",
                       help="comma-separated seed families cycled across "
                            "tenants")
    serve.add_argument("--num-rules", type=int, default=150,
                       help="rules per tenant classifier")
    serve.add_argument("--num-packets", type=int, default=20_000,
                       help="total requests across tenants")
    serve.add_argument("--num-flows", type=int, default=512,
                       help="flow population size across tenants")
    serve.add_argument("--zipf", type=float, default=1.1,
                       help="Zipf exponent of flow popularity")
    serve.add_argument("--burst", type=float, default=16.0,
                       help="mean packets per arrival burst")
    serve.add_argument("--algorithm", default="HiCuts",
                       help="tree builder for every tenant (default HiCuts)")
    serve.add_argument("--binth", type=int, default=8)
    serve.add_argument("--batch-size", type=int, default=64,
                       help="micro-batcher release size")
    serve.add_argument("--max-delay-ms", type=float, default=1.0,
                       help="micro-batcher deadline in trace milliseconds")
    serve.add_argument("--flow-cache", type=int, default=2048,
                       help="per-tenant LRU flow cache capacity (0 disables)")
    serve.add_argument("--churn-events", type=int, default=2,
                       help="mid-trace rule updates triggering hot swaps")
    serve.add_argument("--sync-swaps", action="store_true",
                       help="recompile inline instead of in the background")
    serve.add_argument("--verify", action="store_true",
                       help="re-check every answer against linear search "
                            "(slow; proves exactness across hot swaps)")
    serve.add_argument("--retrain-threshold", type=int, default=0,
                       metavar="N",
                       help="retrain a tenant's tree once N rule updates "
                            "accumulate (0 disables the retrain loop)")
    serve.add_argument("--retrain-timesteps", type=int, default=3000,
                       help="NeuroCuts timestep budget per background "
                            "retrain")
    serve.add_argument("--retrain-backend", default="thread",
                       choices=EXECUTOR_BACKENDS,
                       help="where retrain jobs run (thread overlaps "
                            "serving; serial is deterministic/inline)")
    serve.add_argument("--serving-workers", type=int, default=1,
                       metavar="N",
                       help="shard tenants across N serving workers "
                            "(1 = single process)")
    serve.add_argument("--serving-backend", default="process",
                       choices=EXECUTOR_BACKENDS,
                       help="executor backend for serving shards")
    serve.add_argument("--seed", type=int, default=0)

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    ruleset = generate_classifier(args.seed_family, args.num_rules,
                                  seed=args.seed)
    rules_io.dump(ruleset, args.output)
    print(f"wrote {len(ruleset)} rules ({args.seed_family}) to {args.output}")
    return 0


def _training_config(args: argparse.Namespace) -> NeuroCutsConfig:
    return NeuroCutsConfig(
        time_space_coeff=getattr(args, "coefficient", 1.0),
        partition_mode=getattr(args, "partition_mode", "none"),
        reward_scaling="log" if getattr(args, "coefficient", 1.0) < 1.0 else "linear",
        hidden_sizes=(64, 64),
        max_timesteps_total=args.timesteps,
        timesteps_per_batch=max(500, args.timesteps // 12),
        max_timesteps_per_rollout=600,
        max_tree_depth=60,
        num_sgd_iters=10,
        sgd_minibatch_size=256,
        learning_rate=1e-3,
        leaf_threshold=getattr(args, "leaf_threshold", 16),
        seed=getattr(args, "seed", 0),
        num_rollout_workers=getattr(args, "workers", 1),
    )


def _cmd_compare(args: argparse.Namespace) -> int:
    ruleset = rules_io.load(args.rules)
    rows: List[List[object]] = []
    for name, builder in default_baselines(binth=args.binth).items():
        result = builder.build_with_stats(ruleset)
        rows.append([name, result.stats.classification_time,
                     round(result.stats.bytes_per_rule, 1),
                     result.stats.num_trees, result.stats.num_nodes])
    if args.with_neurocuts:
        config = _training_config(args)
        with NeuroCutsTrainer(ruleset, config) as trainer:
            result = trainer.train()
        stats = result.best_classifier().stats()
        rows.append(["NeuroCuts", stats.classification_time,
                     round(stats.bytes_per_rule, 1),
                     stats.num_trees, stats.num_nodes])
    print(format_table(
        ["algorithm", "classification time", "bytes/rule", "trees", "nodes"], rows
    ))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    ruleset = rules_io.load(args.rules)
    config = _training_config(args)
    with NeuroCutsTrainer(ruleset, config) as trainer:
        result = trainer.train()
    classifier = result.best_classifier()
    report = validate_classifier(classifier, num_random_packets=300)
    if not report.is_correct:
        print("error: learnt tree disagrees with linear search", file=sys.stderr)
        return 1
    save_tree(result.best_tree, args.output)
    stats = classifier.stats()
    print(json.dumps({
        "timesteps": result.timesteps_total,
        "iterations": len(result.history),
        "workers": config.num_rollout_workers,
        "classification_time": stats.classification_time,
        "bytes_per_rule": round(stats.bytes_per_rule, 2),
        "depth": stats.depth,
        "nodes": stats.num_nodes,
        "tree_file": str(args.output),
    }, indent=2))
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    ruleset = rules_io.load(args.rules)
    tree = load_tree(args.tree, ruleset)
    packets = generate_trace(ruleset, num_packets=args.num_packets,
                             seed=args.seed)
    matched = 0
    mismatched = 0
    for packet in packets:
        expected = ruleset.classify(packet)
        actual = tree.classify(packet)
        if (actual.priority if actual else None) == \
                (expected.priority if expected else None):
            matched += 1
        else:
            mismatched += 1
    print(f"classified {len(packets)} packets: "
          f"{matched} agree with linear search, {mismatched} mismatches")
    return 0 if mismatched == 0 else 1


def _cmd_engine_bench(args: argparse.Namespace) -> int:
    from repro.engine.bench import bench_classifier

    if args.num_packets < 1:
        print("error: --num-packets must be >= 1", file=sys.stderr)
        return 2
    if args.flow_cache is not None and args.flow_cache < 1:
        print("error: --flow-cache must be >= 1", file=sys.stderr)
        return 2
    if args.rules is not None:
        ruleset = rules_io.load(args.rules)
    else:
        ruleset = generate_classifier(args.seed_family, args.num_rules,
                                      seed=args.seed)
    builders = default_baselines(binth=args.binth)
    builder = builders.get(args.algorithm)
    if builder is None:
        print(f"error: unknown algorithm {args.algorithm!r}; "
              f"choose from {sorted(builders)}", file=sys.stderr)
        return 2
    classifier = builder.build(ruleset)
    packets = generate_trace(ruleset, num_packets=args.num_packets,
                             seed=args.seed)
    result = bench_classifier(classifier, packets,
                              flow_cache_size=args.flow_cache)
    print(f"{args.algorithm} on {ruleset.name or args.seed_family} "
          f"({len(ruleset)} rules, {len(packets)} packets): "
          f"compiled {result.num_subtrees} search tree(s), "
          f"{result.compiled_memory_bytes} bytes, "
          f"compile {result.compile_seconds * 1000:.1f} ms")
    print(format_table(["engine", "packets/sec", "speedup"], result.rows()))
    if result.cache_hit_rate is not None:
        print(f"flow cache: {result.cache_hit_rate:.1%} hit rate, "
              f"{result.cache_evictions} evictions "
              f"(capacity {args.flow_cache})")
    if result.mismatches:
        print(f"error: {result.mismatches} packets disagree with the "
              f"interpreter", file=sys.stderr)
        return 1
    print(f"speedup: {result.speedup:.1f}x over the interpreter")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.harness.serving import run_serving

    if args.tenants < 1:
        print("error: --tenants must be >= 1", file=sys.stderr)
        return 2
    if args.num_packets < 1:
        print("error: --num-packets must be >= 1", file=sys.stderr)
        return 2
    if args.serving_workers < 1:
        print("error: --serving-workers must be >= 1", file=sys.stderr)
        return 2
    if args.retrain_threshold < 0:
        print("error: --retrain-threshold must be >= 0", file=sys.stderr)
        return 2
    families = tuple(f.strip() for f in args.families.split(",") if f.strip())
    retrain_policy = None
    if args.retrain_threshold > 0:
        from repro.serve.controller import RetrainPolicy

        retrain_policy = RetrainPolicy(timesteps=args.retrain_timesteps,
                                       backend=args.retrain_backend,
                                       seed=args.seed)
    try:
        result = run_serving(
            num_tenants=args.tenants,
            families=families,
            num_rules=args.num_rules,
            num_packets=args.num_packets,
            num_flows=args.num_flows,
            zipf_alpha=args.zipf,
            mean_burst=args.burst,
            algorithm=args.algorithm,
            binth=args.binth,
            max_batch=args.batch_size,
            max_delay=args.max_delay_ms * 1e-3,
            flow_cache_size=args.flow_cache if args.flow_cache > 0 else None,
            churn_events=args.churn_events,
            background_swaps=not args.sync_swaps,
            record_batches=args.verify,
            retrain_threshold=args.retrain_threshold
            if args.retrain_threshold > 0 else None,
            retrain_policy=retrain_policy,
            serving_workers=args.serving_workers,
            serving_backend=args.serving_backend,
            seed=args.seed,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    workload = result.workload
    print(f"served {workload.describe()}")
    print(format_table(["metric", "value"], result.rows()))
    print(format_table(
        ["tenant", "rules", "epoch", "hit rate", "evictions", "swaps",
         "stalls"],
        result.tenant_rows(),
    ))
    if args.serving_workers > 1:
        print(format_table(
            ["shard", "tenants", "requests", "wall"],
            result.shard_rows(),
        ))
    if args.verify:
        exactness = result.verify_exactness()
        print(f"differential check: {exactness.num_checked} packets "
              f"({exactness.num_post_swap} post-swap), "
              f"{exactness.num_mismatches} mismatches vs linear search")
        if not exactness.is_exact:
            print("error: served answers disagree with linear search",
                  file=sys.stderr)
            return 1
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "compare": _cmd_compare,
    "train": _cmd_train,
    "classify": _cmd_classify,
    "engine-bench": _cmd_engine_bench,
    "serve-bench": _cmd_serve_bench,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
