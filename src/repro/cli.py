"""Command-line interface.

The subcommands cover the library's day-to-day workflows without writing
Python (full reference with copy-pasteable invocations: docs/cli.md):

* ``repro generate`` — emit a ClassBench-style filter file for a seed family.
* ``repro compare``  — build a rule file with every baseline (and optionally
  NeuroCuts) and print the time/space comparison.
* ``repro train``    — train NeuroCuts on a rule file and save the best tree
  as JSON.
* ``repro classify`` — classify packets from a trace against a saved tree.
* ``repro engine-bench`` — compile a classifier for the dataplane engine and
  measure packets/sec against the interpreter.
* ``repro serve-bench`` — drive the multi-tenant serving layer with a
  generated flow workload (Zipf locality, bursty arrivals, optional rule
  churn with zero-downtime engine hot swaps) and report pps, latency
  percentiles, cache hit rate, and swap telemetry.  ``--retrain-threshold``
  arms the retrain-on-churn loop (background NeuroCuts retrains swap in new
  trees mid-run) and ``--serving-workers`` shards tenants across serving
  processes with merged telemetry.
* ``repro trace`` — record serving runs as replayable binary trace files
  and work with them: ``record`` captures a scenario plus every served
  decision (the golden column), ``replay`` drives the full serving stack
  from a file (``--verify`` asserts zero decision diffs vs the golden
  column), ``inspect`` prints a trace's header and contents, and ``diff``
  compares two traces field-for-field.
* ``repro bench`` — machine-readable bench scorecards: ``compare`` gates a
  ``BENCH_*.json`` record (written by the ``--json`` flags above, or by
  ``examples/bench_scorecard.py``) against a checked-in baseline — strict
  equality on deterministic counters, tolerance bands on timings — and
  ``show`` pretty-prints one record.

Run ``python -m repro.cli --help`` (or the installed ``repro`` script) for
details.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.baselines import default_baselines
from repro.classbench import generate_classifier, generate_trace, seed_names
from repro.executors import EXECUTOR_BACKENDS
from repro.neurocuts import NeuroCutsConfig, NeuroCutsTrainer
from repro.serve.rebalance import DEFAULT_REBALANCE_INTERVAL, \
    REBALANCE_POLICIES
from repro.rules import io as rules_io
from repro.tree import load_tree, save_tree, validate_classifier
from repro.harness import format_table


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NeuroCuts packet classification toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    gen = subparsers.add_parser(
        "generate", help="generate a ClassBench-style rule file"
    )
    gen.add_argument("--seed-family", choices=sorted(seed_names()),
                     default="acl1", help="ClassBench seed family")
    gen.add_argument("--num-rules", type=int, default=1000)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--output", type=Path, required=True,
                     help="path of the filter file to write")

    compare = subparsers.add_parser(
        "compare", help="compare baseline algorithms on a rule file"
    )
    compare.add_argument("rules", type=Path, help="ClassBench filter file")
    compare.add_argument("--binth", type=int, default=16,
                         help="rules per terminal leaf")
    compare.add_argument("--with-neurocuts", action="store_true",
                         help="also train NeuroCuts (slower)")
    compare.add_argument("--timesteps", type=int, default=12_000,
                         help="NeuroCuts training budget")

    train = subparsers.add_parser(
        "train", help="train NeuroCuts on a rule file and save the best tree"
    )
    train.add_argument("rules", type=Path, help="ClassBench filter file")
    train.add_argument("--output", type=Path, required=True,
                       help="path of the tree JSON to write")
    train.add_argument("--timesteps", type=int, default=20_000)
    train.add_argument("--coefficient", type=float, default=1.0,
                       help="time-space coefficient c in [0, 1]")
    train.add_argument("--partition-mode", default="none",
                       choices=("none", "simple", "efficuts"))
    train.add_argument("--leaf-threshold", type=int, default=16)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--workers", type=int, default=1,
                       help="rollout workers collecting experience shards in "
                            "parallel (1 = serial collection)")
    train.add_argument("--async-collection", action="store_true",
                       help="pipeline rollout collection against the PPO "
                            "update (workers roll on a snapshot at most one "
                            "weight generation stale)")

    classify = subparsers.add_parser(
        "classify", help="classify sampled packets against a saved tree"
    )
    classify.add_argument("rules", type=Path, help="ClassBench filter file")
    classify.add_argument("tree", type=Path, help="tree JSON from `repro train`")
    classify.add_argument("--num-packets", type=int, default=1000)
    classify.add_argument("--seed", type=int, default=0)

    bench = subparsers.add_parser(
        "engine-bench",
        help="benchmark compiled-engine throughput vs the interpreter",
    )
    bench.add_argument("--rules", type=Path, default=None,
                       help="ClassBench filter file (default: generate one)")
    bench.add_argument("--seed-family", choices=sorted(seed_names()),
                       default="acl1", help="seed family when generating")
    bench.add_argument("--num-rules", type=int, default=500)
    bench.add_argument("--algorithm", default="HiCuts",
                       help="builder to benchmark (default HiCuts)")
    bench.add_argument("--num-packets", type=int, default=50_000)
    bench.add_argument("--binth", type=int, default=8,
                       help="rules per terminal leaf")
    bench.add_argument("--flow-cache", type=int, default=None, metavar="N",
                       help="also time a pass with an N-flow LRU cache")
    bench.add_argument("--seed", type=int, default=0,
                       help="seed for ruleset generation and packet sampling")
    bench.add_argument("--engine", default="numpy", dest="engine_backend",
                       metavar="BACKEND",
                       help="traversal backend: numpy, numba, or auto "
                            "(numba needs the repro[native] extra; asking "
                            "for it without numba warns and skips the run)")
    bench.add_argument("--json", type=Path, default=None, metavar="PATH",
                       help="also write the run as a BENCH_engine.json "
                            "scorecard record (see `repro bench compare`)")

    serve = subparsers.add_parser(
        "serve-bench",
        help="benchmark the multi-tenant serving layer on a generated "
             "flow workload",
    )
    serve.add_argument("--tenants", type=int, default=3,
                       help="number of tenants to register")
    serve.add_argument("--families", default="acl1,fw1,ipc1",
                       help="comma-separated seed families cycled across "
                            "tenants")
    serve.add_argument("--num-rules", type=int, default=150,
                       help="rules per tenant classifier")
    serve.add_argument("--num-packets", type=int, default=20_000,
                       help="total requests across tenants")
    serve.add_argument("--num-flows", type=int, default=512,
                       help="flow population size across tenants")
    serve.add_argument("--zipf", type=float, default=1.1,
                       help="Zipf exponent of flow popularity")
    serve.add_argument("--burst", type=float, default=16.0,
                       help="mean packets per arrival burst")
    serve.add_argument("--algorithm", default="HiCuts",
                       help="tree builder for every tenant (default HiCuts)")
    serve.add_argument("--binth", type=int, default=8)
    serve.add_argument("--batch-size", type=int, default=64,
                       help="micro-batcher release size")
    serve.add_argument("--max-delay-ms", type=float, default=1.0,
                       help="micro-batcher deadline in trace milliseconds")
    serve.add_argument("--flow-cache", type=int, default=2048,
                       help="per-tenant LRU flow cache capacity (0 disables)")
    serve.add_argument("--churn-events", type=int, default=2,
                       help="mid-trace rule updates triggering hot swaps")
    serve.add_argument("--sync-swaps", action="store_true",
                       help="recompile inline instead of in the background")
    serve.add_argument("--verify", action="store_true",
                       help="re-check every answer against linear search "
                            "(slow; proves exactness across hot swaps)")
    serve.add_argument("--retrain-threshold", type=int, default=0,
                       metavar="N",
                       help="retrain a tenant's tree once N rule updates "
                            "accumulate (0 disables the retrain loop)")
    serve.add_argument("--retrain-timesteps", type=int, default=3000,
                       help="NeuroCuts timestep budget per background "
                            "retrain")
    serve.add_argument("--retrain-backend", default="thread",
                       choices=EXECUTOR_BACKENDS,
                       help="where retrain jobs run (thread overlaps "
                            "serving; serial is deterministic/inline)")
    serve.add_argument("--retrain-pool-size", type=int, default=0,
                       metavar="N",
                       help="multiplex all tenants' retrains over one "
                            "shared N-worker pool with per-tenant "
                            "round-robin fairness (0 = one executor per "
                            "controller)")
    serve.add_argument("--serving-workers", type=int, default=1,
                       metavar="N",
                       help="shard tenants across N serving workers "
                            "(1 = single process)")
    serve.add_argument("--serving-backend", default="process",
                       choices=EXECUTOR_BACKENDS,
                       help="executor backend for serving shards")
    serve.add_argument("--engine", default="numpy", dest="engine_backend",
                       metavar="BACKEND",
                       help="compiled-engine traversal backend for every "
                            "tenant slot: numpy, numba, or auto")
    serve.add_argument("--ingest", action="store_true",
                       help="run the ingestion frontend ahead of the "
                            "batcher: per-tenant token-bucket admission, "
                            "queue-delay backpressure, typed throttling "
                            "(see docs/ingest.md)")
    serve.add_argument("--tenant-rate", type=float, default=20_000.0,
                       metavar="PPS",
                       help="sustained admitted packets/sec per tenant "
                            "(token refill rate; needs --ingest)")
    serve.add_argument("--tenant-burst", type=int, default=256, metavar="N",
                       help="token-bucket burst capacity per tenant "
                            "(needs --ingest)")
    serve.add_argument("--queue-limit", type=int, default=512, metavar="N",
                       help="bounded admission-queue capacity per tenant; "
                            "arrivals beyond it are shed (needs --ingest)")
    serve.add_argument("--flash-crowd", type=float, default=0.0,
                       metavar="FACTOR",
                       help="adversarial scenario: the busiest tenant's "
                            "offered rate multiplies by FACTOR mid-trace "
                            "(0 = nominal workload; FACTOR > 1 enables)")
    serve.add_argument("--tenant-zipf", type=float, default=1.0,
                       metavar="ALPHA",
                       help="Zipf exponent of the per-tenant traffic split "
                            "(>1 skews load onto the first tenants; pairs "
                            "with --rebalance-policy load)")
    serve.add_argument("--rebalance-policy", default="none",
                       choices=sorted(REBALANCE_POLICIES),
                       help="live shard rebalancing policy (needs "
                            "--serving-workers >= 2; 'load' migrates "
                            "tenants off overloaded shards mid-run, see "
                            "docs/architecture.md)")
    serve.add_argument("--rebalance-interval", type=float,
                       default=DEFAULT_REBALANCE_INTERVAL, metavar="SECONDS",
                       help="trace-clock interval between rebalance "
                            "evaluations")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--json", type=Path, default=None, metavar="PATH",
                       help="also write the run as a BENCH_serve.json "
                            "scorecard record (see `repro bench compare`)")

    trace = subparsers.add_parser(
        "trace",
        help="record, replay, inspect, and diff serving traces",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    record = trace_sub.add_parser(
        "record",
        help="serve a generated scenario and record it as a trace file",
    )
    record.add_argument("--output", type=Path, required=True,
                        help="path of the trace file to write")
    record.add_argument("--tenants", type=int, default=3)
    record.add_argument("--families", default="acl1,fw1,ipc1",
                        help="comma-separated seed families cycled across "
                             "tenants")
    record.add_argument("--num-rules", type=int, default=150,
                        help="rules per tenant classifier")
    record.add_argument("--num-packets", type=int, default=20_000,
                        help="total requests across tenants")
    record.add_argument("--num-flows", type=int, default=512)
    record.add_argument("--zipf", type=float, default=1.1,
                        help="Zipf exponent of flow popularity")
    record.add_argument("--burst", type=float, default=16.0,
                        help="mean packets per arrival burst")
    record.add_argument("--algorithm", default="HiCuts")
    record.add_argument("--binth", type=int, default=8)
    record.add_argument("--batch-size", type=int, default=64)
    record.add_argument("--max-delay-ms", type=float, default=1.0)
    record.add_argument("--flow-cache", type=int, default=2048)
    record.add_argument("--churn-events", type=int, default=2,
                        help="mid-trace rule updates captured in the "
                             "churn sidecar")
    record.add_argument("--seed", type=int, default=0)

    replay = trace_sub.add_parser(
        "replay",
        help="serve a recorded trace through the full serving stack",
    )
    replay.add_argument("trace", type=Path, help="trace file to replay")
    replay.add_argument("--verify", action="store_true",
                        help="compare every served decision against the "
                             "trace's golden column (exit 1 on any diff)")
    replay.add_argument("--output", type=Path, default=None,
                        help="re-record the replay to this trace file "
                             "(diffs clean against the source when exact)")
    replay.add_argument("--batch-size", type=int, default=64)
    replay.add_argument("--max-delay-ms", type=float, default=1.0)
    replay.add_argument("--flow-cache", type=int, default=2048,
                        help="per-tenant LRU flow cache capacity "
                             "(0 disables)")
    replay.add_argument("--background-swaps", action="store_true",
                        help="rebuild engines in the background like a "
                             "production run (swap timing then depends on "
                             "the wall clock, so --verify may report "
                             "mismatches around update times)")
    replay.add_argument("--retrain-threshold", type=int, default=0,
                        metavar="N",
                        help="arm the retrain loop during the replay "
                             "(0 disables)")
    replay.add_argument("--retrain-timesteps", type=int, default=3000)
    replay.add_argument("--retrain-backend", default="serial",
                        choices=EXECUTOR_BACKENDS,
                        help="where replay retrains run (serial keeps the "
                             "replay deterministic)")
    replay.add_argument("--retrain-pool-size", type=int, default=0,
                        metavar="N",
                        help="multiplex replay retrains over one shared "
                             "N-worker pool (0 = one executor per "
                             "controller)")
    replay.add_argument("--serving-workers", type=int, default=1,
                        metavar="N",
                        help="shard the trace's tenants across N serving "
                             "workers")
    replay.add_argument("--serving-backend", default="process",
                        choices=EXECUTOR_BACKENDS)
    replay.add_argument("--rebalance-policy", default="none",
                        choices=sorted(REBALANCE_POLICIES),
                        help="replay through the rebalancing front-end "
                             "with live tenant migrations (needs "
                             "--serving-workers >= 2; decisions still "
                             "verify exactly)")
    replay.add_argument("--rebalance-interval", type=float,
                        default=DEFAULT_REBALANCE_INTERVAL,
                        metavar="SECONDS",
                        help="trace-clock interval between rebalance "
                             "evaluations")
    replay.add_argument("--ingest", action="store_true",
                        help="replay through the ingest-enabled serving "
                             "path; admission timing is bypassed on "
                             "replays (trace clock authoritative, see "
                             "docs/ingest.md), so verified traces stay "
                             "bit-exact")
    replay.add_argument("--tenant-rate", type=float, default=20_000.0,
                        metavar="PPS",
                        help="ingest sustained rate per tenant "
                             "(needs --ingest)")
    replay.add_argument("--tenant-burst", type=int, default=256,
                        metavar="N",
                        help="ingest burst capacity per tenant "
                             "(needs --ingest)")
    replay.add_argument("--queue-limit", type=int, default=512, metavar="N",
                        help="ingest admission-queue capacity per tenant "
                             "(needs --ingest)")

    inspect = trace_sub.add_parser(
        "inspect", help="print a trace file's header and contents"
    )
    inspect.add_argument("trace", type=Path, help="trace file to inspect")
    inspect.add_argument("--head", type=int, default=0, metavar="N",
                         help="also print the first N packet records")

    diff = trace_sub.add_parser(
        "diff", help="compare two trace files field-for-field"
    )
    diff.add_argument("trace_a", type=Path)
    diff.add_argument("trace_b", type=Path)
    diff.add_argument("--max-examples", type=int, default=10,
                      help="per-record difference examples to print")

    bench_group = subparsers.add_parser(
        "bench",
        help="compare and inspect BENCH_*.json scorecard records",
    )
    bench_sub = bench_group.add_subparsers(dest="bench_command", required=True)

    bcompare = bench_sub.add_parser(
        "compare",
        help="gate a scorecard record (or a whole directory of them) "
             "against a baseline (exit 1 on regression)",
    )
    bcompare.add_argument("run", type=Path,
                          help="the BENCH_*.json record under test, or a "
                               "directory of records (then baseline must "
                               "be a directory too: every BENCH_*.json in "
                               "the baseline dir is gated against the "
                               "same-named run file in one invocation)")
    bcompare.add_argument("baseline", type=Path,
                          help="the baseline record (or directory) to gate "
                               "against")
    bcompare.add_argument("--timing-tolerance", type=float, default=0.25,
                          metavar="FRAC",
                          help="allowed fractional timing regression "
                               "(default 0.25 = 25%%)")
    bcompare.add_argument("--skip-timings", action="store_true",
                          help="gate only the deterministic counters "
                               "(for noisy/underprovisioned CI runners)")
    bcompare.add_argument("--min-cpus", type=int, default=0, metavar="N",
                          help="skip timing checks when the machine has "
                               "fewer than N CPUs (0 = never skip)")
    bcompare.add_argument("--cross-machine-timings", action="store_true",
                          help="band timings even when run and baseline "
                               "were recorded on different machine classes "
                               "(different fingerprint cpu_count); skipped "
                               "by default because such bands gate machine "
                               "noise, not the code")
    bcompare.add_argument("--ignore-config", action="store_true",
                          help="do not fail on config-knob drift between "
                               "run and baseline")

    bshow = bench_sub.add_parser(
        "show", help="pretty-print one scorecard record"
    )
    bshow.add_argument("record", type=Path, help="a BENCH_*.json file")

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    ruleset = generate_classifier(args.seed_family, args.num_rules,
                                  seed=args.seed)
    rules_io.dump(ruleset, args.output)
    print(f"wrote {len(ruleset)} rules ({args.seed_family}) to {args.output}")
    return 0


def _training_config(args: argparse.Namespace) -> NeuroCutsConfig:
    return NeuroCutsConfig(
        time_space_coeff=getattr(args, "coefficient", 1.0),
        partition_mode=getattr(args, "partition_mode", "none"),
        reward_scaling="log" if getattr(args, "coefficient", 1.0) < 1.0 else "linear",
        hidden_sizes=(64, 64),
        max_timesteps_total=args.timesteps,
        timesteps_per_batch=max(500, args.timesteps // 12),
        max_timesteps_per_rollout=600,
        max_tree_depth=60,
        num_sgd_iters=10,
        sgd_minibatch_size=256,
        learning_rate=1e-3,
        leaf_threshold=getattr(args, "leaf_threshold", 16),
        seed=getattr(args, "seed", 0),
        num_rollout_workers=getattr(args, "workers", 1),
        async_collection=getattr(args, "async_collection", False),
    )


def _cmd_compare(args: argparse.Namespace) -> int:
    ruleset = rules_io.load(args.rules)
    rows: List[List[object]] = []
    for name, builder in default_baselines(binth=args.binth).items():
        result = builder.build_with_stats(ruleset)
        rows.append([name, result.stats.classification_time,
                     round(result.stats.bytes_per_rule, 1),
                     result.stats.num_trees, result.stats.num_nodes])
    if args.with_neurocuts:
        config = _training_config(args)
        with NeuroCutsTrainer(ruleset, config) as trainer:
            result = trainer.train()
        stats = result.best_classifier().stats()
        rows.append(["NeuroCuts", stats.classification_time,
                     round(stats.bytes_per_rule, 1),
                     stats.num_trees, stats.num_nodes])
    print(format_table(
        ["algorithm", "classification time", "bytes/rule", "trees", "nodes"], rows
    ))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    ruleset = rules_io.load(args.rules)
    config = _training_config(args)
    with NeuroCutsTrainer(ruleset, config) as trainer:
        result = trainer.train()
    classifier = result.best_classifier()
    report = validate_classifier(classifier, num_random_packets=300)
    if not report.is_correct:
        print("error: learnt tree disagrees with linear search", file=sys.stderr)
        return 1
    save_tree(result.best_tree, args.output)
    stats = classifier.stats()
    print(json.dumps({
        "timesteps": result.timesteps_total,
        "iterations": len(result.history),
        "workers": config.num_rollout_workers,
        "classification_time": stats.classification_time,
        "bytes_per_rule": round(stats.bytes_per_rule, 2),
        "depth": stats.depth,
        "nodes": stats.num_nodes,
        "tree_file": str(args.output),
    }, indent=2))
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    ruleset = rules_io.load(args.rules)
    tree = load_tree(args.tree, ruleset)
    packets = generate_trace(ruleset, num_packets=args.num_packets,
                             seed=args.seed)
    matched = 0
    mismatched = 0
    for packet in packets:
        expected = ruleset.classify(packet)
        actual = tree.classify(packet)
        if (actual.priority if actual else None) == \
                (expected.priority if expected else None):
            matched += 1
        else:
            mismatched += 1
    print(f"classified {len(packets)} packets: "
          f"{matched} agree with linear search, {mismatched} mismatches")
    return 0 if mismatched == 0 else 1


def _cmd_engine_bench(args: argparse.Namespace) -> int:
    from repro.engine.bench import bench_classifier
    from repro.engine.kernels import (ENGINE_BACKENDS, NUMBA_AVAILABLE,
                                      resolve_backend)

    if args.num_packets < 1:
        print("error: --num-packets must be >= 1", file=sys.stderr)
        return 2
    if args.flow_cache is not None and args.flow_cache < 1:
        print("error: --flow-cache must be >= 1", file=sys.stderr)
        return 2
    if args.engine_backend not in ENGINE_BACKENDS:
        print(f"error: unknown engine backend {args.engine_backend!r}; "
              f"choose from {ENGINE_BACKENDS}", file=sys.stderr)
        return 2
    if args.engine_backend == "numba" and not NUMBA_AVAILABLE:
        # A missing optional extra is an environment gap, not a usage error:
        # warn and exit clean so scripted sweeps over backends keep going.
        print("warning: --engine numba requested but numba is not installed "
              "(pip install repro[native]); skipping this run", file=sys.stderr)
        return 0
    backend = resolve_backend(args.engine_backend)
    if args.rules is not None:
        ruleset = rules_io.load(args.rules)
    else:
        ruleset = generate_classifier(args.seed_family, args.num_rules,
                                      seed=args.seed)
    builders = default_baselines(binth=args.binth)
    builder = builders.get(args.algorithm)
    if builder is None:
        print(f"error: unknown algorithm {args.algorithm!r}; "
              f"choose from {sorted(builders)}", file=sys.stderr)
        return 2
    classifier = builder.build(ruleset)
    packets = generate_trace(ruleset, num_packets=args.num_packets,
                             seed=args.seed)
    result = bench_classifier(classifier, packets,
                              flow_cache_size=args.flow_cache,
                              backend=backend)
    print(f"{args.algorithm} on {ruleset.name or args.seed_family} "
          f"({len(ruleset)} rules, {len(packets)} packets): "
          f"compiled {result.num_subtrees} search tree(s), "
          f"{result.compiled_memory_bytes} bytes")
    print(f"backend {result.backend}: "
          f"compile {result.compile_seconds * 1000:.1f} ms, "
          f"warmup {result.warmup_seconds * 1000:.1f} ms"
          + (" (includes JIT)" if result.backend == "numba" else ""))
    print(format_table(["engine", "packets/sec", "speedup"], result.rows()))
    if result.cache_hit_rate is not None:
        print(f"flow cache: {result.cache_hit_rate:.1%} hit rate, "
              f"{result.cache_evictions} evictions "
              f"(capacity {args.flow_cache})")
    if args.json is not None:
        from repro.obs.bench import write_bench

        record = result.bench_record(config={
            "source": str(args.rules) if args.rules is not None
            else args.seed_family,
            "num_rules": len(ruleset),
            "algorithm": args.algorithm,
            "num_packets": args.num_packets,
            "binth": args.binth,
            "flow_cache": args.flow_cache,
            "seed": args.seed,
            # The resolved backend, so `repro bench compare` refuses to
            # diff a numba run against a numpy baseline (or vice versa).
            "engine_backend": result.backend,
        })
        write_bench(record, args.json)
        print(f"wrote scorecard {args.json}")
    if result.mismatches:
        print(f"error: {result.mismatches} packets disagree with the "
              f"interpreter", file=sys.stderr)
        return 1
    print(f"speedup: {result.speedup:.1f}x over the interpreter")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.exceptions import EngineBackendError
    from repro.harness.serving import run_serving

    if args.tenants < 1:
        print("error: --tenants must be >= 1", file=sys.stderr)
        return 2
    if args.num_packets < 1:
        print("error: --num-packets must be >= 1", file=sys.stderr)
        return 2
    if args.serving_workers < 1:
        print("error: --serving-workers must be >= 1", file=sys.stderr)
        return 2
    if args.retrain_threshold < 0:
        print("error: --retrain-threshold must be >= 0", file=sys.stderr)
        return 2
    if args.retrain_pool_size < 0:
        print("error: --retrain-pool-size must be >= 0", file=sys.stderr)
        return 2
    if args.rebalance_policy != "none" and args.serving_workers < 2:
        print("error: --rebalance-policy needs --serving-workers >= 2",
              file=sys.stderr)
        return 2
    if args.rebalance_interval <= 0:
        print("error: --rebalance-interval must be > 0", file=sys.stderr)
        return 2
    rebalance_policy = None
    if args.rebalance_policy != "none":
        from repro.serve.rebalance import make_rebalance_policy

        rebalance_policy = make_rebalance_policy(args.rebalance_policy)
    families = tuple(f.strip() for f in args.families.split(",") if f.strip())
    retrain_policy = None
    if args.retrain_threshold > 0:
        from repro.serve.controller import RetrainPolicy

        retrain_policy = RetrainPolicy(timesteps=args.retrain_timesteps,
                                       backend=args.retrain_backend,
                                       seed=args.seed,
                                       shared_pool_size=args.retrain_pool_size
                                       if args.retrain_pool_size > 0 else None)
    ingest = None
    flash_crowd = None
    try:
        if args.ingest:
            from repro.ingest import IngestConfig

            ingest = IngestConfig(tenant_rate=args.tenant_rate,
                                  tenant_burst=args.tenant_burst,
                                  queue_limit=args.queue_limit)
        if args.flash_crowd > 0:
            from repro.workloads.adversarial import FlashCrowdConfig

            flash_crowd = FlashCrowdConfig(rate_factor=args.flash_crowd)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        result = run_serving(
            num_tenants=args.tenants,
            families=families,
            num_rules=args.num_rules,
            num_packets=args.num_packets,
            num_flows=args.num_flows,
            zipf_alpha=args.zipf,
            tenant_zipf_alpha=args.tenant_zipf,
            mean_burst=args.burst,
            algorithm=args.algorithm,
            binth=args.binth,
            max_batch=args.batch_size,
            max_delay=args.max_delay_ms * 1e-3,
            flow_cache_size=args.flow_cache if args.flow_cache > 0 else None,
            churn_events=args.churn_events,
            background_swaps=not args.sync_swaps,
            record_batches=args.verify,
            retrain_threshold=args.retrain_threshold
            if args.retrain_threshold > 0 else None,
            retrain_policy=retrain_policy,
            serving_workers=args.serving_workers,
            serving_backend=args.serving_backend,
            engine_backend=args.engine_backend,
            ingest=ingest,
            flash_crowd=flash_crowd,
            rebalance_policy=rebalance_policy,
            rebalance_interval=args.rebalance_interval,
            seed=args.seed,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except EngineBackendError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    workload = result.workload
    print(f"served {workload.describe()}")
    print(format_table(["metric", "value"], result.rows()))
    print(format_table(
        ["tenant", "rules", "epoch", "hit rate", "evictions", "swaps",
         "stalls"],
        result.tenant_rows(),
    ))
    if args.serving_workers > 1:
        print(format_table(
            ["shard", "tenants", "requests", "wall"],
            result.shard_rows(),
        ))
    report = result.report
    if args.ingest:
        delay = report.metrics.timing("ingest.queue_delay_seconds") \
            if report.metrics is not None else None
        print(f"admission: {report.ingest_offered:,} offered -> "
              f"{report.ingest_admitted:,} admitted, "
              f"{report.ingest_throttled:,} throttled, "
              f"{report.ingest_shed:,} shed"
              + (f"; queue delay p50 {delay.percentile(50) * 1e3:.3f} ms, "
                 f"p99 {delay.percentile(99) * 1e3:.3f} ms, "
                 f"max {delay.max * 1e3:.3f} ms"
                 if delay is not None and delay.count else ""))
        ingest_rows = [
            [tenant_id, e["offered"], e["admitted"], e["throttled"],
             e["shed"], f"{e['goodput_pps']:,.0f}", e["max_queue_depth"]]
            for tenant_id, entry in report.per_tenant.items()
            if (e := entry.get("ingest")) is not None
        ]
        if ingest_rows:
            print(format_table(
                ["tenant", "offered", "admitted", "throttled", "shed",
                 "goodput pps", "max depth"],
                ingest_rows,
            ))
    exactness = None
    if args.verify:
        exactness = result.verify_exactness()
        print(f"differential check: {exactness.num_checked} packets "
              f"({exactness.num_post_swap} post-swap), "
              f"{exactness.num_mismatches} mismatches vs linear search")
    if args.json is not None:
        from repro.harness.serving import serving_bench_record
        from repro.obs.bench import write_bench

        record = serving_bench_record(
            result.report, name="serve-bench", exactness=exactness,
            config={
                "tenants": args.tenants,
                "families": ",".join(families),
                "num_rules": args.num_rules,
                "num_packets": args.num_packets,
                "num_flows": args.num_flows,
                "algorithm": args.algorithm,
                "binth": args.binth,
                "batch_size": args.batch_size,
                "flow_cache": args.flow_cache,
                "churn_events": args.churn_events,
                "sync_swaps": args.sync_swaps,
                "verify": args.verify,
                "retrain_threshold": args.retrain_threshold,
                "serving_workers": args.serving_workers,
                "engine_backend": args.engine_backend,
                "ingest": args.ingest,
                "tenant_rate": args.tenant_rate if args.ingest else None,
                "tenant_burst": args.tenant_burst if args.ingest else None,
                "queue_limit": args.queue_limit if args.ingest else None,
                "flash_crowd": args.flash_crowd,
                "tenant_zipf": args.tenant_zipf,
                "rebalance_policy": args.rebalance_policy,
                "rebalance_interval": args.rebalance_interval
                if args.rebalance_policy != "none" else None,
                "seed": args.seed,
            })
        write_bench(record, args.json)
        print(f"wrote scorecard {args.json}")
    if exactness is not None and not exactness.is_exact:
        print("error: served answers disagree with linear search",
              file=sys.stderr)
        return 1
    return 0


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from repro.exceptions import TraceError
    from repro.traces import record_serving

    if args.tenants < 1:
        print("error: --tenants must be >= 1", file=sys.stderr)
        return 2
    if args.num_packets < 1:
        print("error: --num-packets must be >= 1", file=sys.stderr)
        return 2
    families = tuple(f.strip() for f in args.families.split(",") if f.strip())
    try:
        outcome = record_serving(
            args.output,
            num_tenants=args.tenants,
            families=families,
            num_rules=args.num_rules,
            num_packets=args.num_packets,
            num_flows=args.num_flows,
            zipf_alpha=args.zipf,
            mean_burst=args.burst,
            algorithm=args.algorithm,
            binth=args.binth,
            max_batch=args.batch_size,
            max_delay=args.max_delay_ms * 1e-3,
            flow_cache_size=args.flow_cache if args.flow_cache > 0 else None,
            churn_events=args.churn_events,
            seed=args.seed,
        )
    except (TraceError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    trace = outcome.trace
    matched = int(trace.records["golden_matched"].sum())
    print(f"recorded {trace.describe()}")
    print(f"golden column: {matched}/{trace.num_records} packets matched "
          f"a rule in the live run")
    print(f"wrote {outcome.path} ({outcome.path.stat().st_size:,} bytes)")
    return 0


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    from repro.exceptions import TraceError
    from repro.serve.controller import RetrainPolicy
    from repro.traces import read_trace, replay_trace, trace_from_run, \
        write_trace

    if args.serving_workers < 1:
        print("error: --serving-workers must be >= 1", file=sys.stderr)
        return 2
    if args.retrain_threshold < 0:
        print("error: --retrain-threshold must be >= 0", file=sys.stderr)
        return 2
    if args.retrain_pool_size < 0:
        print("error: --retrain-pool-size must be >= 0", file=sys.stderr)
        return 2
    if args.rebalance_policy != "none" and args.serving_workers < 2:
        print("error: --rebalance-policy needs --serving-workers >= 2",
              file=sys.stderr)
        return 2
    if args.rebalance_interval <= 0:
        print("error: --rebalance-interval must be > 0", file=sys.stderr)
        return 2
    rebalance_policy = None
    if args.rebalance_policy != "none":
        from repro.serve.rebalance import make_rebalance_policy

        rebalance_policy = make_rebalance_policy(args.rebalance_policy)
    ingest = None
    if args.ingest:
        from repro.ingest import IngestConfig

        try:
            ingest = IngestConfig(tenant_rate=args.tenant_rate,
                                  tenant_burst=args.tenant_burst,
                                  queue_limit=args.queue_limit)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print("note: trace replay bypasses admission timing (the trace "
              "clock is authoritative; see docs/ingest.md)")
    try:
        trace = read_trace(args.trace)
        retrain_policy = None
        if args.retrain_threshold > 0:
            retrain_policy = RetrainPolicy(
                timesteps=args.retrain_timesteps,
                backend=args.retrain_backend,
                seed=trace.seed,
                shared_pool_size=args.retrain_pool_size
                if args.retrain_pool_size > 0 else None)
        outcome = replay_trace(
            trace,
            verify=True,
            max_batch=args.batch_size,
            max_delay=args.max_delay_ms * 1e-3,
            flow_cache_size=args.flow_cache if args.flow_cache > 0 else None,
            background_swaps=args.background_swaps,
            retrain_threshold=args.retrain_threshold
            if args.retrain_threshold > 0 else None,
            retrain_policy=retrain_policy,
            serving_workers=args.serving_workers,
            serving_backend=args.serving_backend,
            ingest=ingest,
            rebalance_policy=rebalance_policy,
            rebalance_interval=args.rebalance_interval,
        )
    except (TraceError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    result, report = outcome.result, outcome.report
    print(f"replayed {trace.describe()}")
    print(format_table(["metric", "value"], result.rows()))
    print(format_table(["check", "count"], report.rows()))
    if args.output is not None:
        try:
            replayed = trace_from_run(result.workload, result.report,
                                      seed=trace.seed,
                                      scenario=trace.scenario)
            written = write_trace(replayed, args.output)
        except TraceError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"re-recorded replay to {written}")
    if args.verify:
        if not report.is_exact:
            for miss in report.mismatches:
                print(f"  row {miss.row} ({miss.tenant_id} "
                      f"t={miss.time:.6f}): golden "
                      f"{miss.golden_priority} != replayed "
                      f"{miss.replayed_priority}", file=sys.stderr)
            print(f"error: replay diverged from the golden column "
                  f"({report.num_dropped} dropped, "
                  f"{report.num_duplicates} duplicated, "
                  f"{report.num_mismatches} misclassified)", file=sys.stderr)
            return 1
        print(f"verify: {report.num_served} packets served, 0 dropped, "
              f"0 misclassified (golden column matches)")
    return 0


def _cmd_trace_inspect(args: argparse.Namespace) -> int:
    from repro.exceptions import TraceError
    from repro.traces import TRACE_FORMAT_VERSION, read_trace

    try:
        trace = read_trace(args.trace)
    except TraceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    matched = int(trace.records["golden_matched"].sum())
    print(f"{args.trace}: format v{TRACE_FORMAT_VERSION}, {trace.describe()}")
    print(format_table(
        ["tenant", "family", "rules", "algorithm", "binth", "packets"],
        [
            [
                spec.tenant_id,
                spec.seed_name,
                len(trace.rulesets[spec.tenant_id]),
                spec.algorithm,
                spec.binth,
                int((trace.records["tenant"] == t).sum()),
            ]
            for t, spec in enumerate(trace.specs)
        ],
    ))
    print(f"golden column: {matched}/{trace.num_records} matched, "
          f"{trace.num_records - matched} no-match")
    if trace.scenario:
        print(f"scenario: {json.dumps(trace.scenario, sort_keys=True)}")
    for i, update in enumerate(trace.updates):
        print(f"churn[{i}] t={update.time:.6f} {update.tenant_id}: "
              f"+{len(update.adds)} -{len(update.removes)} rules")
    if args.head > 0:
        tenant_ids = trace.tenant_ids
        for row in range(min(args.head, trace.num_records)):
            rec = trace.records[row]
            golden = trace.golden_priority(row)
            print(f"  [{row}] t={float(rec['time']):.6f} "
                  f"{tenant_ids[int(rec['tenant'])]} "
                  f"flow={int(rec['flow_id'])} "
                  f"{int(rec['src_ip'])}->{int(rec['dst_ip'])} "
                  f"sport={int(rec['src_port'])} dport={int(rec['dst_port'])} "
                  f"proto={int(rec['protocol'])} golden={golden}")
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    from repro.exceptions import TraceError
    from repro.traces import diff_traces

    try:
        diff = diff_traces(args.trace_a, args.trace_b,
                           max_examples=args.max_examples)
    except TraceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if diff.identical:
        print(f"{args.trace_a} and {args.trace_b} are identical")
        return 0
    print(f"{args.trace_a} and {args.trace_b} differ:")
    for line in diff.lines():
        print(f"  {line}")
    return 1


_TRACE_COMMANDS = {
    "record": _cmd_trace_record,
    "replay": _cmd_trace_replay,
    "inspect": _cmd_trace_inspect,
    "diff": _cmd_trace_diff,
}


def _cmd_trace(args: argparse.Namespace) -> int:
    return _TRACE_COMMANDS[args.trace_command](args)


def _compare_one(run_path: Path, baseline_path: Path,
                 args: argparse.Namespace) -> int:
    """Gate one run record against one baseline record (one exit code)."""
    import os

    from repro.exceptions import BenchError
    from repro.obs.bench import read_bench
    from repro.obs.compare import compare_records, timings_comparable

    try:
        run = read_bench(run_path)
        baseline = read_bench(baseline_path)
    except (BenchError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    check_timings = not args.skip_timings
    if check_timings and args.min_cpus > 0:
        cpus = os.cpu_count() or 1
        if cpus < args.min_cpus:
            print(f"note: {cpus} CPU(s) < --min-cpus {args.min_cpus}; "
                  f"timing checks skipped")
            check_timings = False
    if check_timings and not args.cross_machine_timings:
        comparable, reason = timings_comparable(run, baseline)
        if not comparable:
            print(f"note: {reason}; timing checks skipped "
                  f"(--cross-machine-timings to force)")
            check_timings = False
    report = compare_records(run, baseline,
                             timing_tolerance=args.timing_tolerance,
                             check_timings=check_timings,
                             ignore_config=args.ignore_config)
    print(f"comparing {run_path} ({run.name}) against "
          f"{baseline_path} ({baseline.name})")
    print(format_table(["kind", "metric", "baseline", "run", "status"],
                       report.rows()))
    if not report.ok:
        print(f"error: {len(report.failures)} regression(s) vs the baseline",
              file=sys.stderr)
        return 1
    timing_note = "" if check_timings else " (timings skipped)"
    print(f"gate passed: {len(report.checks)} checks{timing_note}")
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    if args.timing_tolerance < 0:
        print("error: --timing-tolerance must be >= 0", file=sys.stderr)
        return 2
    if args.run.is_dir() or args.baseline.is_dir():
        if not (args.run.is_dir() and args.baseline.is_dir()):
            print("error: directory mode needs both run and baseline to be "
                  "directories of BENCH_*.json records", file=sys.stderr)
            return 2
        baselines = sorted(args.baseline.glob("BENCH_*.json"))
        if not baselines:
            print(f"error: no BENCH_*.json records in {args.baseline}",
                  file=sys.stderr)
            return 2
        worst = 0
        gated = 0
        # Every baseline must have a matching run: a record that silently
        # stops being produced is itself a regression.
        for baseline_path in baselines:
            run_path = args.run / baseline_path.name
            if not run_path.exists():
                print(f"error: baseline {baseline_path.name} has no "
                      f"matching record in {args.run}", file=sys.stderr)
                worst = max(worst, 1)
                continue
            worst = max(worst, _compare_one(run_path, baseline_path, args))
            gated += 1
        baseline_names = {p.name for p in baselines}
        extra = [p.name for p in sorted(args.run.glob("BENCH_*.json"))
                 if p.name not in baseline_names]
        if extra:
            print(f"note: {len(extra)} run record(s) without a baseline "
                  f"(informational): {', '.join(extra)}")
        if worst == 0:
            print(f"directory gate passed: {gated} record pair(s)")
        return worst
    return _compare_one(args.run, args.baseline, args)


def _cmd_bench_show(args: argparse.Namespace) -> int:
    from repro.exceptions import BenchError
    from repro.obs.bench import read_bench

    try:
        record = read_bench(args.record)
    except (BenchError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"{args.record}: {record.name} (area {record.area}, "
          f"schema v{record.schema_version})")
    env = ", ".join(f"{k}={v}" for k, v in sorted(record.environment.items()))
    print(f"environment: {env}")
    if record.config:
        print(format_table(["config", "value"],
                           [[k, record.config[k]]
                            for k in sorted(record.config)]))
    print(format_table(["counter", "value"],
                       [[k, record.counters[k]]
                        for k in sorted(record.counters)]))
    print(format_table(["timing", "value"],
                       [[k, f"{record.timings[k]:,.6g}"]
                        for k in sorted(record.timings)]))
    return 0


_BENCH_COMMANDS = {
    "compare": _cmd_bench_compare,
    "show": _cmd_bench_show,
}


def _cmd_bench(args: argparse.Namespace) -> int:
    return _BENCH_COMMANDS[args.bench_command](args)


_COMMANDS = {
    "generate": _cmd_generate,
    "compare": _cmd_compare,
    "train": _cmd_train,
    "classify": _cmd_classify,
    "engine-bench": _cmd_engine_bench,
    "serve-bench": _cmd_serve_bench,
    "trace": _cmd_trace,
    "bench": _cmd_bench,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
