"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError`, so callers can catch a
single base class when they do not care about the specific failure mode.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class RuleFormatError(ReproError):
    """A classifier rule could not be parsed or is internally inconsistent."""


class InvalidRangeError(ReproError):
    """A (lo, hi) range is malformed (lo >= hi, out of field bounds, ...)."""


class TreeError(ReproError):
    """An illegal operation was attempted on a decision tree."""


class InvalidActionError(TreeError):
    """A cut or partition action is not applicable to the given node."""


class BuildError(ReproError):
    """A tree builder (baseline heuristic or NeuroCuts) failed to finish."""


class ConfigError(ReproError):
    """A configuration object contains inconsistent or out-of-range values."""


class CheckpointError(ReproError):
    """A model checkpoint could not be saved or restored."""


class TraceError(ReproError):
    """A serving trace could not be recorded, replayed, or verified."""


class TraceFormatError(TraceError):
    """A trace file is malformed: bad magic, unsupported version, truncated
    payload, or internally inconsistent contents (e.g. a packet record
    referencing a tenant the trace never declared)."""


class EngineBackendError(ReproError):
    """A traversal backend was requested that this installation cannot run
    (e.g. ``"numba"`` without the optional ``repro[native]`` dependency), or
    the backend name is not in ``repro.engine.kernels.ENGINE_BACKENDS``."""


class IngestError(ReproError):
    """The ingestion frontend could not accept or process a request."""


class ThrottledError(IngestError):
    """A request was rejected at admission — typed, never a silent drop.

    Raised by the asyncio ingestion frontend when a tenant exceeds its
    token-bucket rate (``reason="throttled"``) or its admission queue is
    full (``reason="shed"``, the HARD congestion level).  Carries enough
    context for a well-behaved source to back off: ``retry_after`` is the
    trace-clock delay until the tenant's bucket holds a token again.
    """

    def __init__(self, tenant_id: str, time: float, reason: str,
                 level: int = 0, retry_after: float = 0.0) -> None:
        super().__init__(
            f"tenant {tenant_id!r} {reason} at t={time:.6f}"
            + (f" (retry after {retry_after:.6f}s)" if retry_after > 0 else "")
        )
        self.tenant_id = tenant_id
        self.time = time
        self.reason = reason
        self.level = level
        self.retry_after = retry_after


class BenchError(ReproError):
    """A benchmark scorecard could not be produced or compared."""


class BenchFormatError(BenchError):
    """A ``BENCH_*.json`` record is malformed: not JSON, an unsupported
    schema version, missing fields, or non-numeric metric values."""
