"""Serving workload generation: flow traces, tenant scenarios, rule churn.

Builds on :mod:`repro.classbench` (which provides the ClassBench-style
ruleset generator and per-packet traces) to produce the *serving-side*
workloads the multi-tenant service is driven with: flow-structured traffic
with Zipf locality and bursty arrivals, multi-tenant request streams, and
mid-trace rule-update schedules.
"""

from repro.workloads.traffic import (
    FlowPacket,
    FlowTraceConfig,
    FlowTraceGenerator,
    generate_flow_trace,
)
from repro.workloads.scenario import (
    DEFAULT_FAMILIES,
    ChurnConfig,
    MultiTenantWorkload,
    TenantSpec,
    assemble_workload,
    build_workload,
    generate_churn,
    generate_tenant_requests,
    make_tenant_specs,
    tenant_trace_configs,
)
from repro.workloads.adversarial import (
    FlashCrowdConfig,
    build_flash_crowd_workload,
)

__all__ = [
    "FlowPacket",
    "FlowTraceConfig",
    "FlowTraceGenerator",
    "generate_flow_trace",
    "DEFAULT_FAMILIES",
    "ChurnConfig",
    "FlashCrowdConfig",
    "MultiTenantWorkload",
    "TenantSpec",
    "assemble_workload",
    "build_flash_crowd_workload",
    "build_workload",
    "generate_churn",
    "generate_tenant_requests",
    "make_tenant_specs",
    "tenant_trace_configs",
]
