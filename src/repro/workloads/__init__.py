"""Serving workload generation: flow traces, tenant scenarios, rule churn.

Builds on :mod:`repro.classbench` (which provides the ClassBench-style
ruleset generator and per-packet traces) to produce the *serving-side*
workloads the multi-tenant service is driven with: flow-structured traffic
with Zipf locality and bursty arrivals, multi-tenant request streams, and
mid-trace rule-update schedules.
"""

from repro.workloads.traffic import (
    FlowPacket,
    FlowTraceConfig,
    FlowTraceGenerator,
    generate_flow_trace,
)
from repro.workloads.scenario import (
    DEFAULT_FAMILIES,
    ChurnConfig,
    MultiTenantWorkload,
    TenantSpec,
    build_workload,
    generate_churn,
    make_tenant_specs,
)

__all__ = [
    "FlowPacket",
    "FlowTraceConfig",
    "FlowTraceGenerator",
    "generate_flow_trace",
    "DEFAULT_FAMILIES",
    "ChurnConfig",
    "MultiTenantWorkload",
    "TenantSpec",
    "build_workload",
    "generate_churn",
    "make_tenant_specs",
]
