"""Adversarial serving scenarios: workloads built to stress admission.

The scenarios here deliberately violate the polite-traffic assumptions the
nominal :func:`~repro.workloads.scenario.build_workload` mix satisfies.
The first member is the **flash crowd**: one tenant's offered rate
multiplies mid-trace while the other tenants keep their nominal Zipf
shares.  Driven through ``run_serving(ingest=...)`` it is the acceptance
scenario for the ingestion frontend — the over-rate tenant must be
throttled (typed, counted) while the conforming tenants' goodput and
queue delays stay bounded, and nothing is ever silently dropped.  The
**skewed flash crowd** variant steepens the tenant Zipf split on top of
that and is the acceptance scenario for load-aware shard rebalancing.

Like every workload in this package the result is a pure function of its
config and seeds, so over-rate runs replay bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.rules.ruleset import RuleSet
from repro.serve.batcher import Request
from repro.workloads.scenario import (
    ChurnConfig,
    MultiTenantWorkload,
    TenantSpec,
    assemble_workload,
    generate_tenant_requests,
    tenant_trace_configs,
)
from repro.workloads.traffic import FlowTraceConfig


@dataclass(frozen=True)
class FlashCrowdConfig:
    """One tenant goes viral: its offered rate multiplies mid-trace.

    Attributes:
        rate_factor: multiplier on the crowd tenant's nominal mean rate
            (its packet budget is unchanged — the same traffic arrives in
            a ``rate_factor``-times shorter window, which is what makes it
            a *crowd* rather than just more load).
        crowd_tenant: index into the scenario's tenant specs of the tenant
            that goes over-rate (0 = the busiest tenant of the Zipf mix).
        start: when the crowd begins, as a fraction of the nominal trace
            duration.
    """

    rate_factor: float = 8.0
    crowd_tenant: int = 0
    start: float = 0.25

    def __post_init__(self) -> None:
        if self.rate_factor <= 1.0:
            raise ValueError("rate_factor must be > 1 (no crowd otherwise)")
        if self.crowd_tenant < 0:
            raise ValueError("crowd_tenant must be >= 0")
        if not 0.0 <= self.start < 1.0:
            raise ValueError("start must be in [0, 1)")

    def as_dict(self) -> dict:
        """Scorecard-config form (stable keys)."""
        return {
            "rate_factor": self.rate_factor,
            "crowd_tenant": self.crowd_tenant,
            "start": self.start,
        }


def build_skewed_flash_crowd_workload(
    num_tenants: int = 4,
    trace: FlowTraceConfig = FlowTraceConfig(),
    flash: FlashCrowdConfig = FlashCrowdConfig(),
    tenant_zipf_alpha: float = 1.5,
    num_rules: int = 150,
    seed_name: str = "acl1",
    churn: Optional[ChurnConfig] = None,
    seed: int = 0,
) -> MultiTenantWorkload:
    """Skewed-tenant flash crowd: the shard-rebalancing stress scenario.

    A steeper-than-nominal Zipf split (``tenant_zipf_alpha`` defaults to
    1.5 instead of 1.0) concentrates most of the traffic on tenant 0, and
    the flash crowd then multiplies that tenant's rate mid-trace.  Under a
    static round-robin shard plan the shard that drew tenant 0 ends up
    carrying almost the whole stream, which is exactly the imbalance a
    load-aware :class:`~repro.serve.rebalance.RebalancePolicy` must detect
    and migrate away from.  Deterministic for a fixed config and seed,
    like every workload in this package.
    """
    if num_tenants < 2:
        raise ValueError("num_tenants must be >= 2 (skew needs neighbours)")
    specs = [
        TenantSpec(tenant_id=f"tenant-{i}", seed_name=seed_name,
                   num_rules=num_rules, seed=seed + i)
        for i in range(num_tenants)
    ]
    return build_flash_crowd_workload(
        specs, trace=trace, flash=flash,
        tenant_zipf_alpha=tenant_zipf_alpha, churn=churn)


def build_flash_crowd_workload(
    specs: Sequence[TenantSpec],
    trace: FlowTraceConfig = FlowTraceConfig(),
    flash: FlashCrowdConfig = FlashCrowdConfig(),
    tenant_zipf_alpha: float = 1.0,
    churn: Optional[ChurnConfig] = None,
    rulesets: Optional[Dict[str, RuleSet]] = None,
) -> MultiTenantWorkload:
    """Materialise the flash-crowd scenario.

    Starts from the nominal Zipf split of :func:`tenant_trace_configs`,
    then compresses the crowd tenant's trace ``flash.rate_factor``-fold
    (same packets, higher rate) and delays its start to ``flash.start`` of
    the conforming tenants' duration.  Everything downstream (merge order,
    seq stamps, churn) is shared with the nominal builder, so the only
    difference from :func:`build_workload` is the one tenant's arrival
    process.
    """
    specs = list(specs)
    if not specs:
        raise ValueError("specs must name at least one tenant")
    if flash.crowd_tenant >= len(specs):
        raise ValueError(
            f"crowd_tenant={flash.crowd_tenant} is out of range for "
            f"{len(specs)} tenants")
    if rulesets is None:
        rulesets = {spec.tenant_id: spec.materialize() for spec in specs}
    configs = tenant_trace_configs(specs, trace, tenant_zipf_alpha)
    crowd_id = specs[flash.crowd_tenant].tenant_id
    crowd_config = configs[crowd_id]
    configs[crowd_id] = replace(
        crowd_config,
        mean_rate_pps=crowd_config.mean_rate_pps * flash.rate_factor,
        # Keep mean <= peak valid at any factor: the crowd bursts at least
        # twice its boosted mean, and never below the nominal peak.
        peak_rate_pps=max(crowd_config.peak_rate_pps,
                          2.0 * crowd_config.mean_rate_pps
                          * flash.rate_factor),
    )
    requests: List[Request] = []
    background_end = 0.0
    for spec in specs:
        if spec.tenant_id == crowd_id:
            continue
        stream = generate_tenant_requests(
            spec, rulesets[spec.tenant_id], configs[spec.tenant_id])
        if stream:
            background_end = max(background_end, stream[-1].time)
        requests.extend(stream)
    # With a single tenant there is no background traffic to measure the
    # nominal duration against; fall back to the crowd's own uncompressed
    # duration estimate (packets / nominal mean rate).
    if background_end <= 0.0:
        background_end = crowd_config.num_packets / crowd_config.mean_rate_pps
    requests.extend(generate_tenant_requests(
        specs[flash.crowd_tenant], rulesets[crowd_id], configs[crowd_id],
        time_offset=flash.start * background_end))
    return assemble_workload(specs, rulesets, requests,
                             churn=churn, churn_seed=trace.seed)
