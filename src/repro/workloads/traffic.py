"""Flow-level traffic generation: Zipf locality and bursty arrivals.

The classbench trace generator (:mod:`repro.classbench.traces`) draws each
*packet* independently, which is right for offline benchmarks but wrong for
a serving path: real traffic consists of *flows* — repeated packets sharing
one 5-tuple — whose popularity is heavily skewed, and whose arrivals come in
bursts rather than a smooth stream.  This module generates such traces:

* a fixed flow population is drawn first (each flow's header targeted at a
  rule of the classifier with probability ``rule_bias``, uniform otherwise);
* per-packet flow choice follows a Zipf distribution over the population
  (``zipf_alpha`` is the locality knob the flow cache lives off);
* arrival timestamps follow an on/off burst process: within a burst packets
  arrive at ``peak_rate_pps``, and inter-burst gaps are stretched so the
  long-run average rate is ``mean_rate_pps``.

Everything is deterministic for a given config (``seed`` included).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.rules.fields import DIMENSIONS, FIELD_RANGES
from repro.rules.packet import Packet
from repro.rules.ruleset import RuleSet


@dataclass(frozen=True)
class FlowTraceConfig:
    """Knobs of the flow-level trace generator.

    Attributes:
        num_packets: total packets in the trace.
        num_flows: size of the flow population packets are drawn from.
        zipf_alpha: flow-popularity skew; larger values concentrate traffic
            on fewer flows (higher flow-cache hit rates).
        rule_bias: probability a flow's header is sampled inside some rule's
            hypercube (the rest fall through to the default rule).
        mean_rate_pps: long-run average arrival rate, packets per trace
            second.
        peak_rate_pps: within-burst arrival rate; must be >= mean_rate_pps.
        mean_burst: average packets per burst (1 = smooth Poisson arrivals).
        seed: RNG seed; the same config always yields the same trace.
    """

    num_packets: int = 10_000
    num_flows: int = 512
    zipf_alpha: float = 1.1
    rule_bias: float = 0.95
    mean_rate_pps: float = 50_000.0
    peak_rate_pps: float = 500_000.0
    mean_burst: float = 16.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_packets < 1:
            raise ValueError("num_packets must be >= 1")
        if self.num_flows < 1:
            raise ValueError("num_flows must be >= 1")
        if self.zipf_alpha <= 0:
            raise ValueError("zipf_alpha must be > 0")
        if not 0.0 <= self.rule_bias <= 1.0:
            raise ValueError("rule_bias must be within [0, 1]")
        if self.mean_rate_pps <= 0 or self.peak_rate_pps < self.mean_rate_pps:
            raise ValueError(
                "rates must satisfy 0 < mean_rate_pps <= peak_rate_pps"
            )
        if self.mean_burst < 1.0:
            raise ValueError("mean_burst must be >= 1")


@dataclass(frozen=True)
class FlowPacket:
    """One trace entry: a timestamped packet belonging to a flow."""

    time: float
    packet: Packet
    flow_id: int


class FlowTraceGenerator:
    """Generates flow-structured, bursty packet traces for one classifier."""

    def __init__(self, ruleset: RuleSet,
                 config: FlowTraceConfig = FlowTraceConfig()) -> None:
        self.ruleset = ruleset
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.flows: List[Packet] = self._draw_flows()
        self._flow_weights = self._zipf_weights(len(self.flows))

    # ------------------------------------------------------------------ #
    # Population
    # ------------------------------------------------------------------ #

    def _draw_flows(self) -> List[Packet]:
        """Draw the flow population (distinct 5-tuples where possible)."""
        cfg = self.config
        rules = self.ruleset.rules
        flows: List[Packet] = []
        seen: set = set()
        attempts = 0
        max_attempts = cfg.num_flows * 20
        while len(flows) < cfg.num_flows and attempts < max_attempts:
            attempts += 1
            if self._rng.random() < cfg.rule_bias:
                rule = rules[int(self._rng.integers(len(rules)))]
                values = tuple(
                    int(self._rng.integers(lo, hi)) for lo, hi in rule.ranges
                )
            else:
                values = tuple(
                    int(self._rng.integers(lo, hi))
                    for lo, hi in (FIELD_RANGES[d] for d in DIMENSIONS)
                )
            if values in seen:
                continue
            seen.add(values)
            flows.append(Packet.from_values(values))
        if not flows:  # tiny spaces can exhaust attempts; never return empty
            flows.append(Packet.from_values(
                tuple(lo for lo, _ in (FIELD_RANGES[d] for d in DIMENSIONS))
            ))
        return flows

    def _zipf_weights(self, n: int) -> np.ndarray:
        ranks = np.arange(1, n + 1, dtype=float)
        weights = ranks ** (-self.config.zipf_alpha)
        # Shuffle so flow_id order carries no popularity information.
        weights = weights[self._rng.permutation(n)]
        return weights / weights.sum()

    # ------------------------------------------------------------------ #
    # Arrivals
    # ------------------------------------------------------------------ #

    def _arrival_times(self) -> np.ndarray:
        """Strictly increasing timestamps from the on/off burst process."""
        cfg = self.config
        times = np.empty(cfg.num_packets)
        peak_gap = 1.0 / cfg.peak_rate_pps
        # Inter-burst idle stretches the average spacing from the peak gap
        # back out to the mean gap, amortised over the burst's packets.
        idle_per_packet = max(1.0 / cfg.mean_rate_pps - peak_gap, 0.0)
        now = 0.0
        produced = 0
        while produced < cfg.num_packets:
            burst = int(self._rng.geometric(1.0 / cfg.mean_burst)) \
                if cfg.mean_burst > 1.0 else 1
            burst = min(max(burst, 1), cfg.num_packets - produced)
            gaps = self._rng.exponential(peak_gap, size=burst)
            times[produced:produced + burst] = now + np.cumsum(gaps)
            now = times[produced + burst - 1]
            produced += burst
            now += self._rng.exponential(idle_per_packet * burst) \
                if idle_per_packet > 0 else 0.0
        return times

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def generate(self) -> List[FlowPacket]:
        """Generate the configured trace, ordered by arrival time."""
        cfg = self.config
        flow_ids = self._rng.choice(
            len(self.flows), size=cfg.num_packets, p=self._flow_weights
        )
        times = self._arrival_times()
        return [
            FlowPacket(time=float(t), packet=self.flows[int(f)],
                       flow_id=int(f))
            for t, f in zip(times, flow_ids)
        ]


def generate_flow_trace(ruleset: RuleSet, num_packets: int = 10_000,
                        num_flows: int = 512, zipf_alpha: float = 1.1,
                        seed: int = 0, **overrides) -> List[FlowPacket]:
    """Convenience wrapper: one flow trace for one classifier."""
    config = FlowTraceConfig(num_packets=num_packets, num_flows=num_flows,
                             zipf_alpha=zipf_alpha, seed=seed, **overrides)
    return FlowTraceGenerator(ruleset, config).generate()
