"""Decision-tree node.

A node owns a box (one half-open range per dimension), the rules intersecting
that box, its depth, and — once an action has been applied to it — the action
and the resulting children.  Partition children keep their parent's box but a
restricted *partition state*: per-dimension coverage bounds that tell the
NeuroCuts agent which "shape" of rules live below this node (Appendix A).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import InvalidActionError
from repro.rules.fields import DIMENSIONS, Dimension, Range, Ranges
from repro.rules.rule import Rule
from repro.tree.actions import (
    Action,
    CutAction,
    EffiCutsPartitionAction,
    MultiCutAction,
    PARTITION_LEVELS,
    PartitionAction,
    SplitAction,
    is_partition,
)

_node_counter = itertools.count()

#: Full partition state: rules of any coverage may be present (levels 0..100%).
FULL_PARTITION_STATE: Tuple[Tuple[int, int], ...] = tuple(
    (0, len(PARTITION_LEVELS) - 1) for _ in DIMENSIONS
)


@dataclass
class Node:
    """A single node of a packet-classification decision tree.

    Attributes:
        ranges: the box this node covers, one half-open range per dimension.
        rules: rules intersecting the box, highest priority first.
        depth: root has depth 0.
        partition_state: per-dimension (min_level, max_level) indices into
            :data:`PARTITION_LEVELS`, describing which coverage fractions of
            rules may appear in this node after partition actions above it.
        efficuts_category: index of the EffiCuts separable category this node
            was assigned by an EffiCuts partition, or ``None``.
        action: the action applied to this node (``None`` while it is a leaf).
        children: child nodes created by ``action``.
        forced_leaf: True if tree construction terminated this node early
            (depth truncation), regardless of how many rules it still holds.
    """

    ranges: Ranges
    rules: List[Rule]
    depth: int = 0
    partition_state: Tuple[Tuple[int, int], ...] = FULL_PARTITION_STATE
    efficuts_category: Optional[int] = None
    action: Optional[Action] = None
    children: List["Node"] = field(default_factory=list)
    forced_leaf: bool = False
    node_id: int = field(default_factory=lambda: next(_node_counter))

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #

    @property
    def num_rules(self) -> int:
        """Number of rules stored at this node."""
        return len(self.rules)

    @property
    def is_leaf(self) -> bool:
        """True if no action has been applied to this node."""
        return self.action is None

    @property
    def is_partition_node(self) -> bool:
        """True if the applied action partitions rules instead of cutting."""
        return self.action is not None and is_partition(self.action)

    def is_terminal(self, leaf_threshold: int) -> bool:
        """True if this node needs no further splitting."""
        return self.forced_leaf or self.num_rules <= leaf_threshold

    def contains_packet(self, values: Sequence[int]) -> bool:
        """True if the packet header values fall inside this node's box."""
        for value, (lo, hi) in zip(values, self.ranges):
            if not lo <= value < hi:
                return False
        return True

    def range_for(self, dim: Dimension | int) -> Range:
        """This node's range along one dimension."""
        return self.ranges[int(dim)]

    def __repr__(self) -> str:
        return (
            f"Node(id={self.node_id}, depth={self.depth}, rules={self.num_rules}, "
            f"children={len(self.children)}, "
            f"action={self.action.describe() if self.action else None})"
        )

    # ------------------------------------------------------------------ #
    # Applying actions
    # ------------------------------------------------------------------ #

    def apply(self, action: Action, *, prune_redundant: bool = True) -> List["Node"]:
        """Apply an action to this node, creating and returning its children.

        Raises:
            InvalidActionError: if an action has already been applied, or the
                action cannot produce at least two children on this node.
        """
        if self.action is not None:
            raise InvalidActionError(f"node {self.node_id} already has an action")
        if isinstance(action, CutAction):
            children = self._apply_cut(action, prune_redundant)
        elif isinstance(action, MultiCutAction):
            children = self._apply_multicut(action, prune_redundant)
        elif isinstance(action, SplitAction):
            children = self._apply_split(action, prune_redundant)
        elif isinstance(action, PartitionAction):
            children = self._apply_partition(action)
        elif isinstance(action, EffiCutsPartitionAction):
            children = self._apply_efficuts_partition(action)
        else:
            raise InvalidActionError(f"unsupported action type: {type(action)!r}")

        self.action = action
        self.children = children
        return children

    # -- cut-family actions --------------------------------------------- #

    def cut_ranges(self, dimension: Dimension, num_cuts: int) -> List[Range]:
        """Compute the equal sub-ranges a cut would produce (may be < num_cuts
        when the node's range has fewer distinct values than requested cuts)."""
        lo, hi = self.ranges[int(dimension)]
        span = hi - lo
        effective = min(num_cuts, span)
        if effective < 2:
            raise InvalidActionError(
                f"cannot cut dimension {dimension.name} of width {span}"
            )
        # Distribute the span as evenly as integer arithmetic allows.
        base = span // effective
        remainder = span % effective
        ranges = []
        start = lo
        for i in range(effective):
            width = base + (1 if i < remainder else 0)
            ranges.append((start, start + width))
            start += width
        return ranges

    def _child_from_box(self, ranges: Ranges, prune_redundant: bool) -> "Node":
        rules = [r for r in self.rules if r.intersects(ranges)]
        if prune_redundant:
            rules = remove_redundant_rules(rules, ranges)
        return Node(
            ranges=ranges,
            rules=rules,
            depth=self.depth + 1,
            partition_state=self.partition_state,
            efficuts_category=self.efficuts_category,
        )

    def _apply_cut(self, action: CutAction, prune_redundant: bool) -> List["Node"]:
        sub_ranges = self.cut_ranges(action.dimension, action.num_cuts)
        children = []
        for sub in sub_ranges:
            box = list(self.ranges)
            box[int(action.dimension)] = sub
            children.append(self._child_from_box(tuple(box), prune_redundant))
        return children

    def _apply_multicut(self, action: MultiCutAction,
                        prune_redundant: bool) -> List["Node"]:
        per_dim_ranges = []
        for dim, n in action.cuts:
            per_dim_ranges.append((dim, self.cut_ranges(dim, n)))
        children = []
        for combo in itertools.product(*[ranges for _, ranges in per_dim_ranges]):
            box = list(self.ranges)
            for (dim, _), sub in zip(per_dim_ranges, combo):
                box[int(dim)] = sub
            children.append(self._child_from_box(tuple(box), prune_redundant))
        return children

    def _apply_split(self, action: SplitAction, prune_redundant: bool) -> List["Node"]:
        lo, hi = self.ranges[int(action.dimension)]
        point = action.split_point
        if not lo < point < hi:
            raise InvalidActionError(
                f"split point {point} outside node range [{lo}, {hi})"
            )
        children = []
        for sub in ((lo, point), (point, hi)):
            box = list(self.ranges)
            box[int(action.dimension)] = sub
            children.append(self._child_from_box(tuple(box), prune_redundant))
        return children

    # -- partition-family actions ---------------------------------------- #

    def _apply_partition(self, action: PartitionAction) -> List["Node"]:
        small, large = [], []
        for rule in self.rules:
            if rule.coverage_fraction(action.dimension) > action.threshold:
                large.append(rule)
            else:
                small.append(rule)
        if not small or not large:
            raise InvalidActionError(
                "partition does not separate rules into two non-empty groups"
            )
        threshold_level = _nearest_level(action.threshold)
        dim = int(action.dimension)
        children = []
        for rules, bounds in (
            (small, (0, threshold_level)),
            (large, (threshold_level, len(PARTITION_LEVELS) - 1)),
        ):
            state = list(self.partition_state)
            state[dim] = bounds
            children.append(
                Node(
                    ranges=self.ranges,
                    rules=list(rules),
                    depth=self.depth + 1,
                    partition_state=tuple(state),
                    efficuts_category=self.efficuts_category,
                )
            )
        return children

    def _apply_efficuts_partition(self,
                                  action: EffiCutsPartitionAction) -> List["Node"]:
        categories = efficuts_categories(self.rules, action.largeness_threshold)
        non_empty = [(idx, rules) for idx, rules in enumerate(categories) if rules]
        if len(non_empty) < 2:
            raise InvalidActionError(
                "EffiCuts partition produces fewer than two non-empty categories"
            )
        children = []
        for idx, rules in non_empty:
            children.append(
                Node(
                    ranges=self.ranges,
                    rules=list(rules),
                    depth=self.depth + 1,
                    partition_state=self.partition_state,
                    efficuts_category=idx,
                )
            )
        return children


def _nearest_level(threshold: float) -> int:
    """Index of the discrete partition level closest to ``threshold``."""
    return min(
        range(len(PARTITION_LEVELS)),
        key=lambda i: abs(PARTITION_LEVELS[i] - threshold),
    )


def efficuts_categories(rules: Sequence[Rule],
                        largeness_threshold: float = 0.5) -> List[List[Rule]]:
    """Group rules into EffiCuts separable categories.

    A rule is "large" in a dimension if its coverage fraction there exceeds
    the threshold.  The category index is the bitmask of large dimensions, so
    rules with the same shape end up in the same tree and replication from
    wildcard-ish fields is avoided.
    """
    num_categories = 1 << len(DIMENSIONS)
    buckets: List[List[Rule]] = [[] for _ in range(num_categories)]
    for rule in rules:
        mask = 0
        for dim in DIMENSIONS:
            if rule.coverage_fraction(dim) > largeness_threshold:
                mask |= 1 << int(dim)
        buckets[mask].append(rule)
    return buckets


def remove_redundant_rules(rules: Sequence[Rule], box: Ranges) -> List[Rule]:
    """Drop rules that can never win inside ``box``.

    Within the box, a rule is redundant if a higher-priority rule's
    intersection with the box fully covers its own intersection with the box.
    This is the standard rule-overlap pruning used by HiCuts-family builders;
    it only removes rules that are unreachable, so classification results are
    unchanged.
    """
    kept: List[Rule] = []
    clipped_kept: List[Rule] = []
    for rule in rules:  # rules arrive highest priority first
        clipped = rule.clip_to(box)
        if clipped is None:
            continue
        if any(higher.covers(clipped) for higher in clipped_kept):
            continue
        kept.append(rule)
        clipped_kept.append(clipped)
    return kept
