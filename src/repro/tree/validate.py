"""Correctness validation of decision trees against linear search.

Decision trees for packet classification must be *exact*: for every possible
packet, the tree returns the same highest-priority rule as a linear scan of
the classifier.  These helpers check that property over sampled packets and
over adversarial corner packets (rule boundaries), which is where off-by-one
errors in range handling show up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.rules.fields import DIMENSIONS, FIELD_RANGES
from repro.rules.packet import Packet
from repro.rules.ruleset import RuleSet
from repro.tree.lookup import TreeClassifier
from repro.tree.tree import DecisionTree


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of validating a classifier against ground truth."""

    num_packets: int
    num_mismatches: int
    mismatching_packets: List[Packet]

    @property
    def is_correct(self) -> bool:
        return self.num_mismatches == 0


def corner_packets(ruleset: RuleSet, limit: Optional[int] = None) -> List[Packet]:
    """Packets at rule-range corners: lo and hi-1 of every rule's box.

    These are the values where half-open/closed confusion, rounding in equal
    cuts, or redundant-rule pruning bugs change the classification result.
    """
    packets: List[Packet] = []
    for rule in ruleset:
        lows = tuple(lo for lo, _ in rule.ranges)
        highs = tuple(hi - 1 for _, hi in rule.ranges)
        packets.append(Packet.from_values(lows))
        packets.append(Packet.from_values(highs))
        if limit is not None and len(packets) >= limit:
            break
    return packets[:limit] if limit is not None else packets


def validate_classifier(
    classifier: TreeClassifier,
    packets: Optional[Sequence[Packet]] = None,
    num_random_packets: int = 200,
    include_corners: bool = True,
    seed: int = 0,
) -> ValidationReport:
    """Validate a (multi-)tree classifier against linear search."""
    ruleset = classifier.ruleset
    sample: List[Packet] = list(packets) if packets is not None else []
    if not sample:
        sample.extend(ruleset.sample_packets(num_random_packets, seed=seed))
        if include_corners:
            sample.extend(corner_packets(ruleset, limit=2 * len(ruleset)))
    mismatching = []
    for packet in sample:
        expected = ruleset.classify(packet)
        actual = classifier.classify(packet)
        expected_prio = expected.priority if expected else None
        actual_prio = actual.priority if actual else None
        if expected_prio != actual_prio:
            mismatching.append(packet)
    return ValidationReport(
        num_packets=len(sample),
        num_mismatches=len(mismatching),
        mismatching_packets=mismatching,
    )


def validate_tree(
    tree: DecisionTree,
    packets: Optional[Sequence[Packet]] = None,
    num_random_packets: int = 200,
    seed: int = 0,
) -> ValidationReport:
    """Validate a single tree (no partitioning) against linear search."""
    classifier = TreeClassifier(tree.ruleset, [tree])
    return validate_classifier(
        classifier, packets=packets, num_random_packets=num_random_packets, seed=seed
    )


def assert_tree_invariants(tree: DecisionTree) -> None:
    """Check structural invariants of a completed tree.

    * Every internal node's children tile (cuts) or partition (partitions)
      its parent's rules: each parent rule intersecting the parent box
      appears in at least one child.
    * Child depth is parent depth + 1.
    * Leaves respect the leaf threshold unless truncated.

    Raises AssertionError on violation; used by tests and property checks.
    """
    for node in tree.internal_nodes():
        assert node.children, f"internal node {node.node_id} has no children"
        for child in node.children:
            assert child.depth == node.depth + 1, "child depth mismatch"
        if node.is_partition_node:
            child_rule_total = sum(child.num_rules for child in node.children)
            assert child_rule_total == node.num_rules, (
                "partition must distribute every parent rule exactly once"
            )
        else:
            for rule in node.rules:
                if any(rule in child.rules for child in node.children):
                    continue
                intersecting = [
                    child for child in node.children if rule.intersects(child.ranges)
                ]
                assert intersecting, (
                    "rule intersects the parent box but no child box"
                )
                assert all(
                    _is_pruned_redundant(rule, child) for child in intersecting
                ), "cut lost a rule that is not redundant in some child"
    for leaf in tree.leaves():
        if not leaf.forced_leaf:
            assert leaf.num_rules <= tree.leaf_threshold, (
                f"non-truncated leaf {leaf.node_id} exceeds the leaf threshold"
            )


def _is_pruned_redundant(rule, child) -> bool:
    """True if ``rule`` intersects the child box but was legally pruned."""
    clipped = rule.clip_to(child.ranges)
    if clipped is None:
        return True
    for other in child.rules:
        if other.priority > rule.priority:
            other_clipped = other.clip_to(child.ranges)
            if other_clipped is not None and other_clipped.covers(clipped):
                return True
    return False
