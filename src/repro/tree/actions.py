"""Tree-building actions: cuts and partitions.

The paper's environment exposes two kinds of action on a tree node:

* a **cut** splits the node's box along one dimension into a fixed number of
  equal sub-ranges (2, 4, 8, 16 or 32), creating one child per sub-range;
* a **partition** splits the node's *rules* into disjoint subsets (by a
  per-dimension coverage threshold, or by the EffiCuts separability
  categories), creating one child per non-empty subset with the same box.

Baselines additionally use multi-dimensional cuts (HyperCuts) and
unequal "split" cuts at an arbitrary point (HyperSplit / CutSplit), so the
tree engine supports those action types as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

from repro.exceptions import InvalidActionError
from repro.rules.fields import Dimension

#: The cut fan-outs NeuroCuts may choose from (Section 4.1).
CUT_SIZES: Tuple[int, ...] = (2, 4, 8, 16, 32)

#: Discrete coverage-threshold levels for the simple partition action
#: (Appendix A: 0 %, 2 %, 4 %, 8 %, 16 %, 32 %, 64 %, 100 %).
PARTITION_LEVELS: Tuple[float, ...] = (0.0, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1.0)


class Action:
    """Marker base class for all tree-building actions."""

    def describe(self) -> str:
        """Short human-readable description used in logs and visualisations."""
        raise NotImplementedError


@dataclass(frozen=True)
class CutAction(Action):
    """Equal-width cut of one dimension into ``num_cuts`` sub-ranges."""

    dimension: Dimension
    num_cuts: int

    def __post_init__(self) -> None:
        if self.num_cuts < 2:
            raise InvalidActionError(
                f"cut must create at least 2 children, got {self.num_cuts}"
            )

    def describe(self) -> str:
        return f"cut({self.dimension.name}, {self.num_cuts})"


@dataclass(frozen=True)
class MultiCutAction(Action):
    """Simultaneous equal-width cuts along several dimensions (HyperCuts).

    The children enumerate the cross product of the per-dimension sub-ranges.
    """

    cuts: Tuple[Tuple[Dimension, int], ...]

    def __post_init__(self) -> None:
        if not self.cuts:
            raise InvalidActionError("multi-cut needs at least one dimension")
        dims = [d for d, _ in self.cuts]
        if len(dims) != len(set(dims)):
            raise InvalidActionError("multi-cut dimensions must be distinct")
        for _, n in self.cuts:
            if n < 2:
                raise InvalidActionError("each multi-cut dimension needs >= 2 cuts")

    @property
    def total_children(self) -> int:
        total = 1
        for _, n in self.cuts:
            total *= n
        return total

    def describe(self) -> str:
        inner = ", ".join(f"{d.name}:{n}" for d, n in self.cuts)
        return f"multicut({inner})"


@dataclass(frozen=True)
class SplitAction(Action):
    """Binary split of one dimension at an arbitrary point (HyperSplit-style).

    Creates exactly two children: ``[lo, split_point)`` and
    ``[split_point, hi)``.
    """

    dimension: Dimension
    split_point: int

    def describe(self) -> str:
        return f"split({self.dimension.name}, {self.split_point})"


@dataclass(frozen=True)
class PartitionAction(Action):
    """Simple partition: separate rules by coverage fraction in one dimension.

    Rules whose coverage fraction along ``dimension`` is strictly greater
    than ``threshold`` go into the "large" child; the rest go into the
    "small" child.  Both children keep the parent's box.
    """

    dimension: Dimension
    threshold: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise InvalidActionError(
                f"partition threshold must be in [0, 1], got {self.threshold}"
            )

    def describe(self) -> str:
        return f"partition({self.dimension.name}, >{self.threshold:.0%})"


@dataclass(frozen=True)
class EffiCutsPartitionAction(Action):
    """Partition rules into EffiCuts separable categories.

    EffiCuts groups rules by which subset of dimensions they are "large" in
    (coverage fraction above ``largeness_threshold``), building one tree per
    non-empty category.  Used as a top-node partition action in NeuroCuts
    (Section 4.2, "Incorporating existing heuristics").
    """

    largeness_threshold: float = 0.5

    def describe(self) -> str:
        return f"efficuts_partition(>{self.largeness_threshold:.0%})"


def is_partition(action: Action) -> bool:
    """Return True for actions that partition rules rather than cut space."""
    return isinstance(action, (PartitionAction, EffiCutsPartitionAction))


def is_cut(action: Action) -> bool:
    """Return True for actions that cut a node's box."""
    return isinstance(action, (CutAction, MultiCutAction, SplitAction))
