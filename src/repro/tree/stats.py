"""Classification-time and memory-footprint statistics.

These are the two objectives NeuroCuts optimises (Section 4.2, Eqs. 1–4):

* classification time ``T_n`` of a subtree — for a cut node, the node's own
  cost plus the **max** over its children; for a partition node, the node's
  own cost plus the **sum** over its children (every partition tree must be
  queried).
* memory footprint ``S_n`` — the node's own bytes plus the **sum** over its
  children for both action kinds.

The memory model charges a fixed header per node, a pointer per child, and a
pointer per rule stored in a leaf.  The exact constants matter less than
their being applied uniformly across every algorithm; the figure benchmarks
compare algorithms under the identical model, like the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.obs.serialize import stable_dict
from repro.tree.node import Node
from repro.tree.tree import DecisionTree

#: Bytes charged for a node's fixed header (ranges, action descriptor).
NODE_HEADER_BYTES = 16
#: Bytes charged per child pointer at an internal node.
CHILD_POINTER_BYTES = 4
#: Bytes charged per rule reference stored in a leaf.
RULE_POINTER_BYTES = 16
#: Per-node traversal cost in "memory accesses" (the time unit).
NODE_ACCESS_COST = 1


@dataclass(frozen=True)
class TreeStats:
    """Aggregate statistics of one decision tree.

    Attributes:
        classification_time: worst-case accesses to classify a packet
            (Eq. 1/3 evaluated at the root).
        memory_bytes: total bytes of the tree under the memory model.
        bytes_per_rule: memory bytes divided by the number of classifier rules.
        num_nodes: total node count.
        num_leaves: leaf count.
        depth: maximum leaf depth.
        max_leaf_rules: largest rule count in any leaf.
        rule_replication: total rule references in leaves divided by the
            number of distinct rules (1.0 means no replication).
    """

    classification_time: int
    memory_bytes: int
    bytes_per_rule: float
    num_nodes: int
    num_leaves: int
    depth: int
    max_leaf_rules: int
    rule_replication: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for tabulation (stable keys, JSON-native values)."""
        return stable_dict({
            "classification_time": self.classification_time,
            "memory_bytes": self.memory_bytes,
            "bytes_per_rule": self.bytes_per_rule,
            "num_nodes": self.num_nodes,
            "num_leaves": self.num_leaves,
            "depth": self.depth,
            "max_leaf_rules": self.max_leaf_rules,
            "rule_replication": self.rule_replication,
        })


def node_time_cost(node: Node) -> int:
    """Per-node traversal cost (``t_n`` in the paper)."""
    return NODE_ACCESS_COST


def node_space_cost(node: Node) -> int:
    """Per-node memory cost (``s_n`` in the paper)."""
    cost = NODE_HEADER_BYTES + CHILD_POINTER_BYTES * len(node.children)
    if node.is_leaf:
        cost += RULE_POINTER_BYTES * node.num_rules
    return cost


def subtree_time(node: Node) -> int:
    """Worst-case classification time of the subtree rooted at ``node``.

    Implements Eq. 1 (cut: max over children) and Eq. 3 (partition: sum over
    children) recursively, iteratively to avoid recursion-depth limits on
    deep trees.
    """
    # Post-order iterative evaluation.
    times: Dict[int, int] = {}
    stack = [(node, False)]
    while stack:
        current, expanded = stack.pop()
        if current.is_leaf:
            times[current.node_id] = node_time_cost(current)
            continue
        if not expanded:
            stack.append((current, True))
            stack.extend((child, False) for child in current.children)
            continue
        child_times = [times[c.node_id] for c in current.children]
        if current.is_partition_node:
            combined = sum(child_times)
        else:
            combined = max(child_times)
        times[current.node_id] = node_time_cost(current) + combined
    return times[node.node_id]


def subtree_space(node: Node) -> int:
    """Memory footprint in bytes of the subtree rooted at ``node`` (Eq. 2/4)."""
    total = 0
    stack = [node]
    while stack:
        current = stack.pop()
        total += node_space_cost(current)
        stack.extend(current.children)
    return total


def compute_stats(tree: DecisionTree) -> TreeStats:
    """Compute the full statistics bundle for one tree."""
    time = subtree_time(tree.root)
    space = subtree_space(tree.root)
    num_rules = len(tree.ruleset)
    leaf_rule_refs = sum(leaf.num_rules for leaf in tree.leaves())
    distinct_rules = max(1, len(tree.root.rules))
    return TreeStats(
        classification_time=time,
        memory_bytes=space,
        bytes_per_rule=space / max(1, num_rules),
        num_nodes=tree.num_nodes(),
        num_leaves=tree.num_leaves(),
        depth=tree.depth(),
        max_leaf_rules=tree.max_leaf_rules(),
        rule_replication=leaf_rule_refs / distinct_rules,
    )
