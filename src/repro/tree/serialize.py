"""Decision-tree serialization.

Trees are converted to plain dictionaries (and JSON) so trained NeuroCuts
trees can be saved, inspected, diffed between runs, or loaded into another
process for deployment without retraining.  Rules are referenced by their
priority, which is unique inside a :class:`~repro.rules.ruleset.RuleSet`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.exceptions import TreeError
from repro.rules.fields import Dimension
from repro.rules.ruleset import RuleSet
from repro.tree.actions import (
    Action,
    CutAction,
    EffiCutsPartitionAction,
    MultiCutAction,
    PartitionAction,
    SplitAction,
)
from repro.tree.node import Node
from repro.tree.tree import DecisionTree


def action_to_dict(action: Action) -> Dict:
    """Serialise an action to a plain dict."""
    if isinstance(action, CutAction):
        return {"type": "cut", "dimension": int(action.dimension),
                "num_cuts": action.num_cuts}
    if isinstance(action, MultiCutAction):
        return {"type": "multicut",
                "cuts": [[int(d), n] for d, n in action.cuts]}
    if isinstance(action, SplitAction):
        return {"type": "split", "dimension": int(action.dimension),
                "split_point": action.split_point}
    if isinstance(action, PartitionAction):
        return {"type": "partition", "dimension": int(action.dimension),
                "threshold": action.threshold}
    if isinstance(action, EffiCutsPartitionAction):
        return {"type": "efficuts_partition",
                "largeness_threshold": action.largeness_threshold}
    raise TreeError(f"cannot serialise action of type {type(action)!r}")


def action_from_dict(data: Dict) -> Action:
    """Reconstruct an action from its dict form."""
    kind = data["type"]
    if kind == "cut":
        return CutAction(Dimension(data["dimension"]), data["num_cuts"])
    if kind == "multicut":
        return MultiCutAction(tuple((Dimension(d), n) for d, n in data["cuts"]))
    if kind == "split":
        return SplitAction(Dimension(data["dimension"]), data["split_point"])
    if kind == "partition":
        return PartitionAction(Dimension(data["dimension"]), data["threshold"])
    if kind == "efficuts_partition":
        return EffiCutsPartitionAction(data["largeness_threshold"])
    raise TreeError(f"unknown action type {kind!r}")


def _node_to_dict(node: Node) -> Dict:
    return {
        "ranges": [list(r) for r in node.ranges],
        "rule_priorities": [rule.priority for rule in node.rules],
        "depth": node.depth,
        "forced_leaf": node.forced_leaf,
        "efficuts_category": node.efficuts_category,
        "partition_state": [list(p) for p in node.partition_state],
        "action": action_to_dict(node.action) if node.action else None,
        "children": [_node_to_dict(child) for child in node.children],
    }


def tree_to_dict(tree: DecisionTree) -> Dict:
    """Serialise a whole tree (structure + parameters) to a dict."""
    return {
        "leaf_threshold": tree.leaf_threshold,
        "max_depth": tree.max_depth,
        "ruleset_name": tree.ruleset.name,
        "num_rules": len(tree.ruleset),
        "root": _node_to_dict(tree.root),
    }


def _node_from_dict(data: Dict, rules_by_priority: Dict[int, object]) -> Node:
    node = Node(
        ranges=tuple(tuple(r) for r in data["ranges"]),
        rules=[rules_by_priority[p] for p in data["rule_priorities"]],
        depth=data["depth"],
        partition_state=tuple(tuple(p) for p in data["partition_state"]),
        efficuts_category=data["efficuts_category"],
        forced_leaf=data["forced_leaf"],
    )
    if data["action"] is not None:
        node.action = action_from_dict(data["action"])
        node.children = [
            _node_from_dict(child, rules_by_priority) for child in data["children"]
        ]
    return node


def tree_from_dict(data: Dict, ruleset: RuleSet) -> DecisionTree:
    """Reconstruct a tree against the classifier it was built for."""
    rules_by_priority = {rule.priority: rule for rule in ruleset}
    missing = set()
    for priority in _collect_priorities(data["root"]):
        if priority not in rules_by_priority:
            missing.add(priority)
    if missing:
        raise TreeError(
            f"serialized tree references unknown rule priorities: {sorted(missing)[:5]}"
        )
    tree = DecisionTree(
        ruleset,
        leaf_threshold=data["leaf_threshold"],
        max_depth=data["max_depth"],
    )
    tree.root = _node_from_dict(data["root"], rules_by_priority)
    tree._frontier = []
    return tree


def _collect_priorities(node_data: Dict) -> List[int]:
    priorities = list(node_data["rule_priorities"])
    for child in node_data["children"]:
        priorities.extend(_collect_priorities(child))
    return priorities


def save_tree(tree: DecisionTree, path: Union[str, Path]) -> None:
    """Write a tree to disk as JSON."""
    Path(path).write_text(json.dumps(tree_to_dict(tree)))


def load_tree(path: Union[str, Path], ruleset: RuleSet) -> DecisionTree:
    """Load a tree from JSON produced by :func:`save_tree`."""
    return tree_from_dict(json.loads(Path(path).read_text()), ruleset)
