"""The decision tree and its construction state machine.

A :class:`DecisionTree` starts as a single root node holding every rule and
the full header space.  Builders (NeuroCuts or the baseline heuristics)
repeatedly ask for the next unfinished node (depth-first order, as in
Algorithm 1's ``GrowTreeDFS``) and apply an action to it, until every leaf is
terminal — i.e. holds at most ``leaf_threshold`` rules — or construction is
truncated.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from repro.exceptions import InvalidActionError, TreeError
from repro.rules.fields import DIMENSIONS, FULL_SPACE, Ranges
from repro.rules.packet import Packet
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet
from repro.tree.actions import Action
from repro.tree.node import Node

#: Default maximum number of rules a terminal leaf may hold (binth in HiCuts).
DEFAULT_LEAF_THRESHOLD = 16


class DecisionTree:
    """A packet-classification decision tree under construction or complete.

    Args:
        ruleset: the classifier the tree is being built for.
        leaf_threshold: maximum rules per terminal leaf ("binth").
        max_depth: optional depth truncation; nodes at this depth are forced
            to become leaves even if they still hold too many rules.
        prune_redundant: whether to drop rules that cannot win inside a
            child's box when cutting (standard overlap pruning).
        root_ranges: box of the root node (defaults to the full 5-d space);
            partitioned classifiers build one tree per partition, each with
            the full space but a subset of the rules.
        rules: optional explicit rule list for the root (defaults to all
            rules of ``ruleset``).
    """

    def __init__(
        self,
        ruleset: RuleSet,
        leaf_threshold: int = DEFAULT_LEAF_THRESHOLD,
        max_depth: Optional[int] = None,
        prune_redundant: bool = True,
        root_ranges: Optional[Ranges] = None,
        rules: Optional[List[Rule]] = None,
    ) -> None:
        if leaf_threshold < 1:
            raise TreeError("leaf_threshold must be >= 1")
        self.ruleset = ruleset
        self.leaf_threshold = leaf_threshold
        self.max_depth = max_depth
        self.prune_redundant = prune_redundant
        root_rules = list(rules) if rules is not None else list(ruleset.rules)
        self.root = Node(
            ranges=root_ranges or FULL_SPACE,
            rules=root_rules,
            depth=0,
        )
        # Depth-first frontier of nodes that still need an action.
        self._frontier: List[Node] = []
        self._push_if_unfinished(self.root)
        self._num_actions = 0
        # Bumped on every structural change; compiled-engine caches key on it.
        self._version = 0

    # ------------------------------------------------------------------ #
    # Construction state machine
    # ------------------------------------------------------------------ #

    def _push_if_unfinished(self, node: Node) -> None:
        if node.is_terminal(self.leaf_threshold):
            return
        if self.max_depth is not None and node.depth >= self.max_depth:
            node.forced_leaf = True
            return
        self._frontier.append(node)

    @property
    def num_actions_taken(self) -> int:
        """How many actions have been applied so far."""
        return self._num_actions

    @property
    def version(self) -> int:
        """Monotonic structural version (see :meth:`mark_modified`)."""
        return self._version

    def mark_modified(self) -> None:
        """Record a structural change so compiled caches are invalidated.

        Construction bumps the version automatically; callers mutating nodes
        directly (e.g. incremental rule updates) must call this themselves.
        """
        self._version += 1

    def current_node(self) -> Optional[Node]:
        """The next node to act on (DFS order), or None if the tree is done."""
        while self._frontier:
            node = self._frontier[-1]
            if node.is_leaf and not node.is_terminal(self.leaf_threshold):
                return node
            self._frontier.pop()
        return None

    def is_complete(self) -> bool:
        """True once every leaf is terminal (or truncated)."""
        return self.current_node() is None

    def apply_action(self, action: Action) -> List[Node]:
        """Apply an action to the current node and advance the frontier.

        Returns the children created.  Raises :class:`TreeError` if the tree
        is already complete.
        """
        node = self.current_node()
        if node is None:
            raise TreeError("tree construction is already complete")
        self._frontier.pop()
        children = node.apply(action, prune_redundant=self.prune_redundant)
        # Push children in reverse so the first child is processed next (DFS).
        for child in reversed(children):
            self._push_if_unfinished(child)
        self._num_actions += 1
        self._version += 1
        return children

    def truncate(self) -> None:
        """Force every remaining unfinished node to become a leaf.

        Used for rollout truncation (Section 5.1): a partially built tree is
        still a valid classifier, just a poor one.
        """
        while self._frontier:
            node = self._frontier.pop()
            if node.is_leaf:
                node.forced_leaf = True
        self._version += 1

    # ------------------------------------------------------------------ #
    # Traversal and inspection
    # ------------------------------------------------------------------ #

    def nodes(self) -> Iterator[Node]:
        """Yield every node in the tree, depth-first pre-order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def leaves(self) -> Iterator[Node]:
        """Yield every leaf node."""
        for node in self.nodes():
            if node.is_leaf:
                yield node

    def internal_nodes(self) -> Iterator[Node]:
        """Yield every node that has an action applied."""
        for node in self.nodes():
            if not node.is_leaf:
                yield node

    def num_nodes(self) -> int:
        """Total number of nodes in the tree."""
        return sum(1 for _ in self.nodes())

    def num_leaves(self) -> int:
        """Total number of leaf nodes."""
        return sum(1 for _ in self.leaves())

    def depth(self) -> int:
        """Maximum leaf depth (the paper's classification-time metric)."""
        return max((node.depth for node in self.leaves()), default=0)

    def nodes_per_level(self) -> List[int]:
        """Number of nodes at each depth (Figure 5's y-axis)."""
        counts: List[int] = []
        for node in self.nodes():
            while len(counts) <= node.depth:
                counts.append(0)
            counts[node.depth] += 1
        return counts

    def max_leaf_rules(self) -> int:
        """Largest number of rules held by any leaf."""
        return max((leaf.num_rules for leaf in self.leaves()), default=0)

    def has_overflowing_leaves(self) -> bool:
        """True if truncation left leaves that exceed the leaf threshold."""
        return any(leaf.num_rules > self.leaf_threshold for leaf in self.leaves())

    # ------------------------------------------------------------------ #
    # Classification
    # ------------------------------------------------------------------ #

    def classify(self, packet: Packet) -> Optional[Rule]:
        """Classify a packet by walking the tree; returns the matched rule."""
        best, _ = self._classify_node(self.root, packet.as_tuple())
        return best

    def classify_with_depth(self, packet: Packet) -> Tuple[Optional[Rule], int]:
        """Classify a packet and also report how many tree levels were visited."""
        return self._classify_node(self.root, packet.as_tuple())

    def _classify_node(self, node: Node,
                       values: Tuple[int, ...]) -> Tuple[Optional[Rule], int]:
        if node.is_leaf:
            for rule in node.rules:  # highest priority first
                if all(lo <= v < hi for v, (lo, hi) in zip(values, rule.ranges)):
                    return rule, 1
            return None, 1
        if node.is_partition_node:
            # Every partition child must be consulted; take the best match.
            best: Optional[Rule] = None
            total_depth = 1
            for child in node.children:
                match, depth = self._classify_node(child, values)
                total_depth += depth
                if match is not None and (best is None or match.priority > best.priority):
                    best = match
            return best, total_depth
        # Cut node: exactly one child's box contains the packet.
        for child in node.children:
            if child.contains_packet(values):
                match, depth = self._classify_node(child, values)
                return match, depth + 1
        return None, 1


def build_with_policy(
    ruleset: RuleSet,
    choose_action: Callable[[Node], Action],
    leaf_threshold: int = DEFAULT_LEAF_THRESHOLD,
    max_depth: Optional[int] = None,
    max_actions: Optional[int] = None,
    prune_redundant: bool = True,
) -> DecisionTree:
    """Build a complete tree by repeatedly applying a node -> action policy.

    This is the shared driver used by the baseline heuristics: the policy
    callable inspects a node and returns the action to apply to it.
    """
    tree = DecisionTree(
        ruleset,
        leaf_threshold=leaf_threshold,
        max_depth=max_depth,
        prune_redundant=prune_redundant,
    )
    while not tree.is_complete():
        if max_actions is not None and tree.num_actions_taken >= max_actions:
            tree.truncate()
            break
        node = tree.current_node()
        assert node is not None
        action = choose_action(node)
        try:
            tree.apply_action(action)
        except InvalidActionError:
            # The policy produced an inapplicable action (e.g. a partition
            # that does not separate anything); make the node a leaf instead.
            # apply_action already removed the node from the frontier.
            node.forced_leaf = True
    return tree
