"""Packet classification over one or many decision trees.

Rule partitioning (EffiCuts-style or NeuroCuts' top-node partition action)
produces *several* trees for one classifier.  A packet must be classified
against every tree and the highest-priority match wins (Section 2.2).  The
:class:`TreeClassifier` wraps that logic and exposes aggregate time/space
statistics consistent with :mod:`repro.tree.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.rules.packet import Packet
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet
from repro.tree.stats import TreeStats, compute_stats
from repro.tree.tree import DecisionTree


@dataclass(frozen=True)
class ClassifierStats:
    """Aggregate statistics over all trees of a (possibly partitioned) classifier."""

    classification_time: int
    memory_bytes: int
    bytes_per_rule: float
    num_trees: int
    num_nodes: int
    depth: int

    def as_dict(self) -> dict:
        return {
            "classification_time": self.classification_time,
            "memory_bytes": self.memory_bytes,
            "bytes_per_rule": self.bytes_per_rule,
            "num_trees": self.num_trees,
            "num_nodes": self.num_nodes,
            "depth": self.depth,
        }


class TreeClassifier:
    """A complete classifier made of one or more decision trees."""

    def __init__(self, ruleset: RuleSet, trees: Sequence[DecisionTree],
                 name: str = "") -> None:
        if not trees:
            raise ValueError("a TreeClassifier needs at least one tree")
        self.ruleset = ruleset
        self.trees: List[DecisionTree] = list(trees)
        self.name = name or ruleset.name

    def classify(self, packet: Packet) -> Optional[Rule]:
        """Classify against every tree and return the best-priority match."""
        best: Optional[Rule] = None
        for tree in self.trees:
            match = tree.classify(packet)
            if match is not None and (best is None or match.priority > best.priority):
                best = match
        return best

    def classify_batch(self, packets: Iterable[Packet]) -> List[Optional[Rule]]:
        """Classify a sequence of packets."""
        return [self.classify(p) for p in packets]

    def per_tree_stats(self) -> List[TreeStats]:
        """Statistics of each individual tree."""
        return [compute_stats(tree) for tree in self.trees]

    def stats(self) -> ClassifierStats:
        """Aggregate statistics of the whole classifier.

        Classification time sums across trees (each is queried), memory sums,
        and bytes-per-rule is normalised by the original rule count.
        """
        per_tree = self.per_tree_stats()
        total_time = sum(s.classification_time for s in per_tree)
        total_space = sum(s.memory_bytes for s in per_tree)
        return ClassifierStats(
            classification_time=total_time,
            memory_bytes=total_space,
            bytes_per_rule=total_space / max(1, len(self.ruleset)),
            num_trees=len(self.trees),
            num_nodes=sum(s.num_nodes for s in per_tree),
            depth=max(s.depth for s in per_tree),
        )

    def validate(self, packets: Iterable[Packet]) -> Tuple[int, int]:
        """Compare against linear search over a packet sample.

        Returns ``(num_checked, num_mismatches)``; a correct classifier always
        reports zero mismatches.
        """
        checked = 0
        mismatches = 0
        for packet in packets:
            expected = self.ruleset.classify(packet)
            actual = self.classify(packet)
            checked += 1
            expected_prio = expected.priority if expected else None
            actual_prio = actual.priority if actual else None
            if expected_prio != actual_prio:
                mismatches += 1
        return checked, mismatches
