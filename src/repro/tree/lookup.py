"""Packet classification over one or many decision trees.

Rule partitioning (EffiCuts-style or NeuroCuts' top-node partition action)
produces *several* trees for one classifier.  A packet must be classified
against every tree and the highest-priority match wins (Section 2.2).  The
:class:`TreeClassifier` wraps that logic and exposes aggregate time/space
statistics consistent with :mod:`repro.tree.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from repro.obs.serialize import stable_dict
from repro.rules.packet import Packet
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet
from repro.tree.stats import TreeStats, compute_stats
from repro.tree.tree import DecisionTree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.dispatch import CompiledClassifier

#: Batch size at or above which ``classify_batch`` auto-compiles; below it
#: the per-packet interpreter is cheaper than paying the compile.
AUTO_COMPILE_THRESHOLD = 64

#: Engine selection values accepted by :meth:`TreeClassifier.classify_batch`.
BATCH_ENGINES = ("auto", "compiled", "interpreter")


@dataclass(frozen=True)
class ClassifierStats:
    """Aggregate statistics over all trees of a (possibly partitioned) classifier."""

    classification_time: int
    memory_bytes: int
    bytes_per_rule: float
    num_trees: int
    num_nodes: int
    depth: int

    def as_dict(self) -> dict:
        return stable_dict({
            "classification_time": self.classification_time,
            "memory_bytes": self.memory_bytes,
            "bytes_per_rule": self.bytes_per_rule,
            "num_trees": self.num_trees,
            "num_nodes": self.num_nodes,
            "depth": self.depth,
        })


class TreeClassifier:
    """A complete classifier made of one or more decision trees."""

    def __init__(self, ruleset: RuleSet, trees: Sequence[DecisionTree],
                 name: str = "") -> None:
        if not trees:
            raise ValueError("a TreeClassifier needs at least one tree")
        self.ruleset = ruleset
        self.trees: List[DecisionTree] = list(trees)
        self.name = name or ruleset.name
        self._compiled: Optional["CompiledClassifier"] = None
        self._compiled_versions: Optional[Tuple[int, ...]] = None

    def classify(self, packet: Packet) -> Optional[Rule]:
        """Classify against every tree and return the best-priority match."""
        best: Optional[Rule] = None
        for tree in self.trees:
            match = tree.classify(packet)
            if match is not None and (best is None or match.priority > best.priority):
                best = match
        return best

    def classify_batch(self, packets: Iterable[Packet],
                       engine: str = "auto") -> List[Optional[Rule]]:
        """Classify a sequence of packets.

        ``engine`` selects the execution path:

        * ``"auto"`` (default) — batches of at least
          :data:`AUTO_COMPILE_THRESHOLD` packets go through the compiled
          engine (compiling on first use, cached across calls); smaller
          batches use the per-packet interpreter.
        * ``"compiled"`` — always use the compiled engine.
        * ``"interpreter"`` — always walk the Python node graph (the
          pre-engine behaviour; kept for tests and differential checks).
        """
        if engine not in BATCH_ENGINES:
            raise ValueError(
                f"engine must be one of {BATCH_ENGINES}, got {engine!r}"
            )
        packets = list(packets)
        if engine == "interpreter" or (
            engine == "auto" and len(packets) < AUTO_COMPILE_THRESHOLD
        ):
            return [self.classify(p) for p in packets]
        return self.compile().classify_batch(packets)

    # ------------------------------------------------------------------ #
    # Compiled engine
    # ------------------------------------------------------------------ #

    def compile(self, flow_cache_size: Optional[int] = None,
                backend: Optional[str] = None) -> "CompiledClassifier":
        """Compile this classifier for the dataplane engine.

        The compiled form is cached and reused until any underlying tree's
        structural version changes (construction steps or
        :meth:`~repro.tree.tree.DecisionTree.mark_modified` bump it), at
        which point the next call recompiles.  A flow cache attached here
        (or directly on the compiled object) survives cache-hit calls —
        ``flow_cache_size`` only creates a new cache when none is attached
        or the capacity changes — and is re-created empty on recompile.
        ``backend`` selects the traversal backend (a pure dispatch switch:
        a cached compiled form is retargeted in place, not recompiled).
        """
        from repro.engine.compile import compile_classifier

        versions = tuple(tree.version for tree in self.trees)
        if self._compiled is None or self._compiled_versions != versions:
            previous = self._compiled.flow_cache if self._compiled else None
            if flow_cache_size is None and previous is not None:
                # Preserve the caching configuration across recompiles; the
                # entries themselves are stale and must not carry over.
                flow_cache_size = previous.capacity
            self._compiled = compile_classifier(
                self, flow_cache_size=flow_cache_size,
                backend=backend if backend is not None else "numpy",
            )
            self._compiled_versions = versions
        else:
            if flow_cache_size is not None:
                existing = self._compiled.flow_cache
                if existing is None or existing.capacity != flow_cache_size:
                    self._compiled.attach_flow_cache(flow_cache_size)
            if backend is not None:
                self._compiled.set_backend(backend)
        return self._compiled

    def invalidate_compiled(self) -> None:
        """Drop the cached compiled form (next use recompiles)."""
        self._compiled = None
        self._compiled_versions = None

    def per_tree_stats(self) -> List[TreeStats]:
        """Statistics of each individual tree."""
        return [compute_stats(tree) for tree in self.trees]

    def stats(self) -> ClassifierStats:
        """Aggregate statistics of the whole classifier.

        Classification time sums across trees (each is queried), memory sums,
        and bytes-per-rule is normalised by the original rule count.
        """
        per_tree = self.per_tree_stats()
        total_time = sum(s.classification_time for s in per_tree)
        total_space = sum(s.memory_bytes for s in per_tree)
        return ClassifierStats(
            classification_time=total_time,
            memory_bytes=total_space,
            bytes_per_rule=total_space / max(1, len(self.ruleset)),
            num_trees=len(self.trees),
            num_nodes=sum(s.num_nodes for s in per_tree),
            depth=max(s.depth for s in per_tree),
        )

    def validate(self, packets: Iterable[Packet]) -> Tuple[int, int]:
        """Compare against linear search over a packet sample.

        Returns ``(num_checked, num_mismatches)``; a correct classifier always
        reports zero mismatches.
        """
        checked = 0
        mismatches = 0
        for packet in packets:
            expected = self.ruleset.classify(packet)
            actual = self.classify(packet)
            checked += 1
            expected_prio = expected.priority if expected else None
            actual_prio = actual.priority if actual else None
            if expected_prio != actual_prio:
                mismatches += 1
        return checked, mismatches
