"""Figure/table experiment runners.

One function per table or figure in the paper's evaluation section.  Each
returns a plain result object carrying the same rows/series the paper plots,
so the benchmark suite (and the examples) can print them and assert on their
shape.  Scale is controlled by an :class:`~repro.harness.scales.ExperimentScale`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines import (
    CutSplitBuilder,
    EffiCutsBuilder,
    HiCutsBuilder,
    HyperCutsBuilder,
)
from repro.baselines.base import TreeBuilder
from repro.classbench.suite import ClassifierSpec
from repro.metrics.summary import (
    ImprovementSummary,
    best_baseline,
    median_by_algorithm,
    summarize_improvements,
)
from repro.neurocuts.config import NeuroCutsConfig
from repro.neurocuts.trainer import NeuroCutsBuilder, NeuroCutsTrainer
from repro.neurocuts.visualize import TreeProfile, profile_tree
from repro.harness.parallel import parallel_map
from repro.harness.scales import ExperimentScale, TINY

#: Names of the four baseline algorithms in paper order.
BASELINE_NAMES: Tuple[str, ...] = ("HiCuts", "HyperCuts", "EffiCuts", "CutSplit")


def _baseline_builders(leaf_threshold: int) -> Dict[str, TreeBuilder]:
    return {
        "HiCuts": HiCutsBuilder(binth=leaf_threshold),
        "HyperCuts": HyperCutsBuilder(binth=leaf_threshold),
        "EffiCuts": EffiCutsBuilder(binth=leaf_threshold),
        "CutSplit": CutSplitBuilder(binth=leaf_threshold),
    }


# --------------------------------------------------------------------------- #
# Figures 8 and 9: algorithm comparison over the ClassBench suite
# --------------------------------------------------------------------------- #

@dataclass
class ComparisonResult:
    """Per-classifier metric values for several algorithms (Figures 8/9)."""

    metric: str
    values: Dict[str, Dict[str, float]]
    neurocuts_vs_best_baseline: ImprovementSummary
    medians: Dict[str, float]

    def rows(self) -> List[Tuple[str, Dict[str, float]]]:
        """Figure-style rows: (classifier label, per-algorithm values)."""
        labels = sorted(next(iter(self.values.values())).keys())
        return [
            (label, {alg: self.values[alg][label] for alg in self.values})
            for label in labels
        ]


def _build_suite_entry(task: Tuple[ClassifierSpec, int,
                                   NeuroCutsConfig, str]) -> Dict[str, float]:
    """Build one suite entry with every algorithm (one parallelisable task)."""
    import multiprocessing

    spec, leaf_threshold, neurocuts_config, metric = task
    if multiprocessing.current_process().daemon and (
            neurocuts_config.num_rollout_workers > 1
            or neurocuts_config.rollout_backend == "process"):
        # Suite-level pool workers are daemonic and cannot spawn a nested
        # rollout pool; fall back to serial in-process rollout collection.
        # Shard seeds depend on the worker count, so this changes the
        # training trajectory vs a non-parallel suite run — warn loudly.
        import warnings

        warnings.warn(
            f"suite parallelism downgraded NeuroCuts rollout collection for "
            f"{spec.label} to 1 serial worker (nested process pools are not "
            f"allowed); training results will differ from a "
            f"num_rollout_workers={neurocuts_config.num_rollout_workers} run",
            RuntimeWarning,
            stacklevel=2,
        )
        neurocuts_config = replace_config(
            neurocuts_config, num_rollout_workers=1, rollout_backend="serial"
        )
    builders: Dict[str, TreeBuilder] = dict(_baseline_builders(leaf_threshold))
    builders["NeuroCuts"] = NeuroCutsBuilder(config=neurocuts_config)
    ruleset = spec.materialize()
    return {
        name: float(getattr(builder.build_with_stats(ruleset).stats, metric))
        for name, builder in builders.items()
    }


def run_suite_comparison(
    scale: ExperimentScale = TINY,
    metric: str = "classification_time",
    neurocuts_config: Optional[NeuroCutsConfig] = None,
    specs: Optional[Sequence[ClassifierSpec]] = None,
    num_workers: Optional[int] = None,
) -> ComparisonResult:
    """Build every classifier with every algorithm and collect one metric.

    ``metric`` is ``"classification_time"`` (Figure 8) or ``"bytes_per_rule"``
    (Figure 9).  ``num_workers > 1`` distributes suite entries over the
    shared persistent process pool (one entry per task).
    """
    specs = list(specs) if specs is not None else scale.specs()
    neurocuts_config = neurocuts_config or scale.neurocuts_config()
    tasks = [(spec, scale.leaf_threshold, neurocuts_config, metric)
             for spec in specs]
    per_spec = parallel_map(_build_suite_entry, tasks, num_workers=num_workers)
    algorithms = (*BASELINE_NAMES, "NeuroCuts")
    values: Dict[str, Dict[str, float]] = {name: {} for name in algorithms}
    for spec, entry in zip(specs, per_spec):
        for name, value in entry.items():
            values[name][spec.label] = value
    baseline_min = best_baseline(values, exclude=("NeuroCuts",))
    summary = summarize_improvements(values["NeuroCuts"], baseline_min)
    return ComparisonResult(
        metric=metric,
        values=values,
        neurocuts_vs_best_baseline=summary,
        medians=median_by_algorithm(values),
    )


def run_figure8(scale: ExperimentScale = TINY,
                specs: Optional[Sequence[ClassifierSpec]] = None,
                num_workers: Optional[int] = None) -> ComparisonResult:
    """Figure 8: classification time, NeuroCuts time-optimised (c = 1)."""
    config = scale.neurocuts_config(
        time_space_coeff=1.0, partition_mode="none", reward_scaling="linear"
    )
    return run_suite_comparison(
        scale, metric="classification_time", neurocuts_config=config,
        specs=specs, num_workers=num_workers,
    )


def run_figure9(scale: ExperimentScale = TINY,
                specs: Optional[Sequence[ClassifierSpec]] = None,
                num_workers: Optional[int] = None) -> ComparisonResult:
    """Figure 9: bytes per rule, NeuroCuts space-optimised (c = 0)."""
    config = scale.neurocuts_config(
        time_space_coeff=0.0, partition_mode="efficuts", reward_scaling="log"
    )
    return run_suite_comparison(
        scale, metric="bytes_per_rule", neurocuts_config=config,
        specs=specs, num_workers=num_workers,
    )


# --------------------------------------------------------------------------- #
# Figure 10: NeuroCuts with the EffiCuts partitioner vs EffiCuts
# --------------------------------------------------------------------------- #

@dataclass
class EffiCutsImprovementResult:
    """Per-classifier space/time improvements over EffiCuts (Figure 10)."""

    space_improvement: ImprovementSummary
    time_improvement: ImprovementSummary
    neurocuts: Dict[str, Dict[str, float]]
    efficuts: Dict[str, Dict[str, float]]


def run_figure10(scale: ExperimentScale = TINY,
                 specs: Optional[Sequence[ClassifierSpec]] = None
                 ) -> EffiCutsImprovementResult:
    """Figure 10: NeuroCuts restricted to the EffiCuts partition action."""
    specs = list(specs) if specs is not None else scale.specs()
    efficuts = EffiCutsBuilder(binth=scale.leaf_threshold)
    config = scale.neurocuts_config(
        time_space_coeff=0.5, partition_mode="efficuts", reward_scaling="log"
    )
    neuro = NeuroCutsBuilder(config=config)
    ours = {"bytes_per_rule": {}, "classification_time": {}}
    theirs = {"bytes_per_rule": {}, "classification_time": {}}
    for spec in specs:
        ruleset = spec.materialize()
        ours_result = neuro.build_with_stats(ruleset)
        theirs_result = efficuts.build_with_stats(ruleset)
        for metric in ours:
            ours[metric][spec.label] = float(getattr(ours_result.stats, metric))
            theirs[metric][spec.label] = float(getattr(theirs_result.stats, metric))
    return EffiCutsImprovementResult(
        space_improvement=summarize_improvements(
            ours["bytes_per_rule"], theirs["bytes_per_rule"]
        ),
        time_improvement=summarize_improvements(
            ours["classification_time"], theirs["classification_time"]
        ),
        neurocuts=ours,
        efficuts=theirs,
    )


# --------------------------------------------------------------------------- #
# Figure 11: the time-space coefficient sweep
# --------------------------------------------------------------------------- #

@dataclass
class TradeoffPoint:
    """One point of Figure 11: medians at one value of c."""

    coefficient: float
    median_classification_time: float
    median_bytes_per_rule: float


@dataclass
class TradeoffResult:
    """The full Figure 11 sweep."""

    points: List[TradeoffPoint]

    def series(self) -> Dict[str, List[float]]:
        return {
            "c": [p.coefficient for p in self.points],
            "median_classification_time": [
                p.median_classification_time for p in self.points
            ],
            "median_bytes_per_rule": [p.median_bytes_per_rule for p in self.points],
        }


def run_figure11(scale: ExperimentScale = TINY,
                 coefficients: Sequence[float] = (0.0, 0.1, 0.5, 1.0),
                 specs: Optional[Sequence[ClassifierSpec]] = None) -> TradeoffResult:
    """Figure 11: sweep c with the simple partition mode and log scaling."""
    specs = list(specs) if specs is not None else scale.specs()
    points = []
    for c in coefficients:
        config = scale.neurocuts_config(
            time_space_coeff=float(c), partition_mode="simple", reward_scaling="log"
        )
        builder = NeuroCutsBuilder(config=config)
        times, spaces = [], []
        for spec in specs:
            ruleset = spec.materialize()
            result = builder.build_with_stats(ruleset)
            times.append(result.stats.classification_time)
            spaces.append(result.stats.bytes_per_rule)
        points.append(
            TradeoffPoint(
                coefficient=float(c),
                median_classification_time=float(np.median(times)),
                median_bytes_per_rule=float(np.median(spaces)),
            )
        )
    return TradeoffResult(points=points)


# --------------------------------------------------------------------------- #
# Figure 5: learning progress on a firewall rule set
# --------------------------------------------------------------------------- #

@dataclass
class LearningProgressResult:
    """Snapshots of the learnt tree shape across training (Figure 5)."""

    snapshots: List[TreeProfile]
    snapshot_iterations: List[int]
    best_depth_over_time: List[float]
    hicuts_profile: TreeProfile
    final_best_depth: float
    hicuts_depth: float


def run_figure5(scale: ExperimentScale = TINY, seed_name: str = "fw5",
                num_snapshots: int = 3) -> LearningProgressResult:
    """Figure 5: NeuroCuts learning to split an fw-family rule set vs HiCuts."""
    spec = next(s for s in scale.specs() if s.seed_name == seed_name) \
        if any(s.seed_name == seed_name for s in scale.specs()) \
        else ClassifierSpec(seed_name=seed_name, scale="1k",
                            num_rules=scale.scale_sizes[scale.scales[0]],
                            seed=scale.seed)
    ruleset = spec.materialize()
    config = scale.neurocuts_config(
        time_space_coeff=1.0, partition_mode="none", reward_scaling="linear"
    )
    snapshots: List[TreeProfile] = []
    snapshot_iters: List[int] = []
    best_depths: List[float] = []
    total_iterations = 0
    with NeuroCutsTrainer(ruleset, config) as trainer:
        # Train iteration by iteration so we can snapshot the policy's trees.
        while trainer._timesteps_total < config.max_timesteps_total:
            trainer.train(max_iterations=total_iterations + 1)
            total_iterations += 1
            best_depths.append(trainer.result().best_time)
            if len(snapshots) < num_snapshots:
                tree = trainer.sample_trees(1)[0]
                snapshots.append(profile_tree(tree))
                snapshot_iters.append(total_iterations)
        # Always snapshot the final best tree as the last entry.
        final = trainer.result()
    snapshots.append(profile_tree(final.best_tree))
    snapshot_iters.append(total_iterations)
    hicuts = HiCutsBuilder(binth=scale.leaf_threshold).build_with_stats(ruleset)
    hicuts_profile = profile_tree(hicuts.classifier.trees[0])
    return LearningProgressResult(
        snapshots=snapshots,
        snapshot_iterations=snapshot_iters,
        best_depth_over_time=best_depths,
        hicuts_profile=hicuts_profile,
        final_best_depth=final.best_time,
        hicuts_depth=float(hicuts.stats.classification_time),
    )


# --------------------------------------------------------------------------- #
# Figure 6: tree variations sampled from one stochastic policy
# --------------------------------------------------------------------------- #

@dataclass
class TreeVariationsResult:
    """Several trees sampled from a single trained policy (Figure 6)."""

    profiles: List[TreeProfile]
    objectives: List[float]


def run_figure6(scale: ExperimentScale = TINY, seed_name: str = "acl4",
                num_variations: int = 4) -> TreeVariationsResult:
    """Figure 6: sample multiple tree variations from one stochastic policy."""
    spec = ClassifierSpec(
        seed_name=seed_name, scale="1k",
        num_rules=scale.scale_sizes[scale.scales[0]], seed=scale.seed,
    )
    ruleset = spec.materialize()
    config = scale.neurocuts_config(
        time_space_coeff=1.0, partition_mode="none", reward_scaling="linear"
    )
    with NeuroCutsTrainer(ruleset, config) as trainer:
        trainer.train()
        trees = trainer.sample_trees(num_variations)
    profiles = [profile_tree(tree) for tree in trees]
    objectives = [float(profile.depth) for profile in profiles]
    return TreeVariationsResult(profiles=profiles, objectives=objectives)


# --------------------------------------------------------------------------- #
# Engine throughput: compiled dataplane vs the interpreter
# --------------------------------------------------------------------------- #

@dataclass
class ThroughputRow:
    """Throughput of one algorithm's classifier on one packet trace."""

    algorithm: str
    classifier: str
    interpreter_pps: float
    compiled_pps: float
    speedup: float
    compiled_memory_bytes: int
    num_subtrees: int


@dataclass
class ThroughputResult:
    """Compiled-engine throughput comparison across algorithms."""

    rows: List[ThroughputRow]
    num_packets: int

    def table_rows(self) -> List[List[object]]:
        return [
            [r.algorithm, r.classifier, f"{r.interpreter_pps:,.0f}",
             f"{r.compiled_pps:,.0f}", f"{r.speedup:.1f}x"]
            for r in self.rows
        ]

    def median_speedup(self) -> float:
        return float(np.median([r.speedup for r in self.rows])) \
            if self.rows else 0.0

    def bench_record(self, name: str = "throughput",
                     config: Optional[dict] = None) -> "BenchRecord":
        """This sweep as a scorecard entry (area ``"engine"``).

        Per-row structural figures (memory, subtree counts) are exact-gated
        counters keyed ``<algorithm>:<classifier>:<metric>``; rates are
        tolerance-banded timings under the same keys.
        """
        from repro.obs.bench import BenchRecord

        counters: Dict[str, int] = {"num_packets": self.num_packets,
                                    "num_rows": len(self.rows)}
        timings: Dict[str, float] = {"median_speedup": self.median_speedup()}
        for row in self.rows:
            key = f"{row.algorithm}:{row.classifier}"
            counters[f"{key}:compiled_memory_bytes"] = \
                row.compiled_memory_bytes
            counters[f"{key}:num_subtrees"] = row.num_subtrees
            timings[f"{key}:interpreter_pps"] = row.interpreter_pps
            timings[f"{key}:compiled_pps"] = row.compiled_pps
            timings[f"{key}:speedup"] = row.speedup
        return BenchRecord(name=name, area="engine", config=config or {},
                           counters=counters, timings=timings)


def run_throughput(
    scale: ExperimentScale = TINY,
    specs: Optional[Sequence[ClassifierSpec]] = None,
    num_packets: int = 20_000,
    algorithms: Optional[Sequence[str]] = None,
    bench_path: Optional[str] = None,
) -> ThroughputResult:
    """Measure interpreter vs compiled packets/sec for the baselines.

    This is the experiment backing the engine's headline claim: every
    classifier built by this repository, learned or heuristic, executes an
    order of magnitude faster once compiled to the flat-array engine.

    When ``specs`` is not given, only the *first* spec of the scale is
    benchmarked (throughput timing per classifier is expensive and the
    speedup is insensitive to the seed family); pass ``specs=scale.specs()``
    explicitly to sweep a whole suite.
    """
    from repro.engine.bench import bench_classifier

    specs = list(specs) if specs is not None else scale.specs()[:1]
    builders = _baseline_builders(scale.leaf_threshold)
    if algorithms is not None:
        builders = {name: builders[name] for name in algorithms}
    rows: List[ThroughputRow] = []
    for spec in specs:
        ruleset = spec.materialize()
        packets = ruleset.sample_packets(num_packets, seed=scale.seed)
        for name, builder in builders.items():
            classifier = builder.build(ruleset)
            bench = bench_classifier(classifier, packets)
            rows.append(
                ThroughputRow(
                    algorithm=name,
                    classifier=spec.label,
                    interpreter_pps=bench.interpreter_pps,
                    compiled_pps=bench.compiled_pps,
                    speedup=bench.speedup,
                    compiled_memory_bytes=bench.compiled_memory_bytes,
                    num_subtrees=bench.num_subtrees,
                )
            )
    result = ThroughputResult(rows=rows, num_packets=num_packets)
    if bench_path is not None:
        from repro.obs.bench import write_bench

        write_bench(result.bench_record(config={
            "num_packets": num_packets,
            "algorithms": sorted(builders),
            "leaf_threshold": scale.leaf_threshold,
            "seed": scale.seed,
        }), bench_path)
    return result


# --------------------------------------------------------------------------- #
# Figure 7: rollout-collection scaling with parallel workers
# --------------------------------------------------------------------------- #

@dataclass
class ScalingPoint:
    """Rollout-collection throughput at one worker count (Figure 7)."""

    workers: int
    rollouts_per_sec: float
    timesteps_per_sec: float
    wall_time_s: float
    #: Throughput relative to the sweep's baseline point: the 1-worker
    #: (serial) point when the sweep includes one, else the point with the
    #: fewest workers.
    speedup: float


@dataclass
class ScalingResult:
    """The Figure 7 sweep: throughput vs number of rollout workers."""

    classifier: str
    points: List[ScalingPoint]
    rounds: int
    timesteps_per_round: int

    def series(self) -> Dict[str, List[float]]:
        return {
            "workers": [float(p.workers) for p in self.points],
            "timesteps_per_sec": [p.timesteps_per_sec for p in self.points],
            "rollouts_per_sec": [p.rollouts_per_sec for p in self.points],
            "speedup": [p.speedup for p in self.points],
        }

    def speedup_at(self, workers: int) -> float:
        """Speedup of the point collected with ``workers`` workers."""
        for point in self.points:
            if point.workers == workers:
                return point.speedup
        raise KeyError(f"no scaling point for {workers} workers")

    def bench_record(self, name: str = "scaling",
                     config: Optional[dict] = None) -> "BenchRecord":
        """This sweep as a scorecard entry (area ``"scaling"``).

        Only the sweep shape is deterministic; every throughput figure is a
        tolerance-banded timing keyed ``w<workers>:<metric>``.
        """
        from repro.obs.bench import BenchRecord

        counters = {
            "num_points": len(self.points),
            "rounds": self.rounds,
            "timesteps_per_round": self.timesteps_per_round,
        }
        timings: Dict[str, float] = {}
        for point in self.points:
            key = f"w{point.workers}"
            timings[f"{key}:timesteps_per_sec"] = point.timesteps_per_sec
            timings[f"{key}:rollouts_per_sec"] = point.rollouts_per_sec
            timings[f"{key}:speedup"] = point.speedup
        return BenchRecord(name=name, area="scaling", config=config or {},
                           counters=counters, timings=timings)


def run_scaling(
    scale: ExperimentScale = TINY,
    worker_counts: Sequence[int] = (1, 2, 4),
    rounds: int = 3,
    spec: Optional[ClassifierSpec] = None,
    neurocuts_config: Optional[NeuroCutsConfig] = None,
    bench_path: Optional[str] = None,
    async_collection: bool = False,
) -> ScalingResult:
    """Figure 7: rollout-collection throughput vs parallel workers.

    For each worker count a fresh actor/learner trainer collects ``rounds``
    PPO batches worth of rollouts (same per-round timestep budget at every
    width, sharded across the workers) through a persistent executor.  A
    warm-up round is collected first so pool start-up and initializer costs
    are excluded from the timed region, matching the paper's steady-state
    rollouts/sec measurement.

    By default no PPO updates run — the experiment isolates the actor side
    that Figure 7 parallelises (process pools still exercise the
    shared-memory weight broadcast).  With ``async_collection=True`` the
    timed region is ``rounds`` full training iterations through the
    pipelined fleet trainer instead, so the measurement includes the learner
    update that pipelining hides behind collection.
    """
    import time

    spec = spec if spec is not None else scale.specs()[0]
    ruleset = spec.materialize()
    points: List[ScalingPoint] = []
    base_config = neurocuts_config or scale.neurocuts_config()
    for workers in worker_counts:
        config = replace_config(base_config, num_rollout_workers=int(workers),
                                max_timesteps_total=10 ** 9,
                                convergence_patience=None,
                                async_collection=async_collection)
        with NeuroCutsTrainer(ruleset, config) as trainer:
            trainer.collect_batch()  # warm-up: spawn pool, build workers
            start = time.perf_counter()
            steps = rollouts = 0
            if async_collection:
                before = trainer.result().timesteps_total
                result = trainer.train(max_iterations=rounds)
                elapsed = time.perf_counter() - start
                # History rows are cumulative; the drained prefetch round
                # (collected inside the timed region but not trained on) is
                # excluded from both counts, slightly understating
                # throughput rather than ever overstating it.
                if result.history:
                    steps = result.history[-1].timesteps_total - before
                    rollouts = sum(s.num_rollouts for s in result.history)
            else:
                for _ in range(rounds):
                    _, summaries = trainer.collect_batch()
                    steps += sum(s.num_steps for s in summaries)
                    rollouts += len(summaries)
                elapsed = time.perf_counter() - start
        points.append(
            ScalingPoint(
                workers=int(workers),
                rollouts_per_sec=rollouts / elapsed,
                timesteps_per_sec=steps / elapsed,
                wall_time_s=elapsed,
                speedup=1.0,
            )
        )
    baseline = next((p for p in points if p.workers == 1),
                    min(points, key=lambda p: p.workers))
    for point in points:
        point.speedup = point.timesteps_per_sec / baseline.timesteps_per_sec
    result = ScalingResult(
        classifier=spec.label,
        points=points,
        rounds=rounds,
        timesteps_per_round=base_config.timesteps_per_batch,
    )
    if bench_path is not None:
        from repro.obs.bench import write_bench

        write_bench(result.bench_record(config={
            "classifier": spec.label,
            "worker_counts": [int(w) for w in worker_counts],
            "rounds": rounds,
            "async_collection": bool(async_collection),
        }), bench_path)
    return result


def replace_config(config: NeuroCutsConfig, **overrides) -> NeuroCutsConfig:
    """A copy of a NeuroCuts config with some fields replaced (re-validated)."""
    import dataclasses

    return dataclasses.replace(config, **overrides)


# --------------------------------------------------------------------------- #
# Table 1: hyperparameters
# --------------------------------------------------------------------------- #

#: The paper's Table 1 default values, keyed by config attribute name.
TABLE1_PAPER_DEFAULTS: Dict[str, object] = {
    "partition_mode": "none",
    "reward_scaling": "linear",
    "max_timesteps_per_rollout": 15000,
    "max_tree_depth": 100,
    "max_timesteps_total": 10_000_000,
    "timesteps_per_batch": 60_000,
    "hidden_sizes": (512, 512),
    "activation": "tanh",
    "learning_rate": 5e-5,
    "discount_factor": 1.0,
    "entropy_coeff": 0.01,
    "clip_param": 0.3,
    "vf_clip_param": 10.0,
    "kl_target": 0.01,
    "num_sgd_iters": 30,
    "sgd_minibatch_size": 1000,
}

#: The values Table 1 sweeps over for the sensitive hyperparameters.
TABLE1_SWEEPS: Dict[str, Tuple[object, ...]] = {
    "partition_mode": ("none", "simple", "efficuts"),
    "reward_scaling": ("linear", "log"),
    "max_timesteps_per_rollout": (1000, 5000, 15000),
    "max_tree_depth": (100, 500),
    "time_space_coeff": (0.0, 0.1, 0.5, 1.0),
}


def table1_rows() -> List[Tuple[str, object, object]]:
    """Rows of (hyperparameter, paper default, this library's default)."""
    config = NeuroCutsConfig()
    rows = []
    for name, paper_value in TABLE1_PAPER_DEFAULTS.items():
        ours = getattr(config, name)
        if isinstance(ours, tuple) or isinstance(paper_value, tuple):
            ours = tuple(ours)
        rows.append((name, paper_value, ours))
    return rows
