"""The serving experiment: heavy multi-tenant traffic with online churn.

``run_serving`` assembles a multi-tenant scenario (generated rulesets, flow
traces with Zipf locality and bursty arrivals, scheduled rule updates),
registers every tenant with a :class:`~repro.serve.registry.TenantRegistry`,
serves the merged request stream through the
:class:`~repro.serve.service.ClassificationService`, and returns the run's
telemetry: packets/second, latency percentiles, flow-cache hit rate, and
hot-swap counters.  With ``record_batches=True`` the result can additionally
prove differential exactness: every served packet is re-checked against
linear search over the exact ruleset generation its engine was compiled
from, across any mid-run hot swaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.serve.batcher import BatchPolicy
from repro.serve.registry import TenantRegistry
from repro.serve.service import ClassificationService, ServingReport
from repro.workloads.scenario import (
    DEFAULT_FAMILIES,
    ChurnConfig,
    MultiTenantWorkload,
    build_workload,
    make_tenant_specs,
)
from repro.workloads.traffic import FlowTraceConfig


@dataclass
class ExactnessReport:
    """Differential check of served answers against linear search."""

    num_checked: int
    num_mismatches: int
    #: Packets checked against a post-swap (epoch >= 1) ruleset generation.
    num_post_swap: int

    @property
    def is_exact(self) -> bool:
        return self.num_mismatches == 0


@dataclass
class ServingResult:
    """Everything ``run_serving`` produced: telemetry plus live state."""

    report: ServingReport
    workload: MultiTenantWorkload
    registry: TenantRegistry

    def rows(self) -> List[List[object]]:
        return self.report.rows()

    def tenant_rows(self) -> List[List[object]]:
        """Per-tenant table rows: rules, engine epoch, cache, swaps."""
        rows = []
        for tenant_id, entry in self.report.per_tenant.items():
            cache = entry["cache"]
            rows.append([
                tenant_id,
                entry["rules"],
                entry["epoch"],
                f"{cache['hit_rate']:.1%}",
                cache["evictions"],
                entry["swap"]["swaps"],
                entry["swap"]["stalls"],
            ])
        return rows

    def verify_exactness(self) -> ExactnessReport:
        """Re-check every served packet against linear search.

        Each recorded batch is compared against the ruleset generation its
        serving engine was compiled from (``EngineSlot.ruleset_at``), so the
        check is exact *across* hot swaps: packets served before a swap are
        held to the pre-update ruleset, packets after it to the post-update
        one.  Requires ``run_serving(record_batches=True)``.
        """
        if self.report.batches is None:
            raise ValueError(
                "verify_exactness() needs run_serving(record_batches=True)"
            )
        checked = mismatches = post_swap = 0
        for batch in self.report.batches:
            ruleset = self.registry.slot(batch.tenant_id).ruleset_at(batch.epoch)
            if batch.epoch >= 1:
                post_swap += len(batch.requests)
            for request, priority in zip(batch.requests, batch.priorities):
                expected = ruleset.classify(request.packet)
                expected_priority = expected.priority if expected else None
                checked += 1
                if expected_priority != priority:
                    mismatches += 1
        return ExactnessReport(num_checked=checked,
                               num_mismatches=mismatches,
                               num_post_swap=post_swap)


def run_serving(
    num_tenants: int = 3,
    families: Sequence[str] = DEFAULT_FAMILIES,
    num_rules: int = 150,
    num_packets: int = 10_000,
    num_flows: int = 512,
    zipf_alpha: float = 1.1,
    tenant_zipf_alpha: float = 1.0,
    mean_burst: float = 16.0,
    algorithm: str = "HiCuts",
    binth: int = 8,
    max_batch: int = 64,
    max_delay: float = 1e-3,
    flow_cache_size: Optional[int] = 2048,
    churn_events: int = 2,
    adds_per_event: int = 4,
    removes_per_event: int = 2,
    background_swaps: bool = True,
    record_batches: bool = False,
    seed: int = 0,
) -> ServingResult:
    """Serve a generated multi-tenant workload and collect telemetry.

    Args mirror the workload/serving knobs: ``num_packets`` is the total
    request count across tenants, ``churn_events`` schedules that many
    mid-trace rule updates (0 disables churn), ``background_swaps=False``
    recompiles inline (useful for single-threaded determinism studies), and
    ``record_batches=True`` keeps every served batch so
    :meth:`ServingResult.verify_exactness` can prove zero misclassifications.
    """
    specs = make_tenant_specs(num_tenants, families=families,
                              num_rules=num_rules, seed=seed,
                              algorithm=algorithm, binth=binth)
    trace = FlowTraceConfig(num_packets=num_packets, num_flows=num_flows,
                            zipf_alpha=zipf_alpha, mean_burst=mean_burst,
                            seed=seed)
    churn = ChurnConfig(num_events=churn_events,
                        adds_per_event=adds_per_event,
                        removes_per_event=removes_per_event) \
        if churn_events > 0 else None
    workload = build_workload(specs, trace,
                              tenant_zipf_alpha=tenant_zipf_alpha,
                              churn=churn)
    registry = TenantRegistry(default_flow_cache_size=flow_cache_size,
                              background_swaps=background_swaps)
    for spec in specs:
        registry.register(spec.tenant_id, workload.rulesets[spec.tenant_id],
                          algorithm=spec.algorithm, binth=spec.binth)
    service = ClassificationService(
        registry, BatchPolicy(max_batch=max_batch, max_delay=max_delay),
        record_batches=record_batches,
    )
    report = service.serve(workload.requests, updates=workload.updates)
    return ServingResult(report=report, workload=workload, registry=registry)
