"""The serving experiment: heavy multi-tenant traffic with online churn.

``run_serving`` assembles a multi-tenant scenario (generated rulesets, flow
traces with Zipf locality and bursty arrivals, scheduled rule updates),
registers every tenant with a :class:`~repro.serve.registry.TenantRegistry`,
serves the merged request stream through the
:class:`~repro.serve.service.ClassificationService`, and returns the run's
telemetry: packets/second, latency percentiles, flow-cache hit rate, and
hot-swap counters.  With ``record_batches=True`` the result can additionally
prove differential exactness: every served packet is re-checked against
linear search over the exact ruleset generation its engine was compiled
from, across any mid-run hot swaps.

Two knobs close the adaptive-serving loop on top of that:

* ``retrain_threshold`` arms the retrain-on-churn path — a
  :class:`~repro.serve.controller.RetrainController` watches every slot and
  swaps in freshly trained NeuroCuts *trees* when accumulated updates cross
  the threshold;
* ``serving_workers > 1`` shards tenants across worker processes
  (:mod:`repro.serve.sharded`) and returns a :class:`ShardedServingResult`
  whose telemetry is merged exactly from the per-shard reports.

``run_serving(trace_path=...)`` swaps the generator out entirely: the
workload (tenants, rulesets, packets, churn) is loaded from a recorded
trace file (:mod:`repro.traces`) and served through the identical stack.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.ingest.admission import IngestConfig
from repro.serve.batcher import BatchPolicy
from repro.serve.controller import RetrainController, RetrainPolicy
from repro.serve.engines import DEFAULT_RETRAIN_THRESHOLD
from repro.serve.rebalance import DEFAULT_REBALANCE_INTERVAL, RebalancePolicy
from repro.serve.registry import TenantRegistry
from repro.serve.service import ClassificationService, ServedBatch, \
    ServingReport
from repro.serve.sharded import (
    ShardOutcome,
    ShardPlan,
    ShardTenant,
    serve_sharded,
)
from repro.rules.ruleset import RuleSet
from repro.traces.format import ServingTrace
from repro.traces.io import read_trace
from repro.workloads.adversarial import FlashCrowdConfig, \
    build_flash_crowd_workload
from repro.workloads.scenario import (
    DEFAULT_FAMILIES,
    ChurnConfig,
    MultiTenantWorkload,
    build_workload,
    make_tenant_specs,
)
from repro.workloads.traffic import FlowTraceConfig

#: Rule count past which HiCuts build cost explodes on fw-family rulesets
#: (wildcard-heavy rules replicate into most cuts; see docs/architecture.md).
HICUTS_FW_RULE_LIMIT = 200


def warn_if_hicuts_on_fw(families: Sequence[str], algorithm: str,
                         num_rules: int) -> Optional[str]:
    """Warn when a scenario asks HiCuts to build large fw-family tenants.

    HiCuts replicates wildcard-heavy rules into nearly every cut, and the
    ``fw*`` seed families are wildcard-heavy by construction — beyond about
    ``HICUTS_FW_RULE_LIMIT`` rules the build takes minutes and gigabytes.
    Emits a :class:`RuntimeWarning` (and returns its message) so both the
    CLI and programmatic callers see it before committing to the build;
    returns ``None`` when the combination is fine.
    """
    fw = sorted({f for f in families if f.startswith("fw")})
    if algorithm != "HiCuts" or not fw or num_rules <= HICUTS_FW_RULE_LIMIT:
        return None
    message = (
        f"HiCuts on {'/'.join(fw)} rulesets with {num_rules} rules: "
        f"wildcard replication makes builds beyond ~{HICUTS_FW_RULE_LIMIT} "
        f"rules take minutes and GBs of memory; use --algorithm EffiCuts "
        f"for fw-family tenants at this scale (see docs/architecture.md)"
    )
    warnings.warn(message, RuntimeWarning, stacklevel=3)
    return message


@dataclass
class ExactnessReport:
    """Differential check of served answers against linear search."""

    num_checked: int
    num_mismatches: int
    #: Packets checked against a post-swap (epoch >= 1) ruleset generation.
    num_post_swap: int

    @property
    def is_exact(self) -> bool:
        return self.num_mismatches == 0


def _tenant_rows(per_tenant: Dict[str, dict]) -> List[List[object]]:
    """Per-tenant table rows: rules, engine epoch, cache, swaps."""
    rows = []
    for tenant_id, entry in per_tenant.items():
        cache = entry["cache"]
        rows.append([
            tenant_id,
            entry["rules"],
            entry["epoch"],
            f"{cache['hit_rate']:.1%}",
            cache["evictions"],
            entry["swap"]["swaps"],
            entry["swap"]["stalls"],
        ])
    return rows


def serving_bench_record(report: ServingReport, name: str,
                         config: Optional[dict] = None,
                         exactness: Optional[ExactnessReport] = None
                         ) -> "BenchRecord":
    """A serving run as a versioned scorecard entry (area ``"serve"``).

    The deterministic telemetry (:meth:`ServingReport.deterministic_counters`)
    — plus the differential-exactness tallies when provided — lands in
    ``counters`` and is gated at exact equality; throughput and latency land
    in ``timings`` and are tolerance-banded.  Shared by the single-process
    and sharded result types so the two produce schema-identical records.
    """
    from repro.obs.bench import BenchRecord

    counters = dict(report.deterministic_counters())
    if exactness is not None:
        counters["exact_checked"] = exactness.num_checked
        counters["exact_mismatches"] = exactness.num_mismatches
        counters["exact_post_swap"] = exactness.num_post_swap
    timings = {
        "throughput_pps": report.pps,
        "wall_seconds": report.wall_seconds,
        "engine_seconds": report.engine_seconds,
    }
    for pct in sorted(report.latency_percentiles):
        timings[f"latency_p{pct:g}_ms"] = report.latency_ms(pct)
    return BenchRecord(name=name, area="serve", config=config or {},
                       counters=counters, timings=timings)


def _check_batches(batches: Sequence[ServedBatch],
                   epoch_rulesets: Dict[str, List[RuleSet]]
                   ) -> ExactnessReport:
    """Differentially check recorded batches against per-epoch rulesets."""
    checked = mismatches = post_swap = 0
    for batch in batches:
        ruleset = epoch_rulesets[batch.tenant_id][batch.epoch]
        if batch.epoch >= 1:
            post_swap += len(batch.requests)
        for request, priority in zip(batch.requests, batch.priorities):
            expected = ruleset.classify(request.packet)
            expected_priority = expected.priority if expected else None
            checked += 1
            if expected_priority != priority:
                mismatches += 1
    return ExactnessReport(num_checked=checked,
                           num_mismatches=mismatches,
                           num_post_swap=post_swap)


@dataclass
class ServingResult:
    """Everything ``run_serving`` produced: telemetry plus live state."""

    report: ServingReport
    workload: MultiTenantWorkload
    registry: TenantRegistry

    def rows(self) -> List[List[object]]:
        return self.report.rows()

    def tenant_rows(self) -> List[List[object]]:
        """Per-tenant table rows: rules, engine epoch, cache, swaps."""
        return _tenant_rows(self.report.per_tenant)

    def verify_exactness(self) -> ExactnessReport:
        """Re-check every served packet against linear search.

        Each recorded batch is compared against the ruleset generation its
        serving engine was compiled from (``EngineSlot.ruleset_at``), so the
        check is exact *across* hot swaps: packets served before a swap are
        held to the pre-update ruleset, packets after it to the post-update
        one.  Requires ``run_serving(record_batches=True)``.
        """
        if self.report.batches is None:
            raise ValueError(
                "verify_exactness() needs run_serving(record_batches=True)"
            )
        epoch_rulesets = {
            tenant_id: [self.registry.slot(tenant_id).ruleset_at(epoch)
                        for epoch in range(self.registry.slot(tenant_id).epoch + 1)]
            for tenant_id in self.registry.tenants()
        }
        return _check_batches(self.report.batches, epoch_rulesets)

    def bench_record(self, name: str = "serve",
                     config: Optional[dict] = None,
                     verify: bool = False) -> "BenchRecord":
        """This run as a scorecard entry; ``verify=True`` folds in the
        differential-exactness tallies (needs ``record_batches=True``)."""
        exactness = self.verify_exactness() if verify else None
        return serving_bench_record(self.report, name=name, config=config,
                                    exactness=exactness)


@dataclass
class ShardedServingResult:
    """Outcome of a tenant-sharded ``run_serving`` (``serving_workers > 1``).

    ``report`` is the merged telemetry (exact percentile merge over the
    shards' raw latency arrays); ``outcomes`` keeps each shard's own report,
    per-epoch ruleset history, and wall time for drill-down.
    """

    report: ServingReport
    workload: MultiTenantWorkload
    outcomes: List[ShardOutcome]
    plan: ShardPlan

    @property
    def num_shards(self) -> int:
        """Shards that actually served tenants (empty shards are skipped)."""
        return len(self.outcomes)

    def rows(self) -> List[List[object]]:
        rows = self.report.rows()
        rows.append(["serving shards", str(self.num_shards)])
        return rows

    def tenant_rows(self) -> List[List[object]]:
        """Per-tenant table rows: rules, engine epoch, cache, swaps."""
        return _tenant_rows(self.report.per_tenant)

    def shard_rows(self) -> List[List[object]]:
        """Per-shard table rows: tenants, requests served, wall seconds."""
        return [
            [
                outcome.shard_index,
                ", ".join(outcome.tenant_ids),
                outcome.report.num_requests,
                f"{outcome.wall_seconds:.3f}s",
            ]
            for outcome in self.outcomes
        ]

    def verify_exactness(self) -> ExactnessReport:
        """Re-check every shard's served packets against linear search.

        The check runs in the front-end process: each shard shipped back
        its recorded batches *and* the per-epoch ruleset snapshots its
        engines were compiled from, so exactness is proven across hot
        swaps, retrain adoptions, and the process boundary.  Requires
        ``record_batches=True``.
        """
        if self.report.batches is None:
            raise ValueError(
                "verify_exactness() needs run_serving(record_batches=True)"
            )
        epoch_rulesets: Dict[str, List[RuleSet]] = {}
        for outcome in self.outcomes:
            epoch_rulesets.update(outcome.epoch_rulesets)
        return _check_batches(self.report.batches, epoch_rulesets)

    def bench_record(self, name: str = "serve",
                     config: Optional[dict] = None,
                     verify: bool = False) -> "BenchRecord":
        """This run as a scorecard entry; ``verify=True`` folds in the
        differential-exactness tallies (needs ``record_batches=True``)."""
        exactness = self.verify_exactness() if verify else None
        return serving_bench_record(self.report, name=name, config=config,
                                    exactness=exactness)


def run_serving(
    num_tenants: int = 3,
    families: Sequence[str] = DEFAULT_FAMILIES,
    num_rules: int = 150,
    num_packets: int = 10_000,
    num_flows: int = 512,
    zipf_alpha: float = 1.1,
    tenant_zipf_alpha: float = 1.0,
    mean_burst: float = 16.0,
    algorithm: str = "HiCuts",
    binth: int = 8,
    max_batch: int = 64,
    max_delay: float = 1e-3,
    flow_cache_size: Optional[int] = 2048,
    churn_events: int = 2,
    adds_per_event: int = 4,
    removes_per_event: int = 2,
    background_swaps: bool = True,
    record_batches: bool = False,
    retrain_threshold: Optional[int] = None,
    retrain_policy: Optional[RetrainPolicy] = None,
    serving_workers: int = 1,
    serving_backend: str = "process",
    engine_backend: str = "numpy",
    trace_path: Optional[Union[str, Path, ServingTrace]] = None,
    ingest: Optional[IngestConfig] = None,
    flash_crowd: Optional[FlashCrowdConfig] = None,
    rebalance_policy: Optional[RebalancePolicy] = None,
    rebalance_interval: float = DEFAULT_REBALANCE_INTERVAL,
    seed: int = 0,
):
    """Serve a multi-tenant workload and collect telemetry.

    Args mirror the workload/serving knobs: ``num_packets`` is the total
    request count across tenants, ``churn_events`` schedules that many
    mid-trace rule updates (0 disables churn), ``background_swaps=False``
    recompiles inline (useful for single-threaded determinism studies), and
    ``record_batches=True`` keeps every served batch so
    :meth:`ServingResult.verify_exactness` can prove zero misclassifications.

    ``retrain_threshold`` arms the retrain-on-churn loop: every slot advises
    a NeuroCuts retrain once that many updates accumulate, and a
    :class:`~repro.serve.controller.RetrainController` (configured by
    ``retrain_policy``, default :class:`RetrainPolicy()`) trains and swaps
    in the new tree mid-run.  ``serving_workers > 1`` shards tenants across
    that many workers on ``serving_backend`` (``"process"`` for real
    parallelism; ``"thread"``/``"serial"`` for tests) and returns a
    :class:`ShardedServingResult` instead of a :class:`ServingResult`.

    ``trace_path`` replays a recorded trace (a file path or a loaded
    :class:`~repro.traces.format.ServingTrace`) instead of generating a
    workload: tenants, rulesets, the packet stream, and the churn schedule
    all come from the trace, and the generation knobs (``num_tenants``,
    ``families``, ``num_packets``, ``churn_events``, ...) are ignored.  The
    serving knobs still apply, so a trace can be replayed with a different
    batch size, cache size, shard count, or retrain policy.

    ``engine_backend`` selects the compiled-engine traversal backend for
    every tenant slot (``"numpy"``, ``"numba"``, or ``"auto"``; see
    :data:`repro.engine.kernels.ENGINE_BACKENDS`).

    ``ingest`` attaches the ingestion frontend (:mod:`repro.ingest`):
    per-tenant token-bucket admission runs ahead of the batcher, over-rate
    traffic is throttled or shed (typed and counted, never silently
    dropped), and the report carries the ``ingest_*`` tallies.
    ``flash_crowd`` swaps the nominal workload for the adversarial
    flash-crowd scenario (one tenant goes over-rate mid-trace; see
    :mod:`repro.workloads.adversarial`) — the natural companion to
    ``ingest``, and only meaningful on the generated-workload path.

    On the trace-replay path ``ingest`` is ignored by construction: a
    recorded trace contains only packets that were already admitted, and
    the determinism contract (docs/traces.md) makes the trace clock
    authoritative — re-running admission against replay-time stamps would
    perturb the recorded stream.  ``flash_crowd`` is rejected there (the
    workload comes from the trace, so there is nothing to generate).

    ``rebalance_policy`` (with ``serving_workers > 1``) switches the
    sharded path into the rebalancing front-end: the policy is evaluated
    every ``rebalance_interval`` trace seconds on live per-shard telemetry
    and planned tenants are live-migrated between shards mid-run (see
    :mod:`repro.serve.rebalance`).
    """
    if serving_workers < 1:
        raise ValueError("serving_workers must be >= 1")
    if rebalance_policy is not None and serving_workers < 2:
        raise ValueError(
            "rebalance_policy needs serving_workers >= 2 "
            "(there is nothing to rebalance on one shard)"
        )
    if trace_path is not None:
        if flash_crowd is not None:
            raise ValueError(
                "flash_crowd generates a workload and cannot be combined "
                "with trace_path (the trace already fixes the packet stream)"
            )
        # Determinism contract: trace replay bypasses admission timing.
        ingest = None
        trace = trace_path if isinstance(trace_path, ServingTrace) \
            else read_trace(trace_path)
        workload = trace.to_workload()
        specs = workload.specs
        for spec in specs:
            warn_if_hicuts_on_fw([spec.seed_name], spec.algorithm,
                                 len(workload.rulesets[spec.tenant_id]))
        if retrain_threshold is not None and retrain_policy is None:
            # Replay determinism contract (docs/traces.md): retrains run
            # serially, seeded from the trace, so every replay surface
            # trains the same trees and reports the same counters.
            retrain_policy = RetrainPolicy(backend="serial",
                                           seed=trace.seed)
    else:
        warn_if_hicuts_on_fw(families, algorithm, num_rules)
        specs = make_tenant_specs(num_tenants, families=families,
                                  num_rules=num_rules, seed=seed,
                                  algorithm=algorithm, binth=binth)
        trace = FlowTraceConfig(num_packets=num_packets, num_flows=num_flows,
                                zipf_alpha=zipf_alpha, mean_burst=mean_burst,
                                seed=seed)
        churn = ChurnConfig(num_events=churn_events,
                            adds_per_event=adds_per_event,
                            removes_per_event=removes_per_event) \
            if churn_events > 0 else None
        if flash_crowd is not None:
            workload = build_flash_crowd_workload(
                specs, trace, flash_crowd,
                tenant_zipf_alpha=tenant_zipf_alpha, churn=churn)
        else:
            workload = build_workload(specs, trace,
                                      tenant_zipf_alpha=tenant_zipf_alpha,
                                      churn=churn)
    if retrain_threshold is not None and retrain_policy is None:
        retrain_policy = RetrainPolicy(seed=seed)
    if retrain_threshold is None:
        retrain_policy = None

    if serving_workers > 1:
        outcomes, report, plan = serve_sharded(
            [ShardTenant(s.tenant_id, s.algorithm, s.binth) for s in specs],
            workload.rulesets,
            workload.requests,
            workload.updates,
            num_workers=serving_workers,
            backend=serving_backend,
            max_batch=max_batch,
            max_delay=max_delay,
            flow_cache_size=flow_cache_size,
            background_swaps=background_swaps,
            record_batches=record_batches,
            retrain_threshold=retrain_threshold
            if retrain_threshold is not None else DEFAULT_RETRAIN_THRESHOLD,
            retrain_policy=retrain_policy,
            engine_backend=engine_backend,
            ingest=ingest,
            rebalance_policy=rebalance_policy,
            rebalance_interval=rebalance_interval,
        )
        return ShardedServingResult(report=report, workload=workload,
                                    outcomes=outcomes, plan=plan)

    registry = TenantRegistry(default_flow_cache_size=flow_cache_size,
                              background_swaps=background_swaps,
                              default_retrain_threshold=retrain_threshold
                              if retrain_threshold is not None
                              else DEFAULT_RETRAIN_THRESHOLD,
                              engine_backend=engine_backend)
    for spec in specs:
        registry.register(spec.tenant_id, workload.rulesets[spec.tenant_id],
                          algorithm=spec.algorithm, binth=spec.binth)
    controller = RetrainController(registry, retrain_policy) \
        if retrain_policy is not None else None
    service = ClassificationService(
        registry, BatchPolicy(max_batch=max_batch, max_delay=max_delay),
        record_batches=record_batches,
        retrain_controller=controller,
        ingest=ingest,
    )
    try:
        report = service.serve(workload.requests, updates=workload.updates)
    finally:
        if controller is not None:
            controller.close()
    return ServingResult(report=report, workload=workload, registry=registry)
