"""Experiment scales: how big a reproduction run should be.

The paper's evaluation uses 36 ClassBench classifiers of up to 100k rules and
10M training timesteps per NeuroCuts run.  That is hours of compute; this
reproduction exposes the experiment *structure* at any scale through an
:class:`ExperimentScale` object.  Three presets are provided:

* ``tiny``  — seconds per figure; used by the test-suite and CI benchmarks.
* ``small`` — minutes per figure; meaningful relative comparisons.
* ``paper`` — the paper's sizes and budgets (expect hours; provided so the
  full experiment is runnable, not because CI runs it).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.classbench.suite import (
    DEFAULT_SCALE_SIZES,
    PAPER_SCALE_SIZES,
    ClassifierSpec,
    suite_specs,
)
from repro.neurocuts.config import NeuroCutsConfig


@dataclass(frozen=True)
class ExperimentScale:
    """Size/budget knobs shared by every figure runner."""

    name: str
    scale_sizes: Dict[str, int]
    scales: Tuple[str, ...]
    families: Optional[Tuple[str, ...]]
    neurocuts_timesteps: int
    neurocuts_batch: int
    neurocuts_rollout_limit: int
    neurocuts_hidden: Tuple[int, int]
    leaf_threshold: int
    learning_rate: float = 1e-3
    num_sgd_iters: int = 10
    sgd_minibatch_size: int = 256
    max_tree_depth: int = 40
    convergence_patience: Optional[int] = 8
    seed: int = 0

    def specs(self) -> List[ClassifierSpec]:
        """The classifier specs this scale evaluates over."""
        return suite_specs(
            scale_sizes=self.scale_sizes,
            scales=self.scales,
            families=self.families,
            seed=self.seed,
        )

    def neurocuts_config(self, **overrides) -> NeuroCutsConfig:
        """A NeuroCuts configuration sized for this scale."""
        params = dict(
            hidden_sizes=self.neurocuts_hidden,
            max_timesteps_total=self.neurocuts_timesteps,
            timesteps_per_batch=self.neurocuts_batch,
            max_timesteps_per_rollout=self.neurocuts_rollout_limit,
            max_tree_depth=self.max_tree_depth,
            num_sgd_iters=self.num_sgd_iters,
            sgd_minibatch_size=self.sgd_minibatch_size,
            learning_rate=self.learning_rate,
            leaf_threshold=self.leaf_threshold,
            convergence_patience=self.convergence_patience,
            seed=self.seed,
        )
        params.update(overrides)
        return NeuroCutsConfig(**params)


#: Seconds-per-figure scale used by tests and pytest-benchmark runs.
TINY = ExperimentScale(
    name="tiny",
    scale_sizes={"1k": 80},
    scales=("1k",),
    families=("acl1", "fw1", "fw5", "ipc1"),
    neurocuts_timesteps=20_000,
    neurocuts_batch=1_000,
    neurocuts_rollout_limit=400,
    neurocuts_hidden=(64, 64),
    leaf_threshold=8,
)

#: Minutes-per-figure scale; all 12 families at reduced sizes.
SMALL = ExperimentScale(
    name="small",
    scale_sizes=dict(DEFAULT_SCALE_SIZES),
    scales=("1k", "10k"),
    families=None,
    neurocuts_timesteps=40_000,
    neurocuts_batch=2_000,
    neurocuts_rollout_limit=2_000,
    neurocuts_hidden=(128, 128),
    leaf_threshold=16,
    max_tree_depth=60,
)

#: The paper's own sizes and budgets (hours of compute; not run in CI).
PAPER = ExperimentScale(
    name="paper",
    scale_sizes=dict(PAPER_SCALE_SIZES),
    scales=("1k", "10k", "100k"),
    families=None,
    neurocuts_timesteps=10_000_000,
    neurocuts_batch=60_000,
    neurocuts_rollout_limit=15_000,
    neurocuts_hidden=(512, 512),
    leaf_threshold=16,
    learning_rate=5e-5,
    num_sgd_iters=30,
    sgd_minibatch_size=1000,
    max_tree_depth=100,
    convergence_patience=None,
)

SCALES: Dict[str, ExperimentScale] = {"tiny": TINY, "small": SMALL, "paper": PAPER}


def get_scale(name: str) -> ExperimentScale:
    """Look up a preset scale by name."""
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(f"unknown scale {name!r}; available: {sorted(SCALES)}") from None
