"""Plain-text rendering of experiment results.

Benchmarks and examples print these tables so a reproduction run leaves a
readable record (EXPERIMENTS.md is generated from the same renderers).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 float_precision: int = 2) -> str:
    """Render a list of rows as an aligned monospace table."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{float_precision}f}"
        return str(value)

    rendered = [[fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def comparison_table(values: Mapping[str, Mapping[str, float]],
                     metric: str) -> str:
    """Figure 8/9-style table: one row per classifier, one column per algorithm."""
    algorithms = list(values)
    labels = sorted(next(iter(values.values())).keys())
    rows: List[List[object]] = []
    for label in labels:
        rows.append([label] + [values[alg][label] for alg in algorithms])
    return format_table(["classifier"] + algorithms, rows) + f"\n(metric: {metric})"


def summary_table(summaries: Mapping[str, Mapping[str, float]]) -> str:
    """Table of aggregate statistics, one row per named summary."""
    headers = ["comparison", "median", "mean", "best", "worst", "win_fraction"]
    rows = []
    for name, stats in summaries.items():
        rows.append([
            name,
            stats.get("median", float("nan")),
            stats.get("mean", float("nan")),
            stats.get("best", float("nan")),
            stats.get("worst", float("nan")),
            stats.get("win_fraction", float("nan")),
        ])
    return format_table(headers, rows)


def series_table(series: Mapping[str, Sequence[float]]) -> str:
    """Figure 11-style table: aligned columns of per-point series."""
    headers = list(series)
    length = len(next(iter(series.values()))) if series else 0
    rows = [[series[h][i] for h in headers] for i in range(length)]
    return format_table(headers, rows)


def paper_vs_measured_table(rows: Sequence[Tuple[str, str, str]]) -> str:
    """EXPERIMENTS.md-style rows of (quantity, paper value, measured value)."""
    return format_table(["quantity", "paper", "measured"], list(rows))
