"""Parallel execution helpers (the Figure 7 scaling story, CPU-process style).

The paper parallelises NeuroCuts by generating decision-tree rollouts from
the current policy on many workers (Figure 7).  The rollout side of that
lives in :mod:`repro.neurocuts.workers`; this module covers the harness side
— mapping independent suite entries (one classifier build per task) over the
same backend-pluggable executor layer (:mod:`repro.executors`).

Historically ``parallel_map`` built a fresh spawn ``multiprocessing.Pool``
for every call, paying process start-up per call.  It now routes through
:func:`repro.executors.shared_executor`, which keeps one persistent pool per
worker count alive across calls; pass an explicit ``executor`` to control
the lifecycle (or the backend) yourself.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.executors import (
    ProcessPoolExecutor,
    RolloutExecutor,
    SerialExecutor,
    make_executor,
    shared_executor,
    shutdown_shared_executors,
)

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "ProcessPoolExecutor",
    "RolloutExecutor",
    "SerialExecutor",
    "default_worker_count",
    "make_executor",
    "parallel_map",
    "shared_executor",
    "shutdown_shared_executors",
]


def parallel_map(func: Callable[[T], R], items: Sequence[T],
                 num_workers: Optional[int] = None,
                 chunk_size: int = 1,
                 executor: Optional[RolloutExecutor] = None) -> List[R]:
    """Apply ``func`` to every item, using a process pool when it helps.

    Args:
        func: a picklable callable (top-level function or functools.partial).
        items: the work items.
        num_workers: process count; ``None`` or 1 means serial execution.
            Ignored when ``executor`` is given.
        chunk_size: work items per task submitted to a pool backend.
        executor: an explicit executor to run on.  When omitted, a shared
            persistent pool for ``num_workers`` is used (serial if <= 1 or
            the work is trivial); shared pools are reused across calls and
            torn down at interpreter exit.
    """
    items = list(items)
    if executor is None:
        if num_workers is None or num_workers <= 1 or len(items) <= 1:
            return [func(item) for item in items]
        # Key the shared pool on the requested width (not the item count):
        # varying item counts must reuse one pool, not accumulate several.
        executor = shared_executor(num_workers)
    return executor.map(func, items, chunk_size=chunk_size)


def default_worker_count(cap: int = 8) -> int:
    """A conservative default worker count for harness parallelism."""
    return max(1, min(cap, (multiprocessing.cpu_count() or 2) - 1))
