"""Parallel execution helpers (the Figure 7 scaling story, CPU-process style).

The paper parallelises NeuroCuts by generating decision-tree rollouts from
the current policy on many workers (Figure 7).  This module provides a small
process-pool map used by the harness to build independent classifiers (one
suite entry per process) in parallel; it degrades gracefully to serial
execution when only one worker is requested or the work items are few.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def parallel_map(func: Callable[[T], R], items: Sequence[T],
                 num_workers: Optional[int] = None,
                 chunk_size: int = 1) -> List[R]:
    """Apply ``func`` to every item, using a process pool when it helps.

    Args:
        func: a picklable callable (top-level function or functools.partial).
        items: the work items.
        num_workers: process count; ``None`` or 1 means serial execution.
        chunk_size: work items per task submitted to the pool.
    """
    items = list(items)
    if num_workers is None or num_workers <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    workers = min(num_workers, len(items))
    with multiprocessing.get_context("spawn").Pool(workers) as pool:
        return pool.map(func, items, chunksize=max(1, chunk_size))


def default_worker_count(cap: int = 8) -> int:
    """A conservative default worker count for harness parallelism."""
    return max(1, min(cap, (multiprocessing.cpu_count() or 2) - 1))
