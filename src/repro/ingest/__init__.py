"""The ingestion frontend: admission control between sources and serving.

This package sits between request sources and the serving stack
(:mod:`repro.serve`).  Its synchronous core is the
:class:`~repro.ingest.admission.AdmissionController` — per-tenant
:class:`~repro.ingest.bucket.TokenBucket` rate limits, a bounded virtual
admission queue, and a two-level congestion signal
(:class:`~repro.ingest.admission.CongestionLevel`) that slows sources
*before* queues overflow and sheds loudly (a typed
:class:`~repro.exceptions.ThrottledError`) when they do.  The asyncio
:class:`~repro.ingest.server.IngestServer` wraps the controller to
multiplex concurrent per-tenant request streams onto the single serving
thread; ``run_serving(ingest=...)`` drives the controller inline over a
generated workload.

Every decision runs on the trace clock (request timestamps), never the
wall clock, so admission outcomes are deterministic and replayable — see
docs/ingest.md for the full contract, including why trace replay bypasses
admission timing.
"""

from repro.ingest.admission import (
    ADMITTED,
    SHED,
    THROTTLED,
    AdmissionController,
    AdmissionDecision,
    CongestionLevel,
    IngestConfig,
)
from repro.ingest.bucket import TokenBucket
from repro.ingest.server import IngestServer, StreamSummary

__all__ = [
    "ADMITTED",
    "THROTTLED",
    "SHED",
    "AdmissionController",
    "AdmissionDecision",
    "CongestionLevel",
    "IngestConfig",
    "IngestServer",
    "StreamSummary",
    "TokenBucket",
]
