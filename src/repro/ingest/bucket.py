"""Per-tenant token-bucket rate limiting on the trace clock.

A :class:`TokenBucket` enforces a sustained ``rate`` (tokens per trace
second) with a ``burst`` allowance (the bucket's capacity): a tenant may
send ``burst`` packets back to back after an idle period, but its long-run
admitted rate can never exceed ``rate``.

The clock is *virtual* on purpose — every refill is driven by the request
arrival timestamps the workload (or trace) carries, never by the wall
clock, so the same offered stream always produces the same admit/throttle
decisions on every machine.  The refill is monotone: a timestamp earlier
than the last one seen is clamped forward (concurrent per-tenant streams
may interleave slightly out of order at the asyncio frontend), which keeps
the bucket's token count a deterministic function of the arrival sequence.
"""

from __future__ import annotations


class TokenBucket:
    """A virtual-clock token bucket: ``rate`` tokens/sec, ``burst`` capacity.

    The bucket starts full.  ``tokens`` is continuous (refill accrues
    fractionally between arrivals) and is never allowed to go negative:
    :meth:`try_consume` either takes whole tokens or leaves the bucket
    untouched.
    """

    __slots__ = ("rate", "burst", "tokens", "last_refill")

    def __init__(self, rate: float, burst: float,
                 clock: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0 tokens/sec")
        if burst < 1:
            raise ValueError("burst must be >= 1 token")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last_refill = float(clock)

    def refill(self, now: float) -> None:
        """Accrue tokens up to ``now`` (monotone: earlier stamps clamp)."""
        if now > self.last_refill:
            self.tokens = min(
                self.burst,
                self.tokens + (now - self.last_refill) * self.rate,
            )
            self.last_refill = now

    def available(self, now: float) -> float:
        """Tokens available at ``now`` (refills as a side effect)."""
        self.refill(now)
        return self.tokens

    def try_consume(self, now: float, tokens: float = 1.0) -> bool:
        """Take ``tokens`` at ``now`` if the bucket holds them.

        Returns ``True`` and debits on success; returns ``False`` and
        leaves the balance untouched (never negative) otherwise.
        """
        self.refill(now)
        if self.tokens >= tokens:
            self.tokens -= tokens
            return True
        return False

    def seconds_until(self, tokens: float = 1.0) -> float:
        """Trace seconds until ``tokens`` will be available (0 if now)."""
        deficit = tokens - self.tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TokenBucket(rate={self.rate}, burst={self.burst}, "
                f"tokens={self.tokens:.3f}, t={self.last_refill:.6f})")
