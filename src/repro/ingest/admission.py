"""Admission control: token buckets, bounded queues, congestion signals.

The :class:`AdmissionController` is the synchronous, deterministic core of
the ingestion frontend (the asyncio :class:`~repro.ingest.server.IngestServer`
wraps it; ``run_serving(ingest=...)`` drives it inline).  Every offered
request lands in exactly one of three outcomes:

* **admitted** — a token was available and the tenant's admission queue has
  room.  The request is stamped with its queue *release* time (the bounded
  per-tenant queue drains at ``drain_rate``, modelling the hand-off into
  the dataplane) and forwarded; ``release - arrival`` is the queue delay
  recorded in ``ingest.queue_delay_seconds``.
* **throttled** — the tenant's token bucket is empty: the offered rate
  exceeds ``tenant_rate`` beyond the ``tenant_burst`` allowance.  The
  decision carries ``retry_after`` so sources can pace themselves.
* **shed** — the admission queue is at ``queue_limit`` (the HARD congestion
  level).  With the default ``drain_rate == tenant_rate`` the backlog of a
  bucket-conforming tenant is bounded by ``tenant_burst``, so shedding only
  occurs when the queue is provisioned below the burst allowance — the
  design goal lifted from SFC/L4Span: signal (SOFT) and throttle *before*
  queues overflow, and never tail-drop silently.

Congestion is signalled at two levels *before* shedding: **SOFT** engages
when queue occupancy crosses ``soft_fraction * queue_limit`` or the
head-of-line age crosses ``soft_age``; with ``adaptive_sources=True``
(the default) a SOFT-signalled tenant's subsequent arrivals are re-paced to
its sustained rate — the near-source flow control of the SFC design, on the
virtual clock so it stays deterministic.  **HARD** (queue full) sheds.

Everything runs on the trace clock: decisions are a pure function of the
offered (tenant, time) sequence and the config, which is what makes the
over-rate scenarios replay bit-identically — and because all state is
per-tenant and tenants are disjoint across serving shards, per-shard
admission equals single-process admission *exactly* (the same argument
that makes tenant sharding exact in :mod:`repro.serve.sharded`).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Deque, Dict, Iterable, List, Optional, \
    Tuple

from repro.ingest.bucket import TokenBucket
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.batcher import Request

#: Decision outcomes (the three-way partition every offer falls into).
ADMITTED = "admitted"
THROTTLED = "throttled"
SHED = "shed"


class CongestionLevel(enum.IntEnum):
    """Two-level congestion signal driven by queue occupancy and age."""

    OK = 0
    #: Sources should slow to the tenant's sustained rate.
    SOFT = 1
    #: The admission queue is full; new arrivals are shed (typed, loudly).
    HARD = 2


@dataclass(frozen=True)
class IngestConfig:
    """Knobs of the ingestion frontend (uniform across tenants by default).

    Attributes:
        tenant_rate: sustained admitted packets/sec per tenant (token
            refill rate).
        tenant_burst: bucket capacity — packets a tenant may send back to
            back after idling.
        queue_limit: bounded per-tenant admission queue capacity; occupancy
            at the limit is the HARD level (shed at admission).
        drain_rate: rate the admission queue hands packets to the serving
            thread (``None`` = ``tenant_rate``, a dataplane provisioned at
            exactly the sustained rate).  The queue-delay bound follows:
            ``queue_delay <= queue_limit / drain_rate``.
        soft_fraction: occupancy fraction of ``queue_limit`` at which the
            SOFT signal engages.
        soft_age: head-of-line age (trace seconds) that also engages SOFT
            (``None`` = half the worst-case queue delay).
        adaptive_sources: when SOFT is signalled, re-pace the tenant's
            subsequent arrivals to the sustained rate (deterministic
            near-source flow control) instead of letting the bucket
            throttle them.
    """

    tenant_rate: float = 20_000.0
    tenant_burst: int = 256
    queue_limit: int = 512
    drain_rate: Optional[float] = None
    soft_fraction: float = 0.5
    soft_age: Optional[float] = None
    adaptive_sources: bool = True

    def __post_init__(self) -> None:
        if self.tenant_rate <= 0:
            raise ValueError("tenant_rate must be > 0")
        if self.tenant_burst < 1:
            raise ValueError("tenant_burst must be >= 1")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.drain_rate is not None and self.drain_rate <= 0:
            raise ValueError("drain_rate must be > 0 (or None)")
        if not 0.0 < self.soft_fraction <= 1.0:
            raise ValueError("soft_fraction must be in (0, 1]")
        if self.soft_age is not None and self.soft_age < 0:
            raise ValueError("soft_age must be >= 0 (or None)")

    @property
    def resolved_drain_rate(self) -> float:
        return self.drain_rate if self.drain_rate is not None \
            else self.tenant_rate

    @property
    def soft_occupancy(self) -> int:
        """Queue occupancy at which the SOFT signal engages (>= 1)."""
        return max(1, int(self.soft_fraction * self.queue_limit))

    @property
    def resolved_soft_age(self) -> float:
        if self.soft_age is not None:
            return self.soft_age
        return 0.5 * self.queue_limit / self.resolved_drain_rate

    @property
    def max_queue_delay(self) -> float:
        """Worst-case admitted queue delay the bounded queue can impose."""
        return self.queue_limit / self.resolved_drain_rate

    def as_dict(self) -> dict:
        """Scorecard-config form (stable keys, resolved defaults)."""
        return {
            "tenant_rate": self.tenant_rate,
            "tenant_burst": self.tenant_burst,
            "queue_limit": self.queue_limit,
            "drain_rate": self.resolved_drain_rate,
            "soft_fraction": self.soft_fraction,
            "soft_age": self.resolved_soft_age,
            "adaptive_sources": self.adaptive_sources,
        }


@dataclass(frozen=True)
class AdmissionDecision:
    """The verdict on one offered request."""

    status: str  #: ADMITTED | THROTTLED | SHED
    level: CongestionLevel
    #: Trace time the admission queue hands the request onward (admitted
    #: only); the request is re-stamped to this time before serving.
    release_time: Optional[float] = None
    #: ``release_time - effective arrival`` (admitted only).
    queue_delay: float = 0.0
    #: Trace seconds until the tenant's bucket holds a token again
    #: (throttled only) — the back-off hint sources should honour.
    retry_after: float = 0.0

    @property
    def admitted(self) -> bool:
        return self.status == ADMITTED


class _TenantState:
    """Per-tenant admission state (bucket, bounded queue, pacing clock)."""

    __slots__ = ("bucket", "queue", "last_release", "next_allowed",
                 "signal", "offered", "admitted", "throttled", "shed",
                 "max_depth")

    def __init__(self, config: IngestConfig) -> None:
        self.bucket = TokenBucket(config.tenant_rate, config.tenant_burst)
        #: (enqueue_time, release_time) per queued request.
        self.queue: Deque[Tuple[float, float]] = deque()
        self.last_release = 0.0
        self.next_allowed = 0.0
        self.signal = CongestionLevel.OK
        self.offered = 0
        self.admitted = 0
        self.throttled = 0
        self.shed = 0
        self.max_depth = 0


class AdmissionController:
    """Deterministic per-tenant admission over a time-ordered stream.

    One controller serves one serving stack (a whole single-process run, or
    one shard).  ``metrics`` (typically the serving registry's
    :class:`~repro.obs.metrics.MetricsRegistry`) receives the
    ``ingest.*`` counters and the ``ingest.queue_delay_seconds`` timing
    histogram, whose raw samples merge exactly across shards.

    ``per_tenant`` overrides the uniform config for named tenants.
    """

    def __init__(self, config: IngestConfig = IngestConfig(),
                 metrics: Optional[MetricsRegistry] = None,
                 per_tenant: Optional[Dict[str, IngestConfig]] = None
                 ) -> None:
        self.config = config
        self.per_tenant_config = dict(per_tenant or {})
        self._states: Dict[str, _TenantState] = {}
        self._metrics = metrics
        if metrics is not None:
            self._offered = metrics.counter("ingest.offered")
            self._admitted = metrics.counter("ingest.admitted")
            self._throttled = metrics.counter("ingest.throttled")
            self._shed = metrics.counter("ingest.shed")
            self._delay = metrics.timing("ingest.queue_delay_seconds")
            self._depth = metrics.gauge("ingest.queue_depth")
        else:
            self._offered = self._admitted = self._throttled = None
            self._shed = self._delay = self._depth = None

    # ------------------------------------------------------------------ #
    # Core decision
    # ------------------------------------------------------------------ #

    def tenant_config(self, tenant_id: str) -> IngestConfig:
        return self.per_tenant_config.get(tenant_id, self.config)

    def _state(self, tenant_id: str) -> _TenantState:
        state = self._states.get(tenant_id)
        if state is None:
            state = self._states[tenant_id] = _TenantState(
                self.tenant_config(tenant_id))
        return state

    def offer(self, request: Request) -> AdmissionDecision:
        """Decide one request; exactly one of admit/throttle/shed."""
        config = self.tenant_config(request.tenant_id)
        state = self._state(request.tenant_id)
        state.offered += 1
        if self._offered is not None:
            self._offered.inc()
        now = request.time
        if config.adaptive_sources and state.signal >= CongestionLevel.SOFT:
            # Near-source flow control: a SOFT-signalled source falls back
            # to sustained-rate pacing, so its effective arrival may be
            # later than its wire arrival.  Deterministic: a pure function
            # of the arrival sequence.
            now = max(now, state.next_allowed)
        state.next_allowed = max(state.next_allowed, now) \
            + 1.0 / config.tenant_rate

        # Drain the virtual queue to the (effective) arrival, then judge
        # congestion on what is still backed up.
        queue = state.queue
        while queue and queue[0][1] <= now:
            queue.popleft()
        occupancy = len(queue)
        if occupancy >= config.queue_limit:
            state.signal = CongestionLevel.HARD
        elif occupancy >= config.soft_occupancy or (
                queue and now - queue[0][0] >= config.resolved_soft_age):
            state.signal = CongestionLevel.SOFT
        else:
            state.signal = CongestionLevel.OK

        if state.signal is CongestionLevel.HARD:
            # Queue full: shed at admission (no token consumed) rather
            # than tail-drop after queueing.
            state.shed += 1
            if self._shed is not None:
                self._shed.inc()
            return AdmissionDecision(status=SHED, level=state.signal)

        if not state.bucket.try_consume(now):
            state.throttled += 1
            if self._throttled is not None:
                self._throttled.inc()
            return AdmissionDecision(
                status=THROTTLED, level=state.signal,
                retry_after=state.bucket.seconds_until(),
            )

        release = max(now, state.last_release
                      + 1.0 / config.resolved_drain_rate)
        state.last_release = release
        queue.append((now, release))
        state.max_depth = max(state.max_depth, len(queue))
        state.admitted += 1
        delay = release - now
        if self._admitted is not None:
            self._admitted.inc()
            self._delay.observe(delay)
            if len(queue) > self._depth.value:
                self._depth.set(len(queue))
        return AdmissionDecision(status=ADMITTED, level=state.signal,
                                 release_time=release, queue_delay=delay)

    def admit(self, requests: Iterable[Request]) -> List[Request]:
        """Run a whole time-ordered stream through admission.

        Returns the admitted requests re-stamped to their queue release
        times, re-sorted (stably) so the serving loop sees a time-ordered
        stream again.  Throttled and shed requests are counted, never
        forwarded — the callers that need the per-request verdicts use
        :meth:`offer` directly.
        """
        admitted: List[Request] = []
        for request in sorted(requests, key=lambda r: r.time):
            decision = self.offer(request)
            if decision.admitted:
                admitted.append(replace(request,
                                        time=decision.release_time))
        admitted.sort(key=lambda r: r.time)
        return admitted

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #

    @property
    def offered(self) -> int:
        return sum(s.offered for s in self._states.values())

    @property
    def admitted(self) -> int:
        return sum(s.admitted for s in self._states.values())

    @property
    def throttled(self) -> int:
        return sum(s.throttled for s in self._states.values())

    @property
    def shed(self) -> int:
        return sum(s.shed for s in self._states.values())

    def counters(self) -> Dict[str, int]:
        """The admission tally (deterministic across replays)."""
        return {
            "ingest_offered": self.offered,
            "ingest_admitted": self.admitted,
            "ingest_throttled": self.throttled,
            "ingest_shed": self.shed,
        }

    def tenant_summary(self, trace_seconds: float) -> Dict[str, dict]:
        """Per-tenant admission telemetry, including goodput.

        Goodput is admitted packets over the run's trace duration — a
        trace-clock figure, so it is deterministic like the counters.
        Also publishes ``ingest.goodput_pps.<tenant>`` gauges into the
        bound metrics registry (max-merge across shards is exact because
        tenants are shard-disjoint).
        """
        duration = max(trace_seconds, 1e-12)
        summary: Dict[str, dict] = {}
        for tenant_id in sorted(self._states):
            state = self._states[tenant_id]
            goodput = state.admitted / duration
            if self._metrics is not None:
                self._metrics.gauge(
                    f"ingest.goodput_pps.{tenant_id}").set(goodput)
            summary[tenant_id] = {
                "offered": state.offered,
                "admitted": state.admitted,
                "throttled": state.throttled,
                "shed": state.shed,
                "goodput_pps": goodput,
                "max_queue_depth": state.max_depth,
                "signal": state.signal.name,
            }
        return summary
