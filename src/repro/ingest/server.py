"""The asyncio ingestion frontend: concurrent streams, one serving thread.

:class:`IngestServer` is the edge of the serving stack: any number of
concurrent per-tenant asyncio request streams call :meth:`IngestServer.submit`,
admission control (:class:`~repro.ingest.admission.AdmissionController`)
decides each request on its *trace-time* stamp, and admitted requests are
handed across a thread-safe queue to the single serving thread the rest of
:mod:`repro.serve` assumes — where a :class:`~repro.serve.batcher.MicroBatcher`
coalesces them and each released batch executes on the owning tenant's
compiled engine.  Results travel back as asyncio futures resolved via
``loop.call_soon_threadsafe``.

Rejections are *typed*: ``submit`` raises
:class:`~repro.exceptions.ThrottledError` (reason ``"throttled"`` or
``"shed"``) the moment admission refuses, so a source always learns its
packet's fate — the frontend never tail-drops silently.

Determinism note: admission state is per-tenant and each tenant's stream
submits sequentially, so the admit/throttle/shed *counters* are independent
of how the event loop interleaves tenants.  Batch composition, by contrast,
depends on arrival interleaving at the batcher — live serving is not a
replay surface; record a trace for that (see docs/ingest.md).
"""

from __future__ import annotations

import asyncio
import queue
import threading
from dataclasses import dataclass, replace
from typing import AsyncIterable, Dict, List, Optional, Tuple

from repro.engine.layout import packets_to_array
from repro.exceptions import IngestError, ThrottledError
from repro.ingest.admission import (
    SHED,
    AdmissionController,
    IngestConfig,
)
from repro.serve.batcher import BatchPolicy, MicroBatcher, Request
from repro.serve.registry import TenantRegistry

#: Sentinel shutting the serving thread down (flushes all queues first).
_STOP = object()


@dataclass
class StreamSummary:
    """Outcome of pushing one async stream through :meth:`serve_stream`."""

    tenant_id: str
    offered: int = 0
    admitted: int = 0
    throttled: int = 0
    shed: int = 0
    #: (request seq stamp at submission order, matched priority or None).
    results: List[Tuple[int, Optional[int]]] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.results is None:
            self.results = []


class IngestServer:
    """Multiplexes concurrent async request streams onto a serving thread.

    Args:
        registry: the tenants to serve (slots are consulted per batch, so
            hot swaps land between batches exactly as in
            :class:`~repro.serve.service.ClassificationService`).
        config: admission knobs applied to every tenant (``per_tenant``
            overrides individual tenants).
        policy: micro-batching knobs for the serving thread.

    Use as an async context manager::

        async with IngestServer(registry, config) as server:
            priority = await server.submit(request)   # may raise ThrottledError
    """

    def __init__(self, registry: TenantRegistry,
                 config: IngestConfig = IngestConfig(),
                 policy: BatchPolicy = BatchPolicy(),
                 per_tenant: Optional[Dict[str, IngestConfig]] = None,
                 idle_flush: float = 0.005) -> None:
        self.registry = registry
        self.policy = policy
        # Wall seconds of hand-off silence after which partial batches are
        # force-flushed.  The batcher's own deadline runs on trace time, so
        # without this a lone awaited submit would stall until the next
        # arrival happened to release its batch.
        self.idle_flush = idle_flush
        self.admission = AdmissionController(config, metrics=registry.metrics,
                                             per_tenant=per_tenant)
        self._handoff: "queue.Queue" = queue.Queue()
        self._futures: Dict[int, Tuple[asyncio.Future,
                                       asyncio.AbstractEventLoop]] = {}
        self._futures_lock = threading.Lock()
        self._ticket = 0
        self._thread: Optional[threading.Thread] = None
        self._served = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        if self._thread is not None:
            raise IngestError("IngestServer is already running")
        self._thread = threading.Thread(target=self._serve_loop,
                                        name="ingest-serving", daemon=True)
        self._thread.start()

    async def stop(self) -> None:
        """Flush every tenant queue and join the serving thread."""
        if self._thread is None:
            return
        self._handoff.put(_STOP)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._thread.join)
        self._thread = None

    async def __aenter__(self) -> "IngestServer":
        self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def served(self) -> int:
        """Requests executed by the serving thread so far."""
        return self._served

    # ------------------------------------------------------------------ #
    # Submission (event-loop side)
    # ------------------------------------------------------------------ #

    async def submit(self, request: Request) -> Optional[int]:
        """Admit one request and await its matched rule priority.

        Raises :class:`ThrottledError` when admission refuses (reason
        ``"throttled"`` on an empty token bucket, ``"shed"`` at the HARD
        congestion level).  Returns the winning rule priority (``None`` =
        no match) once the request's batch has executed.
        """
        if self._thread is None:
            raise IngestError("IngestServer is not running (call start())")
        decision = self.admission.offer(request)
        if not decision.admitted:
            raise ThrottledError(
                tenant_id=request.tenant_id,
                time=request.time,
                reason="shed" if decision.status == SHED else "throttled",
                level=int(decision.level),
                retry_after=decision.retry_after,
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        with self._futures_lock:
            ticket = self._ticket
            self._ticket += 1
            self._futures[ticket] = (future, loop)
        # The serving thread keys results off the seq stamp, so the server
        # owns it here (generated workloads carry their own seq; a live
        # source's request identity is this ticket).
        self._handoff.put(replace(request, time=decision.release_time,
                                  seq=ticket))
        return await future

    async def serve_stream(self, tenant_id: str,
                           requests: AsyncIterable[Request]
                           ) -> StreamSummary:
        """Drive one tenant's async stream through admission and serving.

        A convenience wrapper over :meth:`submit` that absorbs
        :class:`ThrottledError` into per-stream tallies (the typed errors
        are the API; this is the bookkeeping view sources usually want).
        """
        summary = StreamSummary(tenant_id=tenant_id)
        async for request in requests:
            summary.offered += 1
            try:
                priority = await self.submit(request)
            except ThrottledError as error:
                if error.reason == "shed":
                    summary.shed += 1
                else:
                    summary.throttled += 1
                continue
            summary.admitted += 1
            summary.results.append((summary.offered - 1, priority))
        return summary

    # ------------------------------------------------------------------ #
    # Serving thread
    # ------------------------------------------------------------------ #

    def _resolve(self, request: Request, priority: Optional[int]) -> None:
        with self._futures_lock:
            entry = self._futures.pop(request.seq, None)
        if entry is None:  # pragma: no cover - cancelled caller
            return
        future, loop = entry
        def _set() -> None:
            if not future.cancelled():
                future.set_result(priority)
        loop.call_soon_threadsafe(_set)

    def _execute(self, tenant_id: str, batch: List[Request]) -> None:
        if not batch:
            return
        slot = self.registry.slot(tenant_id)
        engine = slot.engine()  # installs a finished swap, if any
        values = packets_to_array([r.packet for r in batch])
        indices = engine.lookup_batch(values)
        self._served += len(batch)
        for request, index in zip(batch, indices):
            priority = engine.rules[index].priority if index >= 0 else None
            self._resolve(request, priority)

    def _serve_loop(self) -> None:
        batcher = MicroBatcher(self.policy)
        while True:
            try:
                item = self._handoff.get(timeout=self.idle_flush)
            except queue.Empty:
                # The hand-off went quiet for a flush interval: release the
                # partial batches so awaiting submitters get answers.
                for tenant_id, batch in batcher.flush_all():
                    self._execute(tenant_id, batch)
                continue
            if item is _STOP:
                break
            for tenant_id, batch in batcher.offer(item):
                self._execute(tenant_id, batch)
        for tenant_id, batch in batcher.flush_all():
            self._execute(tenant_id, batch)
        self.registry.drain()
