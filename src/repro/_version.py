"""Package version, single source of truth."""

__version__ = "0.1.0"
