"""Native traversal kernels behind the :class:`~repro.engine.layout.FlatTree` layout.

The NumPy engine walks a flat tree *level-synchronously*: one Python-level
iteration per tree level, boolean-mask bookkeeping per iteration.  That
amortises the interpreter away, but the hot loop still pays NumPy dispatch
roughly ``depth + max_leaf_span`` times per batch.  The kernels here walk
the **same arrays** per packet instead — descend to the leaf, scan its rule
span, first hit wins — compiled to native code with numba and parallelised
over the batch, so a lookup costs a handful of machine instructions per
level with zero Python in the loop.

Backends are selected by name through the registry:

* ``"numpy"`` — the PR 1 level-synchronous engine; always available.
* ``"numba"`` — the jitted kernels; requires the optional ``numba``
  dependency (``pip install repro[native]``).  Requesting it without numba
  raises :class:`~repro.exceptions.EngineBackendError`.
* ``"auto"`` — ``"numba"`` when importable, else ``"numpy"`` with a
  one-time :class:`RuntimeWarning` so offline installs and the 1-CPU CI
  container keep working unchanged.

The kernel bodies are written in nopython-compatible Python and jitted at
import when numba is present.  When it is absent they remain callable as
plain Python over the same unstructured int64 views — orders of magnitude
slower, but byte-identical in behaviour — which is what lets the
differential tests exercise the kernel *logic* everywhere, not just on
machines with numba installed.

Exactness contract: for any batch, every backend returns byte-identical
match indices.  Both the per-tree order (leaf spans are sorted highest
priority first; the first containing row wins) and the cross-tree merge
(strictly greater priority wins, earlier tree wins ties) replicate the
NumPy engine exactly.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Tuple

import numpy as np

from repro.exceptions import EngineBackendError
from repro.engine.layout import (
    COL_BASE,
    COL_CHILD_START,
    COL_DIM,
    COL_KIND,
    COL_LO,
    COL_POINT,
    COL_REM,
    COL_RULE_END,
    COL_RULE_START,
    KIND_CUT,
    KIND_LEAF,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.layout import FlatTree

#: Backends accepted everywhere a backend can be named (``CompiledClassifier``,
#: ``EngineSlot``, ``repro engine-bench --engine``, ...).
ENGINE_BACKENDS = ("numpy", "numba", "auto")

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the repo's own CI default
    _numba = None
    NUMBA_AVAILABLE = False

#: Sentinel leaf/row meaning the recorded depth was overrun (corrupt tree).
_OVERRUN = -2

_warned_auto_fallback = False


def available_backends() -> Tuple[str, ...]:
    """The concrete backends this installation can actually run."""
    return ("numpy", "numba") if NUMBA_AVAILABLE else ("numpy",)


def resolve_backend(backend: str) -> str:
    """Resolve a requested backend name to a concrete one.

    ``"auto"`` prefers ``"numba"`` and falls back to ``"numpy"`` with a
    one-time :class:`RuntimeWarning` when numba is not importable; asking
    for ``"numba"`` explicitly without numba raises
    :class:`~repro.exceptions.EngineBackendError` instead, because an
    explicit request silently served by a 20x-slower engine is a footgun.
    """
    global _warned_auto_fallback
    if backend not in ENGINE_BACKENDS:
        raise EngineBackendError(
            f"unknown engine backend {backend!r}; "
            f"choose from {ENGINE_BACKENDS}"
        )
    if backend == "auto":
        if NUMBA_AVAILABLE:
            return "numba"
        if not _warned_auto_fallback:
            _warned_auto_fallback = True
            warnings.warn(
                "engine backend 'auto': numba is not installed, falling "
                "back to the numpy traversal engine (pip install "
                "repro[native] for the jitted kernels)",
                RuntimeWarning,
                stacklevel=2,
            )
        return "numpy"
    if backend == "numba" and not NUMBA_AVAILABLE:
        raise EngineBackendError(
            "engine backend 'numba' requested but numba is not installed; "
            "pip install repro[native] (or use backend='auto' to fall "
            "back to numpy)"
        )
    return backend


def _jit(**kwargs):
    """``numba.njit`` when available, identity otherwise (plain-Python mode)."""
    if NUMBA_AVAILABLE:
        return _numba.njit(cache=False, **kwargs)
    return lambda fn: fn


#: ``numba.prange`` under the jit, plain ``range`` in fallback mode.
prange = _numba.prange if NUMBA_AVAILABLE else range


# --------------------------------------------------------------------------- #
# Per-packet kernels
# --------------------------------------------------------------------------- #

@_jit(nogil=True)
def descend_one(nodes, values, i, depth):
    """Leaf node index reached by packet ``i``, or ``-2`` on depth overrun.

    ``nodes`` is the unstructured node view; the cut-child arithmetic is the
    same ``(v - lo, base, rem)`` computation the NumPy engine vectorises
    (``rem`` children of ``base + 1`` values, then ``base``-value children).
    """
    node = 0
    steps = 0
    while nodes[node, COL_KIND] != KIND_LEAF:
        # Mirrors FlatTree.descend's guard: a well-formed tree reaches its
        # leaves within the recorded depth; anything deeper is corruption.
        if steps > depth + 1:
            return _OVERRUN
        steps += 1
        v = values[i, nodes[node, COL_DIM]]
        if nodes[node, COL_KIND] == KIND_CUT:
            base = nodes[node, COL_BASE]
            rem = nodes[node, COL_REM]
            offset = v - nodes[node, COL_LO]
            first = offset // (base + 1)
            if first < rem:
                child = first
            else:
                child = rem + (offset - rem * (base + 1)) // base
        else:  # KIND_SPLIT
            if v >= nodes[node, COL_POINT]:
                child = 1
            else:
                child = 0
        node = nodes[node, COL_CHILD_START] + child
    return node


@_jit(nogil=True)
def lookup_one(nodes, leaf_lo, leaf_hi, values, i, depth):
    """Leaf-rule row matched by packet ``i`` (-1: none, -2: depth overrun).

    Scans the reached leaf's span in order; rows are sorted highest
    priority first at compile time, so the first containing row wins —
    the same answer the NumPy engine's lockstep scan produces.
    """
    node = descend_one(nodes, values, i, depth)
    if node == _OVERRUN:
        return _OVERRUN
    row = nodes[node, COL_RULE_START]
    end = nodes[node, COL_RULE_END]
    while row < end:
        hit = True
        for d in range(values.shape[1]):
            v = values[i, d]
            if v < leaf_lo[row, d] or v >= leaf_hi[row, d]:
                hit = False
                break
        if hit:
            return row
        row += 1
    return -1


# --------------------------------------------------------------------------- #
# Per-batch kernels
# --------------------------------------------------------------------------- #

@_jit(nogil=True, parallel=True)
def descend_batch(nodes, values, depth, out):
    """Fill ``out[i]`` with each packet's leaf index; returns overrun count."""
    overruns = 0
    for i in prange(values.shape[0]):
        leaf = descend_one(nodes, values, i, depth)
        out[i] = leaf
        if leaf == _OVERRUN:
            overruns += 1
    return overruns


@_jit(nogil=True, parallel=True)
def lookup_batch(nodes, leaf_lo, leaf_hi, values, depth, out):
    """Fill ``out[i]`` with each packet's leaf-rule row; returns overruns."""
    overruns = 0
    for i in prange(values.shape[0]):
        row = lookup_one(nodes, leaf_lo, leaf_hi, values, i, depth)
        out[i] = row
        if row == _OVERRUN:
            overruns += 1
    return overruns


@_jit(nogil=True, parallel=True)
def match_batch(nodes, leaf_lo, leaf_hi, leaf_priority, leaf_rule_index,
                values, depth, best_priority, best_rule):
    """Fold one search tree into the per-packet best-match accumulators.

    ``best_priority``/``best_rule`` carry the running winner across the
    classifier's search trees; a hit only replaces it when its priority is
    *strictly* greater, so earlier trees win ties — exactly the NumPy
    dispatcher's merge.  Returns the overrun count.
    """
    overruns = 0
    for i in prange(values.shape[0]):
        row = lookup_one(nodes, leaf_lo, leaf_hi, values, i, depth)
        if row == _OVERRUN:
            overruns += 1
        elif row >= 0 and leaf_priority[row] > best_priority[i]:
            best_priority[i] = leaf_priority[row]
            best_rule[i] = leaf_rule_index[row]
    return overruns


# --------------------------------------------------------------------------- #
# Array-facing wrappers (the backend the dispatcher calls)
# --------------------------------------------------------------------------- #

def _check_overruns(overruns: int, tree: "FlatTree") -> None:
    if overruns:
        raise RuntimeError("flat tree deeper than its recorded depth")


def descend(tree: "FlatTree", values: np.ndarray) -> np.ndarray:
    """Backend-"numba" equivalent of :meth:`FlatTree.descend`."""
    tables = tree.kernel_tables()
    out = np.empty(len(values), dtype=np.int64)
    if len(values):
        overruns = descend_batch(tables.nodes, values, tree.depth, out)
        _check_overruns(overruns, tree)
    return out


def lookup_rows(tree: "FlatTree", values: np.ndarray) -> np.ndarray:
    """Backend-"numba" equivalent of :meth:`FlatTree.lookup`."""
    tables = tree.kernel_tables()
    out = np.empty(len(values), dtype=np.int64)
    if len(values):
        overruns = lookup_batch(tables.nodes, tables.leaf_lo, tables.leaf_hi,
                                values, tree.depth, out)
        _check_overruns(overruns, tree)
    return out


def match_into(tree: "FlatTree", values: np.ndarray,
               best_priority: np.ndarray, best_rule: np.ndarray) -> None:
    """Fold ``tree`` into the dispatcher's best-match accumulators."""
    if not len(values):
        return
    tables = tree.kernel_tables()
    overruns = match_batch(tables.nodes, tables.leaf_lo, tables.leaf_hi,
                           tables.leaf_priority, tables.leaf_rule_index,
                           values, tree.depth, best_priority, best_rule)
    _check_overruns(overruns, tree)
