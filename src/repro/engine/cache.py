"""LRU flow cache for the compiled engine.

Real dataplanes exploit flow locality: packets of one flow share the same
5-tuple, so the full tree walk only has to happen once per flow.  The cache
maps a 5-tuple to the classifier's answer (the index of the matched rule, or
``-1`` for a miss) and evicts least-recently-used flows beyond its capacity.

The cache must be invalidated when the classifier changes; the dispatcher
clears it automatically when a recompilation is detected, and callers doing
in-place rule updates should call :meth:`FlowCache.clear`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.obs.serialize import stable_dict

#: Default number of flows kept by a cache when no capacity is given.
DEFAULT_FLOW_CACHE_SIZE = 4096

FlowKey = Tuple[int, int, int, int, int]


@dataclass
class FlowCacheStats:
    """Hit/miss/eviction counters of one flow cache.

    ``evictions`` counts flows dropped by the LRU capacity bound;
    ``invalidations`` counts flows dropped by :meth:`FlowCache.clear` (rule
    updates, engine swaps).  Serving telemetry reads both directly instead of
    inferring churn from hit-rate dips.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "FlowCacheStats") -> "FlowCacheStats":
        """Accumulate another cache's counters (telemetry across swaps)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.invalidations += other.invalidations
        return self

    def as_dict(self) -> dict:
        return stable_dict({
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        })


class FlowCache:
    """A bounded LRU map from packet 5-tuples to classification results."""

    def __init__(self, capacity: int = DEFAULT_FLOW_CACHE_SIZE) -> None:
        if capacity < 1:
            raise ValueError("flow cache capacity must be >= 1")
        self.capacity = capacity
        self.stats = FlowCacheStats()
        self._entries: "OrderedDict[FlowKey, int]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: FlowKey) -> Optional[int]:
        """The cached rule index for a flow, or None on a cache miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: FlowKey, rule_index: int) -> None:
        """Insert or refresh a flow's classification result."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = rule_index
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def entries(self) -> "list[Tuple[FlowKey, int]]":
        """The cached ``(flow key, rule index)`` pairs in LRU order.

        What ships when a tenant slot migrates between serving shards —
        restoring them on the target keeps hit/miss telemetry continuous
        across the move.
        """
        return list(self._entries.items())

    def restore(self, entries: "list[Tuple[FlowKey, int]]",
                stats: FlowCacheStats) -> None:
        """Adopt another cache's entries and counters (slot migration).

        Replaces contents wholesale without touching eviction or
        invalidation counters; entries beyond capacity are dropped oldest
        first (uncounted — they were already accounted by the source).
        """
        self._entries = OrderedDict(entries)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        self.stats = stats

    def clear(self) -> int:
        """Drop every entry; returns how many flows were invalidated.

        The dropped count is added to ``stats.invalidations`` (distinct from
        LRU ``evictions``), so callers invalidating on rule updates get the
        churn attributed correctly.
        """
        dropped = len(self._entries)
        self._entries.clear()
        self.stats.invalidations += dropped
        return dropped
