"""Compilation of interpreter trees into flat search structures.

Compilation happens in three steps:

1. **Partition expansion** — partition nodes (NeuroCuts' top-node partitions
   and EffiCuts category splits) require consulting *every* child, which has
   no place in a single-descent flat tree.  Each partition node is expanded
   into one independent search tree per child; the dispatcher queries all of
   them and keeps the highest-priority match, which is exactly the
   interpreter's partition semantics.
2. **Normalisation** — every cut-family action is rewritten into the two
   primitive node shapes the flat layout supports: a multi-dimension cut
   becomes a chain of single-dimension cut levels (children ordered the same
   row-major way the interpreter orders the cut's cartesian product), and a
   split keeps its single boundary point.
3. **Flattening** — the normalised tree is laid out breadth-first into the
   structured node array, so every node's children occupy one contiguous
   index span, and the per-leaf rule lists are concatenated (highest
   priority first) into the leaf rule table.

The result is a :class:`~repro.engine.dispatch.CompiledClassifier` holding
one :class:`~repro.engine.layout.FlatTree` per partition of each tree of the
source classifier.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import TreeError
from repro.rules.rule import Rule
from repro.tree.actions import CutAction, MultiCutAction, SplitAction
from repro.tree.node import Node
from repro.tree.tree import DecisionTree
from repro.engine.layout import (
    KIND_CUT,
    KIND_LEAF,
    KIND_SPLIT,
    NODE_DTYPE,
    RULE_DTYPE,
    FlatTree,
)

#: Safety cap on how many search trees one interpreter tree may expand into
#: (partitions below the top of a tree multiply variants).
MAX_SEARCH_TREES = 256


class CompileError(TreeError):
    """Raised when a tree cannot be lowered to the flat layout."""


# --------------------------------------------------------------------------- #
# Normalised intermediate nodes
# --------------------------------------------------------------------------- #

@dataclass
class _Leaf:
    rules: List[Rule]


@dataclass
class _Cut:
    dim: int
    lo: int
    base: int
    rem: int
    children: List[object] = field(default_factory=list)


@dataclass
class _Split:
    dim: int
    point: int
    children: List[object] = field(default_factory=list)


# --------------------------------------------------------------------------- #
# Step 1: partition expansion
# --------------------------------------------------------------------------- #

def _expand_partitions(node: Node) -> List[Node]:
    """Expand partition nodes into independent single-descent subtrees.

    Returns the roots of the cut/split-only trees equivalent to ``node``.
    A partition above the cut structure simply contributes one tree per
    child; a partition *below* a cut duplicates the path above it once per
    partition child (each duplicate routes packets to a different member of
    the partition), which preserves the all-children-consulted semantics.
    """
    if node.is_leaf:
        return [node]
    if node.is_partition_node:
        expanded: List[Node] = []
        for child in node.children:
            expanded.extend(_expand_partitions(child))
            if len(expanded) > MAX_SEARCH_TREES:
                raise CompileError(
                    "partition structure expands into more than "
                    f"{MAX_SEARCH_TREES} search trees"
                )
        return expanded
    variant_lists = [_expand_partitions(child) for child in node.children]
    total = 1
    for variants in variant_lists:
        total *= len(variants)
        if total > MAX_SEARCH_TREES:
            raise CompileError(
                "partition structure expands into more than "
                f"{MAX_SEARCH_TREES} search trees"
            )
    if total == 1:
        return [node]
    # Cartesian product over per-child variants: each combination is a clone
    # of this node routing into one member of every nested partition.
    roots: List[Node] = []
    indices = [0] * len(variant_lists)
    for _ in range(total):
        clone = Node(
            ranges=node.ranges,
            rules=node.rules,
            depth=node.depth,
            partition_state=node.partition_state,
            efficuts_category=node.efficuts_category,
        )
        clone.action = node.action
        clone.children = [variants[i] for variants, i
                          in zip(variant_lists, indices)]
        roots.append(clone)
        for pos in range(len(indices) - 1, -1, -1):
            indices[pos] += 1
            if indices[pos] < len(variant_lists[pos]):
                break
            indices[pos] = 0
    return roots


# --------------------------------------------------------------------------- #
# Step 2: normalisation
# --------------------------------------------------------------------------- #

def _cut_params(node: Node, dim: int, num_children: int) -> Tuple[int, int, int]:
    """(lo, base, rem) of an equal cut of ``node`` along ``dim``."""
    lo, hi = node.ranges[dim]
    span = hi - lo
    if num_children < 2 or span < num_children:
        raise CompileError(
            f"cut with {num_children} children over a span of {span} values"
        )
    return lo, span // num_children, span % num_children


def _normalize(node: Node) -> object:
    """Rewrite one expanded node into the primitive _Leaf/_Cut/_Split shapes."""
    if node.is_leaf:
        # Highest priority first so the first match inside a leaf wins.
        return _Leaf(rules=sorted(node.rules, key=lambda r: -r.priority))
    action = node.action
    children = node.children
    if isinstance(action, CutAction):
        lo, base, rem = _cut_params(node, int(action.dimension), len(children))
        return _Cut(dim=int(action.dimension), lo=lo, base=base, rem=rem,
                    children=[_normalize(c) for c in children])
    if isinstance(action, SplitAction):
        return _Split(dim=int(action.dimension), point=action.split_point,
                      children=[_normalize(c) for c in children])
    if isinstance(action, MultiCutAction):
        return _normalize_multicut(node)
    raise CompileError(f"cannot compile action {action!r}")


def _normalize_multicut(node: Node) -> object:
    """Decompose a multi-dimension cut into a chain of single-dimension cuts.

    The interpreter orders a multicut's children as the row-major cartesian
    product of the per-dimension sub-ranges; the chain reproduces that
    ordering, so grid cell ``(i0, i1, ...)`` resolves to the same child.
    """
    assert isinstance(node.action, MultiCutAction)
    specs = []
    for dim, requested in node.action.cuts:
        lo, hi = node.ranges[int(dim)]
        effective = min(requested, hi - lo)
        lo, base, rem = _cut_params(node, int(dim), effective)
        specs.append((int(dim), lo, base, rem, effective))
    expected = 1
    for spec in specs:
        expected *= spec[4]
    if expected != len(node.children):
        raise CompileError(
            f"multicut fan-out mismatch: grid has {expected} cells, "
            f"node has {len(node.children)} children"
        )

    def build(level: int, prefix: int) -> _Cut:
        dim, lo, base, rem, effective = specs[level]
        cut = _Cut(dim=dim, lo=lo, base=base, rem=rem)
        for i in range(effective):
            cell = prefix * effective + i
            if level == len(specs) - 1:
                cut.children.append(_normalize(node.children[cell]))
            else:
                cut.children.append(build(level + 1, cell))
        return cut

    return build(0, 0)


# --------------------------------------------------------------------------- #
# Step 3: flattening
# --------------------------------------------------------------------------- #

def _flatten(root: object, rule_slot: Dict[int, int],
             rules_out: List[Rule]) -> FlatTree:
    """Lay a normalised tree out breadth-first into the structured arrays."""
    queue = deque([(root, 0)])
    records: List[tuple] = []
    next_index = 1
    leaf_rows: List[tuple] = []
    depth_of = {0: 0}
    max_depth = 0
    max_span = 0
    while queue:
        node, index = queue.popleft()
        depth = depth_of.pop(index)
        max_depth = max(max_depth, depth)
        if isinstance(node, _Leaf):
            start = len(leaf_rows)
            for rule in node.rules:
                slot = rule_slot.setdefault(id(rule), len(rules_out))
                if slot == len(rules_out):
                    rules_out.append(rule)
                leaf_rows.append(
                    (
                        [lo for lo, _ in rule.ranges],
                        [hi for _, hi in rule.ranges],
                        rule.priority,
                        slot,
                    )
                )
            records.append(
                (KIND_LEAF, 0, 0, 0, 0, 0, 0, 0, start, len(leaf_rows))
            )
            max_span = max(max_span, len(node.rules))
            continue
        child_start = next_index
        children = node.children
        next_index += len(children)
        for offset, child in enumerate(children):
            queue.append((child, child_start + offset))
            depth_of[child_start + offset] = depth + 1
        if isinstance(node, _Cut):
            if node.base < 1:
                raise CompileError("cut node with zero-width children")
            records.append(
                (KIND_CUT, node.dim, node.lo, node.base, node.rem, 0,
                 child_start, len(children), 0, 0)
            )
        else:
            assert isinstance(node, _Split)
            records.append(
                (KIND_SPLIT, node.dim, 0, 0, 0, node.point,
                 child_start, len(children), 0, 0)
            )
    nodes = np.array(records, dtype=NODE_DTYPE)
    leaf_rules = np.array(
        [tuple(row) for row in leaf_rows], dtype=RULE_DTYPE
    ) if leaf_rows else np.empty(0, dtype=RULE_DTYPE)
    return FlatTree(nodes=nodes, leaf_rules=leaf_rules,
                    depth=max_depth, max_leaf_span=max_span)


# --------------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------------- #

def compile_tree(tree: DecisionTree, rule_slot: Optional[Dict[int, int]] = None,
                 rules_out: Optional[List[Rule]] = None) -> List[FlatTree]:
    """Compile one interpreter tree into its flat search trees."""
    rule_slot = rule_slot if rule_slot is not None else {}
    rules_out = rules_out if rules_out is not None else []
    return [
        _flatten(_normalize(sub_root), rule_slot, rules_out)
        for sub_root in _expand_partitions(tree.root)
    ]


def compile_classifier(classifier, flow_cache_size: Optional[int] = None):
    """Compile a :class:`~repro.tree.lookup.TreeClassifier` for the engine.

    Returns a :class:`~repro.engine.dispatch.CompiledClassifier` that
    resolves the highest-priority match across every tree and partition in
    one pass over the compiled search trees.
    """
    from repro.engine.dispatch import CompiledClassifier

    rule_slot: Dict[int, int] = {}
    rules_out: List[Rule] = []
    subtrees: List[FlatTree] = []
    for tree in classifier.trees:
        subtrees.extend(compile_tree(tree, rule_slot, rules_out))
    return CompiledClassifier(
        subtrees=subtrees,
        rules=rules_out,
        name=classifier.name,
        flow_cache_size=flow_cache_size,
    )
