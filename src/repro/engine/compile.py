"""Compilation of interpreter trees into flat search structures.

Compilation happens in three steps:

1. **Partition expansion** — partition nodes (NeuroCuts' top-node partitions
   and EffiCuts category splits) require consulting *every* child, which has
   no place in a single-descent flat tree.  Each partition node is expanded
   into one independent search tree per child; the dispatcher queries all of
   them and keeps the highest-priority match, which is exactly the
   interpreter's partition semantics.
2. **Normalisation** — every cut-family action is rewritten into the two
   primitive node shapes the flat layout supports: a multi-dimension cut
   becomes a chain of single-dimension cut levels (children ordered the same
   row-major way the interpreter orders the cut's cartesian product), and a
   split keeps its single boundary point.
3. **Flattening** — the normalised tree is laid out breadth-first into the
   structured node array, so every node's children occupy one contiguous
   index span, and the per-leaf rule lists are concatenated (highest
   priority first) into the leaf rule table.

The result is a :class:`~repro.engine.dispatch.CompiledClassifier` holding
one :class:`~repro.engine.layout.FlatTree` per partition of each tree of the
source classifier.

**Partial recompilation.**  :func:`compile_classifier` records a
:class:`CompileProvenance` on its result — which source tree produced which
span of flat trees, at which version, from which expanded roots — and
:func:`partial_compile_classifier` uses it to rebuild *only* the subtrees
whose rules changed: flat trees of untouched subtrees are carried into the
new engine by reference, and the shared distinct-rule list is patched in
place (append-only, so the still-serving engine's indices never move).  Any
structural surprise — different tree objects, a partition that changed its
expansion, clones in the expansion — falls back to a full rebuild, so the
fast path can never be wrong, only missed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import TreeError
from repro.rules.rule import Rule
from repro.tree.actions import CutAction, MultiCutAction, SplitAction
from repro.tree.node import Node
from repro.tree.tree import DecisionTree
from repro.engine.layout import (
    KIND_CUT,
    KIND_LEAF,
    KIND_SPLIT,
    NODE_DTYPE,
    RULE_DTYPE,
    FlatTree,
)

#: Safety cap on how many search trees one interpreter tree may expand into
#: (partitions below the top of a tree multiply variants).
MAX_SEARCH_TREES = 256


class CompileError(TreeError):
    """Raised when a tree cannot be lowered to the flat layout."""


# --------------------------------------------------------------------------- #
# Normalised intermediate nodes
# --------------------------------------------------------------------------- #

@dataclass
class _Leaf:
    rules: List[Rule]


@dataclass
class _Cut:
    dim: int
    lo: int
    base: int
    rem: int
    children: List[object] = field(default_factory=list)


@dataclass
class _Split:
    dim: int
    point: int
    children: List[object] = field(default_factory=list)


# --------------------------------------------------------------------------- #
# Step 1: partition expansion
# --------------------------------------------------------------------------- #

def _expand_partitions(node: Node) -> List[Node]:
    """Expand partition nodes into independent single-descent subtrees.

    Returns the roots of the cut/split-only trees equivalent to ``node``.
    A partition above the cut structure simply contributes one tree per
    child; a partition *below* a cut duplicates the path above it once per
    partition child (each duplicate routes packets to a different member of
    the partition), which preserves the all-children-consulted semantics.
    """
    if node.is_leaf:
        return [node]
    if node.is_partition_node:
        expanded: List[Node] = []
        for child in node.children:
            expanded.extend(_expand_partitions(child))
            if len(expanded) > MAX_SEARCH_TREES:
                raise CompileError(
                    "partition structure expands into more than "
                    f"{MAX_SEARCH_TREES} search trees"
                )
        return expanded
    variant_lists = [_expand_partitions(child) for child in node.children]
    total = 1
    for variants in variant_lists:
        total *= len(variants)
        if total > MAX_SEARCH_TREES:
            raise CompileError(
                "partition structure expands into more than "
                f"{MAX_SEARCH_TREES} search trees"
            )
    if total == 1:
        return [node]
    # Cartesian product over per-child variants: each combination is a clone
    # of this node routing into one member of every nested partition.  Note
    # for partial recompilation: clones are fresh objects, so an expansion
    # that reaches this point is *unstable* (see _partition_frontier).
    roots: List[Node] = []
    indices = [0] * len(variant_lists)
    for _ in range(total):
        clone = Node(
            ranges=node.ranges,
            rules=node.rules,
            depth=node.depth,
            partition_state=node.partition_state,
            efficuts_category=node.efficuts_category,
        )
        clone.action = node.action
        clone.children = [variants[i] for variants, i
                          in zip(variant_lists, indices)]
        roots.append(clone)
        for pos in range(len(indices) - 1, -1, -1):
            indices[pos] += 1
            if indices[pos] < len(variant_lists[pos]):
                break
            indices[pos] = 0
    return roots


def _partition_frontier(node: Node) -> List[Node]:
    """The nodes just below the tree's partition structure, in tree order.

    Descends through partition nodes only.  When no partition sits *below*
    a cut, :func:`_expand_partitions` returns exactly these nodes (by
    identity, no clones) — the *stable* case partial recompilation needs:
    every frontier node is a live node of the interpreter tree that rule
    updates mutate in place, so "which subtree did this delta touch" is
    answerable by looking at the frontier nodes' rule lists.
    """
    if not node.is_leaf and node.is_partition_node:
        frontier: List[Node] = []
        for child in node.children:
            frontier.extend(_partition_frontier(child))
        return frontier
    return [node]


# --------------------------------------------------------------------------- #
# Step 2: normalisation
# --------------------------------------------------------------------------- #

def _cut_params(node: Node, dim: int, num_children: int) -> Tuple[int, int, int]:
    """(lo, base, rem) of an equal cut of ``node`` along ``dim``."""
    lo, hi = node.ranges[dim]
    span = hi - lo
    if num_children < 2 or span < num_children:
        raise CompileError(
            f"cut with {num_children} children over a span of {span} values"
        )
    return lo, span // num_children, span % num_children


def _normalize(node: Node) -> object:
    """Rewrite one expanded node into the primitive _Leaf/_Cut/_Split shapes."""
    if node.is_leaf:
        # Highest priority first so the first match inside a leaf wins.
        return _Leaf(rules=sorted(node.rules, key=lambda r: -r.priority))
    action = node.action
    children = node.children
    if isinstance(action, CutAction):
        lo, base, rem = _cut_params(node, int(action.dimension), len(children))
        return _Cut(dim=int(action.dimension), lo=lo, base=base, rem=rem,
                    children=[_normalize(c) for c in children])
    if isinstance(action, SplitAction):
        return _Split(dim=int(action.dimension), point=action.split_point,
                      children=[_normalize(c) for c in children])
    if isinstance(action, MultiCutAction):
        return _normalize_multicut(node)
    raise CompileError(f"cannot compile action {action!r}")


def _normalize_multicut(node: Node) -> object:
    """Decompose a multi-dimension cut into a chain of single-dimension cuts.

    The interpreter orders a multicut's children as the row-major cartesian
    product of the per-dimension sub-ranges; the chain reproduces that
    ordering, so grid cell ``(i0, i1, ...)`` resolves to the same child.
    """
    assert isinstance(node.action, MultiCutAction)
    specs = []
    for dim, requested in node.action.cuts:
        lo, hi = node.ranges[int(dim)]
        effective = min(requested, hi - lo)
        lo, base, rem = _cut_params(node, int(dim), effective)
        specs.append((int(dim), lo, base, rem, effective))
    expected = 1
    for spec in specs:
        expected *= spec[4]
    if expected != len(node.children):
        raise CompileError(
            f"multicut fan-out mismatch: grid has {expected} cells, "
            f"node has {len(node.children)} children"
        )

    def build(level: int, prefix: int) -> _Cut:
        dim, lo, base, rem, effective = specs[level]
        cut = _Cut(dim=dim, lo=lo, base=base, rem=rem)
        for i in range(effective):
            cell = prefix * effective + i
            if level == len(specs) - 1:
                cut.children.append(_normalize(node.children[cell]))
            else:
                cut.children.append(build(level + 1, cell))
        return cut

    return build(0, 0)


# --------------------------------------------------------------------------- #
# Step 3: flattening
# --------------------------------------------------------------------------- #

def _flatten(root: object, rule_slot: Dict[Rule, int],
             rules_out: List[Rule]) -> FlatTree:
    """Lay a normalised tree out breadth-first into the structured arrays.

    ``rule_slot`` keys are the (frozen, hashable) rules themselves, not
    object ids: ids of dead objects get recycled, which would silently
    alias two different rules across the generations of a partially
    recompiled classifier.  Keying by value also dedupes equal rules, which
    is sound because equal rules match identically at equal priority.
    """
    queue = deque([(root, 0)])
    records: List[tuple] = []
    next_index = 1
    leaf_rows: List[tuple] = []
    depth_of = {0: 0}
    max_depth = 0
    max_span = 0
    while queue:
        node, index = queue.popleft()
        depth = depth_of.pop(index)
        max_depth = max(max_depth, depth)
        if isinstance(node, _Leaf):
            start = len(leaf_rows)
            for rule in node.rules:
                slot = rule_slot.setdefault(rule, len(rules_out))
                if slot == len(rules_out):
                    rules_out.append(rule)
                leaf_rows.append(
                    (
                        [lo for lo, _ in rule.ranges],
                        [hi for _, hi in rule.ranges],
                        rule.priority,
                        slot,
                    )
                )
            records.append(
                (KIND_LEAF, 0, 0, 0, 0, 0, 0, 0, start, len(leaf_rows))
            )
            max_span = max(max_span, len(node.rules))
            continue
        child_start = next_index
        children = node.children
        next_index += len(children)
        for offset, child in enumerate(children):
            queue.append((child, child_start + offset))
            depth_of[child_start + offset] = depth + 1
        if isinstance(node, _Cut):
            if node.base < 1:
                raise CompileError("cut node with zero-width children")
            records.append(
                (KIND_CUT, node.dim, node.lo, node.base, node.rem, 0,
                 child_start, len(children), 0, 0)
            )
        else:
            assert isinstance(node, _Split)
            records.append(
                (KIND_SPLIT, node.dim, 0, 0, 0, node.point,
                 child_start, len(children), 0, 0)
            )
    nodes = np.array(records, dtype=NODE_DTYPE)
    leaf_rules = np.array(
        [tuple(row) for row in leaf_rows], dtype=RULE_DTYPE
    ) if leaf_rows else np.empty(0, dtype=RULE_DTYPE)
    return FlatTree(nodes=nodes, leaf_rules=leaf_rules,
                    depth=max_depth, max_leaf_span=max_span)


# --------------------------------------------------------------------------- #
# Provenance (what partial recompilation needs to remember)
# --------------------------------------------------------------------------- #

@dataclass
class CompileProvenance:
    """How a :class:`CompiledClassifier` was derived from its source trees.

    ``spans[t]`` is the half-open range of ``classifier.subtrees`` compiled
    from source tree ``t`` (one :class:`FlatTree` per expanded root);
    ``roots[t]`` holds that tree's expanded roots when the expansion was
    *stable* (every root is a live node of the interpreter tree — see
    :func:`_partition_frontier`), else ``None``.  ``rule_slot`` is the
    live index into the engine's shared distinct-rule list; partial
    recompiles extend both in place.
    """

    trees: Tuple[DecisionTree, ...]
    versions: Tuple[int, ...]
    spans: Tuple[Tuple[int, int], ...]
    roots: Tuple[Optional[Tuple[Node, ...]], ...]
    rule_slot: Dict[Rule, int]


@dataclass
class PartialCompileResult:
    """What :func:`partial_compile_classifier` did, for metrics and tests."""

    classifier: "CompiledClassifier"  # noqa: F821 - forward ref
    #: True when provenance could not be exploited and everything rebuilt.
    full_rebuild: bool
    #: Source trees whose flat spans were (at least partly) re-flattened.
    trees_recompiled: int
    #: Flat search trees carried into the new engine by reference.
    subtrees_reused: int
    #: Flat-array node rows actually rebuilt (O(delta), not O(tree)).
    nodes_recompiled: int


def _expand_with_stability(tree: DecisionTree
                           ) -> Tuple[List[Node], Optional[Tuple[Node, ...]]]:
    """Expanded roots of ``tree`` plus their stable form (None if cloned)."""
    roots = _expand_partitions(tree.root)
    frontier = _partition_frontier(tree.root)
    stable = (len(roots) == len(frontier)
              and all(a is b for a, b in zip(roots, frontier)))
    return roots, tuple(roots) if stable else None


# --------------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------------- #

def compile_tree(tree: DecisionTree,
                 rule_slot: Optional[Dict[Rule, int]] = None,
                 rules_out: Optional[List[Rule]] = None) -> List[FlatTree]:
    """Compile one interpreter tree into its flat search trees."""
    rule_slot = rule_slot if rule_slot is not None else {}
    rules_out = rules_out if rules_out is not None else []
    return [
        _flatten(_normalize(sub_root), rule_slot, rules_out)
        for sub_root in _expand_partitions(tree.root)
    ]


def compile_classifier(classifier, flow_cache_size: Optional[int] = None,
                       backend: str = "numpy"):
    """Compile a :class:`~repro.tree.lookup.TreeClassifier` for the engine.

    Returns a :class:`~repro.engine.dispatch.CompiledClassifier` that
    resolves the highest-priority match across every tree and partition in
    one pass over the compiled search trees, traversing with the given
    ``backend`` (see :data:`repro.engine.kernels.ENGINE_BACKENDS`).  The
    result carries a :class:`CompileProvenance` so later deltas can go
    through :func:`partial_compile_classifier`.
    """
    from repro.engine.dispatch import CompiledClassifier

    rule_slot: Dict[Rule, int] = {}
    rules_out: List[Rule] = []
    subtrees: List[FlatTree] = []
    spans: List[Tuple[int, int]] = []
    roots_record: List[Optional[Tuple[Node, ...]]] = []
    for tree in classifier.trees:
        roots, stable_roots = _expand_with_stability(tree)
        start = len(subtrees)
        subtrees.extend(
            _flatten(_normalize(root), rule_slot, rules_out) for root in roots
        )
        spans.append((start, len(subtrees)))
        roots_record.append(stable_roots)
    compiled = CompiledClassifier(
        subtrees=subtrees,
        rules=rules_out,
        name=classifier.name,
        flow_cache_size=flow_cache_size,
        backend=backend,
    )
    # Share (not copy) the distinct-rule list: partial recompiles append to
    # it in place and every engine generation indexes the same storage.
    compiled.rules = rules_out
    compiled.provenance = CompileProvenance(
        trees=tuple(classifier.trees),
        versions=tuple(tree.version for tree in classifier.trees),
        spans=tuple(spans),
        roots=tuple(roots_record),
        rule_slot=rule_slot,
    )
    return compiled


def partial_compile_classifier(
    classifier,
    previous,
    dirty_roots: Optional[set] = None,
    flow_cache_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> PartialCompileResult:
    """Recompile only what a rule delta touched; reuse the rest by reference.

    ``previous`` is the engine currently compiled from ``classifier``
    (before the delta bumped tree versions); ``dirty_roots`` narrows the
    rebuild to the expanded roots whose rules changed, given as a set of
    ``id(node)`` over the provenance's stable roots.  When provided it is
    *authoritative*: unflagged roots of a version-changed tree are reused
    by reference — a tree's version can move without any of its node rule
    lists changing (e.g. a remove that only touched the shared ruleset of
    a partitioned classifier), and rebuilding such trees would make every
    delta O(classifier) again.  Callers must therefore flag every stable
    root whose rule lists the delta touched, the way
    :meth:`~repro.serve.engines.EngineSlot._dirty_roots_for` does (removes
    mapped *before* the trees mutate, adds after).  ``None`` means the
    delta is unknown — every root of every version-changed tree rebuilds.

    The fast path holds exactly when the delta stayed inside the recorded
    structure: same tree objects, and each changed tree re-expands to the
    *same* root nodes.  Anything else — adopted trees, a partition that
    gained or lost members, clone-producing expansions — returns a full
    rebuild (``full_rebuild=True``), so the answer is always the one
    :func:`compile_classifier` would give.  Either way the result is a
    fresh :class:`CompiledClassifier`; the still-serving ``previous`` is
    never mutated beyond appends to the shared rule list.
    """
    if backend is None:
        backend = previous.backend

    def full() -> PartialCompileResult:
        compiled = compile_classifier(
            classifier, flow_cache_size=flow_cache_size, backend=backend)
        return PartialCompileResult(
            classifier=compiled,
            full_rebuild=True,
            trees_recompiled=len(compiled.provenance.trees),
            subtrees_reused=0,
            nodes_recompiled=compiled.num_nodes,
        )

    from repro.engine.dispatch import CompiledClassifier

    provenance: Optional[CompileProvenance] = getattr(
        previous, "provenance", None)
    if provenance is None:
        return full()
    trees = tuple(classifier.trees)
    if len(trees) != len(provenance.trees) or any(
            tree is not prev for tree, prev in zip(trees, provenance.trees)):
        return full()

    rule_slot = provenance.rule_slot
    rules_out = previous.rules  # append-only; previous keeps serving from it
    subtrees: List[FlatTree] = []
    spans: List[Tuple[int, int]] = []
    roots_record: List[Optional[Tuple[Node, ...]]] = []
    trees_recompiled = 0
    subtrees_reused = 0
    nodes_recompiled = 0
    for index, tree in enumerate(trees):
        start, end = provenance.spans[index]
        old_flats = previous.subtrees[start:end]
        span_start = len(subtrees)
        if tree.version == provenance.versions[index]:
            # Untouched by the delta: its flat arrays are still exact.
            subtrees.extend(old_flats)
            subtrees_reused += len(old_flats)
            spans.append((span_start, len(subtrees)))
            roots_record.append(provenance.roots[index])
            continue
        old_roots = provenance.roots[index]
        roots, stable_roots = _expand_with_stability(tree)
        if (old_roots is None or stable_roots is None
                or len(roots) != len(old_roots)
                or any(root is not old
                       for root, old in zip(roots, old_roots))):
            # The delta moved the partition structure itself; the span
            # bookkeeping no longer lines up root-for-root.
            return full()
        tree_rebuilt = False
        for offset, root in enumerate(roots):
            if dirty_roots is not None and id(root) not in dirty_roots:
                subtrees.append(old_flats[offset])
                subtrees_reused += 1
            else:
                flat = _flatten(_normalize(root), rule_slot, rules_out)
                subtrees.append(flat)
                nodes_recompiled += flat.num_nodes
                tree_rebuilt = True
        trees_recompiled += tree_rebuilt
        spans.append((span_start, len(subtrees)))
        roots_record.append(stable_roots)

    compiled = CompiledClassifier(
        subtrees=subtrees,
        rules=rules_out,
        name=previous.name,
        flow_cache_size=flow_cache_size,
        backend=backend,
    )
    compiled.rules = rules_out
    compiled.provenance = CompileProvenance(
        trees=trees,
        versions=tuple(tree.version for tree in trees),
        spans=tuple(spans),
        roots=tuple(roots_record),
        rule_slot=rule_slot,
    )
    return PartialCompileResult(
        classifier=compiled,
        full_rebuild=False,
        trees_recompiled=trees_recompiled,
        subtrees_reused=subtrees_reused,
        nodes_recompiled=nodes_recompiled,
    )
