"""Throughput harness for the compiled engine.

Measures packets/second of the pure-Python interpreter
(:meth:`~repro.tree.lookup.TreeClassifier.classify_batch` in interpreter
mode) against the compiled engine (with and without the flow cache) on the
same packet trace, and reports the speedup.  The interpreter is timed on a
subsample when the trace is large — it is the slow path being replaced — and
its rate is reported as packets/second so the comparison stays fair.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.rules.packet import Packet
from repro.engine.cache import FlowCacheStats
from repro.engine.layout import packets_to_array

#: Interpreter timing subsample (the interpreter is O(packets * depth) in
#: Python; a few thousand packets give a stable rate).
INTERPRETER_SAMPLE = 2000


@dataclass
class EngineBenchResult:
    """Throughput comparison between interpreter and compiled execution."""

    name: str
    num_packets: int
    interpreter_pps: float
    compiled_pps: float
    cached_pps: Optional[float]
    compile_seconds: float
    compiled_memory_bytes: int
    num_subtrees: int
    mismatches: int
    #: Flow-cache hit rate over the timed cached pass (None: no cache run).
    cache_hit_rate: Optional[float] = None
    #: LRU evictions during the timed cached pass (None: no cache run).
    cache_evictions: Optional[int] = None
    #: Flow-cache hits during the timed cached pass (None: no cache run).
    #: Kept as a raw integer so scorecards can gate on exact equality.
    cache_hits: Optional[int] = None
    #: The resolved traversal backend the compiled passes ran on.
    backend: str = "numpy"
    #: One untimed batch run before the timed passes — on the numba backend
    #: this is where the JIT compiles, so the pps figures measure steady
    #: state and this field shows the one-off cost.
    warmup_seconds: float = 0.0

    @property
    def speedup(self) -> float:
        """Compiled packets/sec over interpreter packets/sec."""
        if self.interpreter_pps <= 0:
            return float("inf")
        return self.compiled_pps / self.interpreter_pps

    def bench_record(self, name: Optional[str] = None,
                     config: Optional[dict] = None) -> "BenchRecord":
        """This result as a versioned scorecard entry (area ``"engine"``).

        Structural figures (packet/subtree/mismatch/cache counts) land in
        ``counters`` and are gated at exact equality; rates and wall times
        land in ``timings`` and are tolerance-banded.
        """
        from repro.obs.bench import BenchRecord

        counters = {
            "num_packets": self.num_packets,
            "mismatches": self.mismatches,
            "compiled_memory_bytes": self.compiled_memory_bytes,
            "num_subtrees": self.num_subtrees,
        }
        if self.cache_hits is not None:
            counters["cache_hits"] = self.cache_hits
        if self.cache_evictions is not None:
            counters["cache_evictions"] = self.cache_evictions
        timings = {
            "interpreter_pps": self.interpreter_pps,
            "compiled_pps": self.compiled_pps,
            "compile_seconds": self.compile_seconds,
            "warmup_seconds": self.warmup_seconds,
            "speedup": self.speedup,
        }
        if self.cached_pps is not None:
            timings["cached_pps"] = self.cached_pps
        if self.cache_hit_rate is not None:
            timings["cache_hit_rate"] = self.cache_hit_rate
        return BenchRecord(name=name or self.name, area="engine",
                           config=config or {}, counters=counters,
                           timings=timings)

    def rows(self) -> List[List[object]]:
        """Table rows for :func:`repro.harness.tables.format_table`."""
        rows = [
            ["interpreter", f"{self.interpreter_pps:,.0f}", "1.0x"],
            ["compiled", f"{self.compiled_pps:,.0f}", f"{self.speedup:.1f}x"],
        ]
        if self.cached_pps is not None:
            ratio = self.cached_pps / max(self.interpreter_pps, 1e-9)
            label = "compiled+cache"
            if self.cache_hit_rate is not None:
                label += f" ({self.cache_hit_rate:.1%} hits)"
            rows.append([label, f"{self.cached_pps:,.0f}", f"{ratio:.1f}x"])
        return rows


def _time(fn, repeats: int = 3) -> float:
    """Best-of-n wall time of a callable."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_classifier(
    classifier,
    packets: Sequence[Packet],
    interpreter_sample: int = INTERPRETER_SAMPLE,
    flow_cache_size: Optional[int] = None,
    repeats: int = 3,
    check_agreement: bool = True,
    backend: str = "numpy",
) -> EngineBenchResult:
    """Benchmark one classifier's interpreter vs compiled throughput.

    Args:
        classifier: a :class:`~repro.tree.lookup.TreeClassifier`.
        packets: the trace to classify.
        interpreter_sample: at most this many packets go through the
            interpreter timing loop.
        flow_cache_size: when set, also measure a second compiled pass with
            an LRU flow cache of this capacity attached.
        repeats: best-of-n timing repeats per engine.
        check_agreement: verify compiled results equal interpreter results
            on the interpreter sample.
        backend: traversal backend for the compiled passes (resolved
            eagerly, so ``"numba"`` without numba fails before any timing).
            One untimed warmup batch runs first — on numba that absorbs the
            JIT compile into ``warmup_seconds`` instead of the timed rates.
    """
    packets = list(packets)
    if not packets:
        raise ValueError("cannot benchmark an empty packet trace")
    values = packets_to_array(packets)

    start = time.perf_counter()
    compiled = classifier.compile(backend=backend)
    compile_seconds = time.perf_counter() - start

    start = time.perf_counter()
    compiled.match_indices(values[: min(1024, len(values))])
    warmup_seconds = time.perf_counter() - start

    sample = packets[: min(interpreter_sample, len(packets))]
    interp_results: List[Optional[object]] = []

    def run_interpreter() -> None:
        interp_results[:] = classifier.classify_batch(sample,
                                                      engine="interpreter")

    interp_seconds = _time(run_interpreter, repeats=repeats)
    interpreter_pps = len(sample) / max(interp_seconds, 1e-12)

    # The compiled object is shared via the classifier's compile cache;
    # benchmark with our own cache settings but restore the caller's.
    caller_cache = compiled.flow_cache
    try:
        compiled.flow_cache = None
        compiled_seconds = _time(lambda: compiled.lookup_batch(values),
                                 repeats=repeats)
        compiled_pps = len(packets) / max(compiled_seconds, 1e-12)

        cached_pps = None
        cache_hit_rate = None
        cache_evictions = None
        cache_hits = None
        if flow_cache_size is not None:
            cache = compiled.attach_flow_cache(flow_cache_size)
            compiled.lookup_batch(values)  # warm the cache

            def timed_cached_pass() -> None:
                # Reset counters at the start of every repeat so the stats
                # reflect exactly one timed pass, not their accumulation.
                cache.stats = FlowCacheStats()
                compiled.lookup_batch(values)

            cached_seconds = _time(timed_cached_pass, repeats=repeats)
            cached_pps = len(packets) / max(cached_seconds, 1e-12)
            cache_hit_rate = cache.stats.hit_rate
            cache_evictions = cache.stats.evictions
            cache_hits = cache.stats.hits
            compiled.flow_cache = None

        mismatches = 0
        if check_agreement:
            compiled_results = compiled.classify_batch(sample)
            for expected, actual in zip(interp_results, compiled_results):
                expected_priority = expected.priority if expected else None
                actual_priority = actual.priority if actual else None
                if expected_priority != actual_priority:
                    mismatches += 1
    finally:
        compiled.flow_cache = caller_cache

    return EngineBenchResult(
        name=classifier.name,
        num_packets=len(packets),
        interpreter_pps=interpreter_pps,
        compiled_pps=compiled_pps,
        cached_pps=cached_pps,
        compile_seconds=compile_seconds,
        compiled_memory_bytes=compiled.memory_bytes(),
        num_subtrees=compiled.num_subtrees,
        mismatches=mismatches,
        cache_hit_rate=cache_hit_rate,
        cache_evictions=cache_evictions,
        cache_hits=cache_hits,
        backend=compiled.backend,
        warmup_seconds=warmup_seconds,
    )
