"""Flat-array layout of a compiled decision tree.

The interpreter in :mod:`repro.tree` walks Python ``Node`` objects one packet
at a time.  The engine instead stores a tree as two NumPy structured arrays:

* a **node table** (:data:`NODE_DTYPE`) — one row per node, children stored
  as a contiguous index span so child selection is pure integer arithmetic;
* a **leaf rule table** (:data:`RULE_DTYPE`) — the per-leaf rule lists
  concatenated into one array of range rows (replicated rules appear once
  per leaf holding them, mirroring the interpreter's rule-pointer model).

Node rows come in three kinds.  ``KIND_CUT`` rows describe an equal-width
cut: the builder distributes a span of ``width`` values over ``k`` children
as ``rem`` children of ``base + 1`` values followed by ``k - rem`` children
of ``base`` values, so the child holding value ``v`` is computed directly
from ``(v - lo, base, rem)`` without touching per-child boxes.  ``KIND_SPLIT``
rows carry a single boundary point.  ``KIND_LEAF`` rows carry a span into the
leaf rule table, sorted highest priority first so the first hit wins inside
a leaf.

A :class:`FlatTree` owns both arrays and implements the vectorised
level-synchronous lookup: every packet of a batch advances one tree level
per iteration under a NumPy mask, so the Python-level work is proportional
to tree depth, not to the number of packets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rules.fields import NUM_DIMENSIONS

#: Node kinds stored in the ``kind`` column.
KIND_LEAF = 0
KIND_CUT = 1
KIND_SPLIT = 2

#: One row per tree node.  ``child_start``/``num_children`` delimit the
#: contiguous child block; ``rule_start``/``rule_end`` delimit the leaf's
#: span in the rule table (empty for internal nodes).
NODE_DTYPE = np.dtype(
    [
        ("kind", np.int8),
        ("dim", np.int8),
        ("lo", np.int64),
        ("base", np.int64),
        ("rem", np.int64),
        ("point", np.int64),
        ("child_start", np.int32),
        ("num_children", np.int32),
        ("rule_start", np.int32),
        ("rule_end", np.int32),
    ]
)

#: One row per rule reference stored in some leaf.  ``rule_index`` points
#: into the compiled classifier's distinct-rule list.
RULE_DTYPE = np.dtype(
    [
        ("lo", np.int64, (NUM_DIMENSIONS,)),
        ("hi", np.int64, (NUM_DIMENSIONS,)),
        ("priority", np.int64),
        ("rule_index", np.int32),
    ]
)

#: Sentinel priority smaller than any real rule priority.
NO_MATCH_PRIORITY = np.iinfo(np.int64).min

#: Columns of the unstructured int64 node view handed to the native kernels
#: (:meth:`FlatTree.kernel_tables`).  ``num_children`` is deliberately absent:
#: child selection needs only ``child_start`` plus the cut arithmetic.
COL_KIND = 0
COL_DIM = 1
COL_LO = 2
COL_BASE = 3
COL_REM = 4
COL_POINT = 5
COL_CHILD_START = 6
COL_RULE_START = 7
COL_RULE_END = 8
NUM_NODE_COLUMNS = 9


@dataclass(frozen=True)
class KernelTables:
    """Unstructured, C-contiguous int64 views of a :class:`FlatTree`.

    Structured arrays are convenient for the NumPy engine but hostile to
    jitted kernels (field access on a record dtype is not nopython-typable
    and field views are strided).  This is the same data re-packed as plain
    matrices: ``nodes`` is ``(num_nodes, 9)`` with the :data:`COL_KIND`...
    :data:`COL_RULE_END` columns, and the leaf-rule table is split into
    ``leaf_lo``/``leaf_hi`` ``(num_leaf_rules, 5)`` boxes plus flat
    ``leaf_priority``/``leaf_rule_index`` vectors.
    """

    nodes: np.ndarray
    leaf_lo: np.ndarray
    leaf_hi: np.ndarray
    leaf_priority: np.ndarray
    leaf_rule_index: np.ndarray


@dataclass
class FlatTree:
    """One compiled cut/split-only search tree (no partition nodes)."""

    nodes: np.ndarray
    leaf_rules: np.ndarray
    depth: int
    max_leaf_span: int

    def __post_init__(self) -> None:
        if self.nodes.dtype != NODE_DTYPE:
            raise TypeError("nodes array must use NODE_DTYPE")
        if self.leaf_rules.dtype != RULE_DTYPE:
            raise TypeError("leaf rule array must use RULE_DTYPE")
        self._kernel_tables: KernelTables | None = None

    def kernel_tables(self) -> KernelTables:
        """The unstructured views the native kernels walk (built once).

        The flat arrays never mutate after compilation (updates build new
        trees), so the repack is cached on the instance and shared by every
        kernel call against this tree.
        """
        tables = self._kernel_tables
        if tables is None:
            nodes = np.empty((len(self.nodes), NUM_NODE_COLUMNS),
                             dtype=np.int64)
            src = self.nodes
            nodes[:, COL_KIND] = src["kind"]
            nodes[:, COL_DIM] = src["dim"]
            nodes[:, COL_LO] = src["lo"]
            nodes[:, COL_BASE] = src["base"]
            nodes[:, COL_REM] = src["rem"]
            nodes[:, COL_POINT] = src["point"]
            nodes[:, COL_CHILD_START] = src["child_start"]
            nodes[:, COL_RULE_START] = src["rule_start"]
            nodes[:, COL_RULE_END] = src["rule_end"]
            rules = self.leaf_rules
            tables = KernelTables(
                nodes=nodes,
                leaf_lo=np.ascontiguousarray(rules["lo"], dtype=np.int64),
                leaf_hi=np.ascontiguousarray(rules["hi"], dtype=np.int64),
                leaf_priority=np.ascontiguousarray(rules["priority"],
                                                   dtype=np.int64),
                leaf_rule_index=np.ascontiguousarray(
                    rules["rule_index"], dtype=np.int64),
            )
            self._kernel_tables = tables
        return tables

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_leaf_rules(self) -> int:
        return len(self.leaf_rules)

    def memory_bytes(self) -> int:
        """Bytes actually held by the flat arrays."""
        return int(self.nodes.nbytes + self.leaf_rules.nbytes)

    # ------------------------------------------------------------------ #
    # Vectorised lookup
    # ------------------------------------------------------------------ #

    def descend(self, values: np.ndarray, backend: str = "numpy") -> np.ndarray:
        """Return the leaf node index reached by every packet of a batch.

        ``values`` is an ``(n, 5)`` int64 array of packet headers.  Under
        the default numpy backend all packets advance one level per
        iteration; the loop runs at most ``depth`` times regardless of
        batch size.  ``backend="numba"`` walks per packet in the native
        kernels instead (same leaf indices, byte for byte).
        """
        if backend == "numba":
            from repro.engine import kernels

            return kernels.descend(self, values)
        nodes = self.nodes
        cur = np.zeros(len(values), dtype=np.int64)
        active = nodes["kind"][cur] != KIND_LEAF
        iterations = 0
        while active.any():
            if iterations > self.depth + 1:
                raise RuntimeError("flat tree deeper than its recorded depth")
            iterations += 1
            idx = np.nonzero(active)[0]
            row = nodes[cur[idx]]
            v = values[idx, row["dim"]]
            child = np.empty(len(idx), dtype=np.int64)
            cut = row["kind"] == KIND_CUT
            if cut.any():
                crow = row[cut]
                offset = v[cut] - crow["lo"]
                wide = crow["base"] + 1
                first = offset // wide
                rest = crow["rem"] + (offset - crow["rem"] * wide) // crow["base"]
                child[cut] = np.where(first < crow["rem"], first, rest)
            split = ~cut
            if split.any():
                srow = row[split]
                child[split] = (v[split] >= srow["point"]).astype(np.int64)
            cur[idx] = row["child_start"] + child
            active = nodes["kind"][cur] != KIND_LEAF
        return cur

    def lookup(self, values: np.ndarray, backend: str = "numpy") -> np.ndarray:
        """Classify a batch against this tree.

        Returns an ``(n,)`` int64 array of rows into :attr:`leaf_rules`
        (``-1`` where the reached leaf matches nothing).  Leaf spans are
        scanned highest-priority-first in lockstep across the batch, so the
        Python-level work is bounded by the widest leaf, not the batch
        size; ``backend="numba"`` scans per packet in the native kernels
        instead, returning the identical rows.
        """
        if backend == "numba":
            from repro.engine import kernels

            return kernels.lookup_rows(self, values)
        leaves = self.descend(values)
        start = self.nodes["rule_start"][leaves].astype(np.int64)
        end = self.nodes["rule_end"][leaves].astype(np.int64)
        matched = np.full(len(values), -1, dtype=np.int64)
        pending = np.nonzero(start < end)[0]
        offset = 0
        rules = self.leaf_rules
        while pending.size:
            row = start[pending] + offset
            in_span = row < end[pending]
            pending = pending[in_span]
            if not pending.size:
                break
            row = row[in_span]
            rule = rules[row]
            v = values[pending]
            hit = ((rule["lo"] <= v) & (v < rule["hi"])).all(axis=1)
            matched[pending[hit]] = row[hit]
            pending = pending[~hit]
            offset += 1
        return matched


def packets_to_array(packets) -> np.ndarray:
    """Stack packets (or raw 5-tuples) into the ``(n, 5)`` header matrix."""
    rows = [tuple(p) for p in packets]
    if not rows:
        return np.empty((0, NUM_DIMENSIONS), dtype=np.int64)
    return np.asarray(rows, dtype=np.int64)
