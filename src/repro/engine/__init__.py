"""Compiled dataplane engine.

Tree *construction* (NeuroCuts training, the baseline heuristics) produces
:class:`~repro.tree.lookup.TreeClassifier` objects made of Python ``Node``
graphs; this package is the *execution* side: it compiles any such
classifier into flat NumPy structured arrays and classifies whole packet
batches with vectorised, level-synchronous traversal, an optional LRU flow
cache, and a throughput benchmark harness.

Typical use::

    compiled = classifier.compile()          # TreeClassifier -> engine
    matches = compiled.classify_batch(trace) # one Rule (or None) per packet

or, for the raw array path, ``compiled.lookup_batch(values)`` with an
``(n, 5)`` int64 header matrix.
"""

from repro.engine.layout import (
    KIND_CUT,
    KIND_LEAF,
    KIND_SPLIT,
    NODE_DTYPE,
    NO_MATCH_PRIORITY,
    RULE_DTYPE,
    FlatTree,
    packets_to_array,
)
from repro.engine.compile import (
    MAX_SEARCH_TREES,
    CompileError,
    CompileProvenance,
    PartialCompileResult,
    compile_classifier,
    compile_tree,
    partial_compile_classifier,
)
from repro.engine.kernels import (
    ENGINE_BACKENDS,
    NUMBA_AVAILABLE,
    available_backends,
    resolve_backend,
)
from repro.engine.cache import (
    DEFAULT_FLOW_CACHE_SIZE,
    FlowCache,
    FlowCacheStats,
)
from repro.engine.dispatch import CompiledClassifier
from repro.engine.bench import (
    INTERPRETER_SAMPLE,
    EngineBenchResult,
    bench_classifier,
)

__all__ = [
    "KIND_CUT",
    "KIND_LEAF",
    "KIND_SPLIT",
    "NODE_DTYPE",
    "NO_MATCH_PRIORITY",
    "RULE_DTYPE",
    "FlatTree",
    "packets_to_array",
    "MAX_SEARCH_TREES",
    "CompileError",
    "CompileProvenance",
    "PartialCompileResult",
    "compile_classifier",
    "compile_tree",
    "partial_compile_classifier",
    "ENGINE_BACKENDS",
    "NUMBA_AVAILABLE",
    "available_backends",
    "resolve_backend",
    "DEFAULT_FLOW_CACHE_SIZE",
    "FlowCache",
    "FlowCacheStats",
    "CompiledClassifier",
    "INTERPRETER_SAMPLE",
    "EngineBenchResult",
    "bench_classifier",
]
