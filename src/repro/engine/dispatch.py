"""The compiled classifier: multi-tree dispatch over flat search trees.

Partitioned classifiers (EffiCuts categories, NeuroCuts top-node partitions,
or simply several trees per :class:`~repro.tree.lookup.TreeClassifier`)
compile into several :class:`~repro.engine.layout.FlatTree` objects sharing
one distinct-rule list.  The dispatcher runs a batch through every search
tree and keeps, per packet, the highest-priority match seen — one pass, no
per-tree intermediate lists.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.rules.packet import Packet
from repro.rules.rule import Rule
from repro.engine.cache import DEFAULT_FLOW_CACHE_SIZE, FlowCache
from repro.engine.layout import NO_MATCH_PRIORITY, FlatTree, packets_to_array


class CompiledClassifier:
    """A fully compiled packet classifier ready for batched execution.

    ``backend`` names the traversal engine (see
    :data:`repro.engine.kernels.ENGINE_BACKENDS`): ``"numpy"`` is the
    level-synchronous array walk, ``"numba"`` the jitted per-packet
    kernels, ``"auto"`` picks numba when installed.  The name is resolved
    eagerly, so an unavailable backend fails at construction rather than
    on the first batch.
    """

    def __init__(
        self,
        subtrees: Sequence[FlatTree],
        rules: Sequence[Rule],
        name: str = "",
        flow_cache_size: Optional[int] = None,
        backend: str = "numpy",
    ) -> None:
        if not subtrees:
            raise ValueError("a compiled classifier needs at least one tree")
        self.subtrees: List[FlatTree] = list(subtrees)
        self.rules: List[Rule] = list(rules)
        self.name = name
        self.flow_cache: Optional[FlowCache] = None
        #: Set by compile_classifier / partial_compile_classifier; None for
        #: hand-assembled engines (which can only ever be fully rebuilt).
        self.provenance = None
        self.backend = "numpy"
        self.set_backend(backend)
        if flow_cache_size is not None:
            self.attach_flow_cache(flow_cache_size)

    def set_backend(self, backend: str) -> str:
        """Switch the traversal backend in place; returns the resolved name.

        Purely a dispatch change — the flat arrays, rule list, and flow
        cache are untouched, so swapping backends mid-flight cannot change
        any answer (the differential suite holds all backends to
        byte-identical match indices).
        """
        from repro.engine.kernels import resolve_backend

        self.backend = resolve_backend(backend)
        return self.backend

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_subtrees(self) -> int:
        return len(self.subtrees)

    @property
    def num_nodes(self) -> int:
        return sum(tree.num_nodes for tree in self.subtrees)

    @property
    def depth(self) -> int:
        return max(tree.depth for tree in self.subtrees)

    def memory_bytes(self) -> int:
        """Bytes held by every flat array of the compiled representation."""
        return sum(tree.memory_bytes() for tree in self.subtrees)

    def describe(self) -> str:
        return (
            f"CompiledClassifier(name={self.name!r}, "
            f"subtrees={self.num_subtrees}, nodes={self.num_nodes}, "
            f"depth={self.depth}, rules={len(self.rules)}, "
            f"bytes={self.memory_bytes()})"
        )

    # ------------------------------------------------------------------ #
    # Flow cache management
    # ------------------------------------------------------------------ #

    def attach_flow_cache(self, capacity: int = DEFAULT_FLOW_CACHE_SIZE) -> FlowCache:
        """Enable (or resize) the LRU flow cache and return it."""
        self.flow_cache = FlowCache(capacity)
        return self.flow_cache

    def detach_flow_cache(self) -> None:
        self.flow_cache = None

    # ------------------------------------------------------------------ #
    # Batched lookup
    # ------------------------------------------------------------------ #

    def match_indices(self, values: np.ndarray) -> np.ndarray:
        """Per-packet index into :attr:`rules` of the winning rule (-1: none).

        ``values`` is an ``(n, 5)`` int64 header matrix.  Every search tree
        is consulted and the highest-priority hit wins, matching the
        interpreter's partition/multi-tree semantics.
        """
        n = len(values)
        best_priority = np.full(n, NO_MATCH_PRIORITY, dtype=np.int64)
        best_rule = np.full(n, -1, dtype=np.int64)
        if self.backend == "numba":
            from repro.engine import kernels

            for tree in self.subtrees:
                kernels.match_into(tree, values, best_priority, best_rule)
            return best_rule
        for tree in self.subtrees:
            rows = tree.lookup(values)
            found = np.nonzero(rows >= 0)[0]
            if not found.size:
                continue
            hit = tree.leaf_rules[rows[found]]
            better = hit["priority"] > best_priority[found]
            winners = found[better]
            best_priority[winners] = hit["priority"][better]
            best_rule[winners] = hit["rule_index"][better]
        return best_rule

    def lookup_batch(self, values: np.ndarray) -> np.ndarray:
        """Like :meth:`match_indices`, but served through the flow cache.

        Flows repeating *within* the batch are deduplicated: each distinct
        missing 5-tuple goes through the tree walk once and its result is
        fanned out to every packet of the flow.
        """
        if self.flow_cache is None:
            return self.match_indices(values)
        cache = self.flow_cache
        result = np.empty(len(values), dtype=np.int64)
        misses: dict = {}  # flow key -> positions awaiting the result
        # tolist() converts the whole batch to Python ints in one C call;
        # the per-row tuples are the same 5-int keys the cache always used.
        for i, key in enumerate(map(tuple, values.tolist())):
            pending = misses.get(key)
            if pending is not None:
                pending.append(i)
                continue
            cached = cache.get(key)
            if cached is None:
                misses[key] = [i]
            else:
                result[i] = cached
        if misses:
            first_rows = np.asarray([rows[0] for rows in misses.values()],
                                    dtype=np.int64)
            resolved = self.match_indices(values[first_rows])
            for (key, rows), rule_index in zip(misses.items(), resolved):
                result[rows] = rule_index
                cache.put(key, int(rule_index))
        return result

    # ------------------------------------------------------------------ #
    # Packet-level API (mirrors TreeClassifier)
    # ------------------------------------------------------------------ #

    def classify_batch(self, packets: Iterable[Packet]) -> List[Optional[Rule]]:
        """Classify a batch of packets; returns one Rule (or None) each."""
        values = packets if isinstance(packets, np.ndarray) \
            else packets_to_array(packets)
        indices = self.lookup_batch(values)
        return [self.rules[i] if i >= 0 else None for i in indices]

    def classify(self, packet: Packet) -> Optional[Rule]:
        """Classify a single packet (uses the flow cache when attached)."""
        return self.classify_batch([packet])[0]
