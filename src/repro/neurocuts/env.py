"""The NeuroCuts environment: tree rollouts as a series of 1-step decisions.

Section 5 ("Branching decision process environment"): rather than flattening
the tree-building process into one MDP, each node decision is treated as an
independent 1-step decision problem whose reward is computed once the
relevant subtree is complete.  A rollout therefore:

1. resets the decision tree to a single root node;
2. repeatedly asks the policy for an action on the current node (depth-first
   order), applies it, and records the decision;
3. stops when the tree is complete, the step budget is exhausted (rollout
   truncation) or depth truncation fires; and
4. walks the recorded decisions and assigns each one the reward of the
   subtree its node roots (max/sum aggregation handled by the tree stats).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import InvalidActionError
from repro.rules.ruleset import RuleSet
from repro.rl.batch import ExperienceBuilder, SampleBatch
from repro.rl.policy import Policy, PolicyDecision
from repro.tree.node import Node
from repro.tree.tree import DecisionTree
from repro.neurocuts.action_space import NeuroCutsActionSpace
from repro.neurocuts.config import NeuroCutsConfig
from repro.neurocuts.observation import ObservationEncoder
from repro.neurocuts.reward import RewardCalculator, RewardComponents


@dataclass
class RolloutResult:
    """Everything produced by one tree rollout."""

    tree: DecisionTree
    batch: Optional[SampleBatch]
    root_reward: RewardComponents
    num_steps: int
    truncated: bool

    @property
    def objective(self) -> float:
        """The minimisation objective achieved by this rollout's tree."""
        return -self.root_reward.reward


@dataclass
class _RecordedDecision:
    """Bookkeeping for one decision awaiting its delayed reward."""

    node: Node
    obs: np.ndarray
    action: Tuple[int, int]
    log_prob: float
    value: float
    masks: Tuple[np.ndarray, np.ndarray]


class NeuroCutsEnv:
    """Runs NeuroCuts tree rollouts for one classifier."""

    def __init__(self, ruleset: RuleSet, config: NeuroCutsConfig) -> None:
        self.ruleset = ruleset
        self.config = config
        self.action_space = NeuroCutsActionSpace(config)
        self.observation_encoder = ObservationEncoder(self.action_space)
        self.reward_calculator = RewardCalculator(config)

    # ------------------------------------------------------------------ #
    # Rollouts
    # ------------------------------------------------------------------ #

    def new_tree(self) -> DecisionTree:
        """A fresh single-root tree for this classifier."""
        return DecisionTree(
            self.ruleset,
            leaf_threshold=self.config.leaf_threshold,
            max_depth=self.config.max_tree_depth,
        )

    def rollout(self, policy: Policy, deterministic: bool = False,
                collect_experience: bool = True) -> RolloutResult:
        """Build one tree with the given policy and compute its rewards."""
        tree = self.new_tree()
        decisions: List[_RecordedDecision] = []
        steps = 0
        truncated = False

        while not tree.is_complete():
            if steps >= self.config.max_timesteps_per_rollout:
                truncated = True
                tree.truncate()
                break
            node = tree.current_node()
            assert node is not None
            masks = self.action_space.masks_for_node(node)
            obs = self.observation_encoder.encode(node, masks)
            if deterministic:
                action = policy.act_deterministic(obs, masks=masks)
                decision = PolicyDecision(
                    action=action, log_prob=0.0,
                    value=policy.value(obs), masks=masks,
                )
            else:
                decision = policy.act(obs, masks=masks)
            tree_action = self.action_space.decode(decision.action)
            try:
                tree.apply_action(tree_action)
            except InvalidActionError:
                # The sampled action cannot be applied (e.g. a partition that
                # does not separate, or a cut on a width-1 range).  The node
                # becomes a leaf; the decision is still recorded so the agent
                # learns the consequences of wasting a step on it.
                node.forced_leaf = True
            steps += 1
            if collect_experience:
                decisions.append(
                    _RecordedDecision(
                        node=node,
                        obs=obs,
                        action=(int(decision.action[0]), int(decision.action[1])),
                        log_prob=decision.log_prob,
                        value=decision.value,
                        masks=masks,
                    )
                )

        root_reward = self.reward_calculator.subtree_reward(tree.root)
        batch = None
        if collect_experience and decisions:
            batch = self._assign_rewards(decisions)
        return RolloutResult(
            tree=tree,
            batch=batch,
            root_reward=root_reward,
            num_steps=steps,
            truncated=truncated,
        )

    def _assign_rewards(self, decisions: List[_RecordedDecision]) -> SampleBatch:
        """Compute each decision's delayed reward and build the batch.

        In the paper's "subtree" mode every decision is credited with the
        objective of the subtree it roots; in the "root" ablation mode every
        decision receives the whole-tree reward, which makes credit
        assignment much noisier (the dense-reward design choice of §4.2).
        """
        builder = ExperienceBuilder()
        root_components = None
        if self.config.reward_mode == "root" and decisions:
            root_components = self.reward_calculator.subtree_reward(
                decisions[0].node
            )
        for record in decisions:
            if root_components is not None:
                components = root_components
            else:
                components = self.reward_calculator.subtree_reward(record.node)
            builder.add(
                obs=record.obs,
                action=np.array(record.action, dtype=np.int64),
                ret=components.reward,
                value_pred=record.value,
                logp=record.log_prob,
                masks=record.masks,
            )
        return builder.build()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def observation_size(self) -> int:
        """Flat observation length for this configuration."""
        return self.observation_encoder.size

    @property
    def action_sizes(self) -> Tuple[int, int]:
        """Sizes of the two categorical action components."""
        return self.action_space.space.sizes
