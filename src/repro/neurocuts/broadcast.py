"""Shared-memory weight broadcast for process-backend rollout collection.

The classic scatter ships one pickled copy of the flat weight vector inside
*every* :class:`~repro.neurocuts.workers.ShardRequest` — ``num_workers``
copies per round through the pool's pipes.  This module publishes the
snapshot **once** into a ``multiprocessing.shared_memory`` block and ships
only a tiny picklable :class:`WeightHandle` (segment name + length +
generation stamp) per request; workers attach, copy out, and detach.

The block is **double-buffered with a seqlock-style stamp** per slot:

* The writer (the learner) publishes generation ``g`` into slot ``g % 2``.
  It first marks the slot's stamp *odd* (``2g + 1``: write in progress),
  copies the payload, then sets the stamp *even* (``2g``: stable).
* A reader holding a handle for generation ``g`` attaches slot ``g % 2``,
  spins past an odd stamp, copies the payload, and re-checks the stamp —
  a torn read is impossible to return.  A stamp that settled on a *newer*
  generation means the writer lapped the reader: the bounded-staleness
  contract (``max_weight_lag <= 1``, at most two live generations, one per
  slot) was violated, and the reader raises instead of silently training
  on unknown weights.

Why double buffering is enough: the pipelined trainer keeps at most one
round in flight, and a round reading generation ``g`` is always gathered
before generation ``g + 2`` (the next occupant of the same slot) is
published.  The staleness bound is therefore *structural* — enforced by
slot reuse, not by trusting wall-clock luck.

Serial and thread backends skip all of this and keep the inline ndarray
(same bytes either way, so histories are byte-identical — the fallback the
determinism tests pin).  The module degrades gracefully where
``multiprocessing.shared_memory`` is unavailable: ``shared_memory_available()``
returns False and the trainer stays on inline broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

try:  # pragma: no cover - import probe
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - platforms without POSIX shm
    _shm = None

#: int64 header words: [stamp_slot0, stamp_slot1], then the two payload
#: slots (each ``capacity`` float64s) follow.
_HEADER_WORDS = 2


def shared_memory_available() -> bool:
    """True when ``multiprocessing.shared_memory`` can back a broadcast."""
    return _shm is not None


@dataclass(frozen=True)
class WeightHandle:
    """The picklable descriptor of one published weight generation.

    What a :class:`~repro.neurocuts.workers.ShardRequest` carries instead
    of the flat ndarray: workers resolve it with :func:`read_weights`.
    """

    shm_name: str
    length: int
    generation: int


class WeightBroadcast:
    """One double-buffered shared-memory block publishing flat weights.

    Owned (created and unlinked) by the learner process; worker processes
    only ever attach read-only via :func:`read_weights`.
    """

    def __init__(self, capacity: int) -> None:
        if _shm is None:
            raise RuntimeError(
                "multiprocessing.shared_memory is unavailable; gate on "
                "shared_memory_available() before building a WeightBroadcast"
            )
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        nbytes = 8 * (_HEADER_WORDS + 2 * self.capacity)
        self._shm = _shm.SharedMemory(create=True, size=nbytes)
        self._stamps = np.ndarray((_HEADER_WORDS,), dtype=np.int64,
                                  buffer=self._shm.buf)
        # Stamps start at -1: no generation has ever occupied either slot,
        # and -1 is neither odd-in-progress (2g + 1 >= 1) nor any valid
        # stable stamp (2g >= 0).
        self._stamps[:] = -1
        self._slots = np.ndarray((2, self.capacity), dtype=np.float64,
                                 buffer=self._shm.buf,
                                 offset=8 * _HEADER_WORDS)

    @property
    def name(self) -> str:
        return self._shm.name

    def publish(self, flat: np.ndarray, generation: int) -> WeightHandle:
        """Publish one weight snapshot; returns the handle workers resolve.

        ``generation`` must be strictly increasing across publishes (the
        trainer uses the collection-round index, which also stamps the
        checkpoint/replay bookkeeping).
        """
        flat = np.ascontiguousarray(flat, dtype=np.float64)
        if flat.ndim != 1 or len(flat) > self.capacity:
            raise ValueError(
                f"flat weights must be 1-D with <= {self.capacity} entries, "
                f"got shape {flat.shape}"
            )
        if generation < 0:
            raise ValueError("generation must be >= 0")
        slot = generation % 2
        self._stamps[slot] = 2 * generation + 1  # odd: write in progress
        self._slots[slot, :len(flat)] = flat
        self._stamps[slot] = 2 * generation      # even: stable
        return WeightHandle(shm_name=self._shm.name, length=len(flat),
                            generation=generation)

    def close(self) -> None:
        """Release and destroy the segment (idempotent)."""
        if self._shm is None:
            return
        # Drop the exported ndarray views first: SharedMemory.close()
        # refuses while a memoryview of the buffer is still alive.
        self._stamps = None
        self._slots = None
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        self._shm = None

    def __enter__(self) -> "WeightBroadcast":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _attach(name: str) -> "_shm.SharedMemory":
    """Attach an existing segment without resource-tracker side effects.

    Before 3.13 (``track=False``), every attach registers the segment with
    the resource tracker — which the spawn children *share* with the
    learner — and the tracker then unlinks the learner's live segment when
    any child exits.  Unregistering after attach is no better: the tracker's
    cache is one shared set, so a child's unregister deletes the learner's
    own (create-time) entry and its legitimate unlink later trips a
    KeyError in the tracker.  Instead, suppress registration *during* the
    attach: pool children run tasks single-threaded, so the patch window
    races nothing.
    """
    try:
        return _shm.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        from multiprocessing import resource_tracker
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return _shm.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def read_weights(handle: WeightHandle, retries: int = 1000) -> np.ndarray:
    """Resolve a handle to a private copy of its weight generation.

    Seqlock read of slot ``generation % 2``: spin past an in-progress
    write, copy, re-check.  Raises :class:`RuntimeError` when the slot has
    moved past the handle's generation — the staleness bound was violated
    and the snapshot no longer exists anywhere.
    """
    if _shm is None:
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    segment = _attach(handle.shm_name)
    try:
        stamps = np.ndarray((_HEADER_WORDS,), dtype=np.int64,
                            buffer=segment.buf)
        slot = handle.generation % 2
        stable = 2 * handle.generation
        for _ in range(max(1, retries)):
            before = int(stamps[slot])
            if before % 2 != 0 or before < 0:
                continue  # write in progress; spin
            if before != stable:
                break  # settled on a different generation: stale handle
            payload = np.ndarray((handle.length,), dtype=np.float64,
                                 buffer=segment.buf,
                                 offset=8 * (_HEADER_WORDS + slot *
                                             ((segment.size // 8 -
                                               _HEADER_WORDS) // 2)))
            copied = payload.copy()
            if int(stamps[slot]) == before:
                return copied
        raise RuntimeError(
            f"weight generation {handle.generation} is gone from slot "
            f"{slot} (stamp {int(stamps[slot])}): the max_weight_lag "
            f"staleness bound was violated"
        )
    finally:
        # Release ndarray views before closing (memoryview export rule).
        stamps = None
        payload = None  # noqa: F841
        segment.close()


def resolve_weights(weights) -> np.ndarray:
    """Inline ndarray or :class:`WeightHandle` -> flat weight ndarray."""
    if isinstance(weights, WeightHandle):
        return read_weights(weights)
    return weights


__all__ = [
    "WeightBroadcast",
    "WeightHandle",
    "read_weights",
    "resolve_weights",
    "shared_memory_available",
]
