"""Sharded rollout workers: the actor half of actor/learner training.

Figure 7 of the paper shows NeuroCuts training scaling near-linearly by
collecting decision-tree rollouts on many parallel workers.  This module
implements that split:

* :class:`RolloutWorker` owns an environment plus a policy replica and turns
  a broadcast weight snapshot into a timestep-budgeted shard of experience.
  ``collect`` is a *pure function* of ``(weights, seed, budget)`` — the
  worker reloads the snapshot and reseeds its policy every call — so results
  are identical no matter which backend (or which process of a pool) runs
  the shard.
* :class:`RolloutShard` is what travels back to the learner: the
  concatenated :class:`~repro.rl.batch.SampleBatch`, lightweight per-rollout
  summaries for iteration statistics, and at most two best-tree candidates
  (complete and overall) so the learner's best-tree tracking stays exact
  without shipping every tree across the process boundary.
* :func:`make_rollout_executor` wires workers into the backend-pluggable
  executor layer (:mod:`repro.executors`): worker state is built once per
  process by a pool initializer and served for the lifetime of the
  (persistent) pool, so each training iteration only ships a flat weight
  vector and a seed per shard.
"""

from __future__ import annotations

import itertools
import os
import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.executors import RolloutExecutor, make_executor
from repro.neurocuts.broadcast import WeightHandle, resolve_weights
from repro.nn.checkpoints import (
    flatten_parameters,
    parameter_spec,
    unflatten_parameters,
)
from repro.nn.model import ActorCriticMLP
from repro.rl.batch import SampleBatch
from repro.rl.policy import Policy
from repro.rules.ruleset import RuleSet
from repro.neurocuts.config import NeuroCutsConfig
from repro.neurocuts.env import NeuroCutsEnv, RolloutResult


@dataclass(frozen=True)
class RolloutSummary:
    """Lightweight per-rollout record (no tree attached)."""

    reward: float
    objective: float
    num_steps: int
    truncated: bool


@dataclass(frozen=True)
class ShardRequest:
    """One unit of scattered work: collect ``budget`` timesteps of rollouts.

    Attributes:
        session: identifies which worker state (ruleset + config) serves the
            request; guards against stale per-process worker caches.
        weights: the learner's policy snapshot — either the flat float64
            vector inline (serial/thread backends) or a
            :class:`~repro.neurocuts.broadcast.WeightHandle` naming a
            generation published once into shared memory (process pools,
            which would otherwise pickle one copy per shard).
        seed: entropy for this shard's action sampling (scattered per worker
            per iteration by the learner).
        budget: minimum number of environment timesteps to collect; whole
            rollouts are collected, so shards overshoot by at most one
            rollout.
        bootstrap: optional ``(ruleset, config)`` payload letting a process
            that never ran the session's initializer build the worker on
            first contact.  Trainer-owned executors initialise eagerly and
            leave this ``None``; it exists so externally supplied executors
            (no initializer hook) still work.
    """

    session: int
    weights: Union[np.ndarray, WeightHandle]
    seed: int
    budget: int
    bootstrap: Optional[Tuple[RuleSet, NeuroCutsConfig]] = None


@dataclass
class RolloutShard:
    """Everything one worker sends back to the learner for one iteration."""

    batch: Optional[SampleBatch]
    summaries: List[RolloutSummary]
    num_steps: int
    #: Best rollout of the shard whose tree completed within budget (and has
    #: no overflowing leaves), with its tree attached; None if every rollout
    #: of the shard was truncated-and-overflowing.
    best_complete: Optional[RolloutResult]
    #: Best rollout of the shard overall (truncated trees included).
    best_any: Optional[RolloutResult]


class RolloutWorker:
    """Owns an env + policy replica; collects timestep-budgeted shards.

    The worker is built once (per process, for pool backends) from the
    ruleset and config, which is the expensive part; every subsequent
    :meth:`collect` only loads a weight snapshot and reseeds.
    """

    def __init__(self, ruleset: RuleSet, config: NeuroCutsConfig) -> None:
        self.config = config
        self.env = NeuroCutsEnv(ruleset, config)
        self.model = ActorCriticMLP(
            obs_size=self.env.observation_size,
            action_sizes=self.env.action_sizes,
            hidden_sizes=config.hidden_sizes,
            activation=config.activation,
            seed=config.seed,
        )
        self.policy = Policy(self.model, self.env.action_space.space,
                             seed=config.seed)
        self._spec = parameter_spec(self.model.parameters())

    def load_weights(self, flat_weights: np.ndarray) -> None:
        """Install a broadcast flat weight snapshot into the policy replica."""
        self.model.load_parameters(unflatten_parameters(flat_weights, self._spec))

    def collect(self, flat_weights: np.ndarray, seed: int,
                budget: int) -> RolloutShard:
        """Collect at least ``budget`` timesteps of rollouts from a snapshot.

        Deterministic: the same (weights, seed, budget) produces the same
        shard on any backend.
        """
        self.load_weights(flat_weights)
        self.policy.reseed(seed)
        batches: List[SampleBatch] = []
        summaries: List[RolloutSummary] = []
        best_complete: Optional[RolloutResult] = None
        best_any: Optional[RolloutResult] = None
        steps = 0
        while steps < budget:
            result = self.env.rollout(self.policy)
            steps += result.num_steps
            summaries.append(
                RolloutSummary(
                    reward=result.root_reward.reward,
                    objective=result.objective,
                    num_steps=result.num_steps,
                    truncated=result.truncated,
                )
            )
            if result.batch is not None:
                batches.append(result.batch)
            if best_any is None or result.objective < best_any.objective:
                best_any = result
            if not (result.truncated and result.tree.has_overflowing_leaves()):
                if best_complete is None or \
                        result.objective < best_complete.objective:
                    best_complete = result
            if result.num_steps == 0:
                # A trivially complete tree (ruleset fits one leaf) yields no
                # decisions; looping further would never fill the budget.
                # The rollout is still recorded so the (optimal) tree reaches
                # the learner's best tracking.
                break
        batch = SampleBatch.concat(batches) if batches else None

        def _candidate(result: Optional[RolloutResult]) -> Optional[RolloutResult]:
            # The learner only reads tree/root_reward/num_steps/truncated
            # from best candidates; shipping their per-rollout batch again
            # (it is already inside the concatenated shard batch) would just
            # bloat the pickled reply.
            if result is None or result.batch is None:
                return result
            return dataclasses.replace(result, batch=None)

        return RolloutShard(
            batch=batch,
            summaries=summaries,
            num_steps=steps,
            best_complete=_candidate(best_complete),
            best_any=_candidate(best_any),
        )


# --------------------------------------------------------------------------- #
# Executor integration: per-process worker state + top-level task functions
# --------------------------------------------------------------------------- #

#: Worker state of this process, keyed by session id.  Pool processes hold
#: their initializer's entry plus at most one bootstrapped entry; the
#: learner process may hold one per live serial-backend trainer.
_WORKERS: Dict[int, RolloutWorker] = {}

#: Sessions built on demand from a request's bootstrap payload (as opposed
#: to an executor initializer).  Only the most recent one is kept per
#: process: external pools can outlive many trainers, and without eviction
#: every finished trainer would leak an env + model replica here.
_BOOTSTRAPPED_SESSIONS: set = set()

#: Session ids unique within the learner process (workers echo them back).
_session_counter = itertools.count(os.getpid() << 20)


def allocate_session() -> int:
    """A fresh session id (for callers managing their own executors)."""
    return next(_session_counter)


def discard_session(session: Optional[int]) -> None:
    """Drop this process's worker state for a finished session.

    Serial-backend (and bootstrapped external-serial) sessions build their
    worker in the learner process; trainers call this from ``close`` so the
    env + model replica does not outlive them.  State held by pool
    *processes* is out of reach here: trainer-owned pools die with the
    trainer, and external pools evict stale bootstrapped sessions on their
    next bootstrap (see :func:`_collect_shard`).
    """
    if session is not None:
        _WORKERS.pop(session, None)
        _BOOTSTRAPPED_SESSIONS.discard(session)


def _init_worker(session: int, ruleset: RuleSet,
                 config: NeuroCutsConfig) -> None:
    """Executor initializer: build this process's rollout worker once."""
    _WORKERS[session] = RolloutWorker(ruleset, config)


def _collect_shard(request: ShardRequest) -> RolloutShard:
    """Top-level (picklable) task: serve one shard from per-process state."""
    worker = _WORKERS.get(request.session)
    if worker is None:
        if request.bootstrap is None:
            raise RuntimeError(
                f"rollout session {request.session} not initialised in this "
                f"process; the executor must run _init_worker first"
            )
        # Evict previously bootstrapped sessions first: their trainers have
        # moved on (collect is pure, so an interleaved trainer would simply
        # rebuild), and keeping them would leak one env + model replica per
        # past trainer in long-lived external pools.
        for stale in list(_BOOTSTRAPPED_SESSIONS):
            _WORKERS.pop(stale, None)
        _BOOTSTRAPPED_SESSIONS.clear()
        ruleset, config = request.bootstrap
        worker = RolloutWorker(ruleset, config)
        _WORKERS[request.session] = worker
        _BOOTSTRAPPED_SESSIONS.add(request.session)
    return worker.collect(resolve_weights(request.weights), request.seed,
                          request.budget)


def make_rollout_executor(ruleset: RuleSet, config: NeuroCutsConfig,
                          num_workers: int,
                          backend: Optional[str] = None
                          ) -> Tuple[RolloutExecutor, int]:
    """Build an executor whose processes each own a ready rollout worker.

    Returns ``(executor, session)``; shard requests must carry the session
    id so tasks find the matching worker state.
    """
    session = allocate_session()
    executor = make_executor(
        num_workers,
        backend=backend,
        initializer=_init_worker,
        initargs=(session, ruleset, config),
    )
    return executor, session


def broadcast_weights(model: ActorCriticMLP) -> np.ndarray:
    """Snapshot a learner model as the flat vector shards are served from."""
    return flatten_parameters(model.parameters())


def shard_budgets(total_budget: int, num_workers: int) -> List[int]:
    """Split a batch budget across workers (first shards take the remainder).

    Every worker gets at least one timestep of budget so each shard contains
    at least one rollout.
    """
    if total_budget < 1:
        raise ValueError("total_budget must be >= 1")
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    base, remainder = divmod(total_budget, num_workers)
    return [max(1, base + (1 if i < remainder else 0))
            for i in range(num_workers)]


def shard_seeds(root_seed: int, iteration: int, num_workers: int) -> List[int]:
    """Deterministic per-worker seeds for one collection round.

    Derived by hashing (root_seed, iteration, worker) through a
    ``SeedSequence`` so streams are independent across workers and
    iterations but identical across backends and resumed runs.
    """
    return [
        int(np.random.SeedSequence(entropy=root_seed,
                                   spawn_key=(iteration, worker))
            .generate_state(1, dtype=np.uint64)[0])
        for worker in range(num_workers)
    ]
