"""Tree-shape and learning-progress visualisation data (Figures 5 and 6).

The paper visualises learning by plotting, per tree level, the number of
nodes and the distribution of cut dimensions.  Rendering is left to the
caller (the benchmark scripts print text tables); this module computes the
underlying data structures from trees and training histories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.rules.fields import DIMENSIONS, Dimension
from repro.tree.actions import CutAction, MultiCutAction
from repro.tree.tree import DecisionTree


@dataclass(frozen=True)
class LevelProfile:
    """Node count and cut-dimension mix at one tree level."""

    level: int
    num_nodes: int
    cut_dimension_counts: Dict[str, int]


@dataclass(frozen=True)
class TreeProfile:
    """The per-level profile of one tree (one column group of Figure 5)."""

    depth: int
    num_nodes: int
    levels: List[LevelProfile]

    def dominant_dimensions(self, top_k: int = 3) -> List[str]:
        """The most frequently cut dimensions across the whole tree."""
        totals: Dict[str, int] = {}
        for level in self.levels:
            for dim, count in level.cut_dimension_counts.items():
                totals[dim] = totals.get(dim, 0) + count
        ranked = sorted(totals, key=lambda d: -totals[d])
        return ranked[:top_k]


def profile_tree(tree: DecisionTree) -> TreeProfile:
    """Compute the per-level node counts and cut-dimension histograms."""
    per_level_nodes: Dict[int, int] = {}
    per_level_cuts: Dict[int, Dict[str, int]] = {}
    for node in tree.nodes():
        per_level_nodes[node.depth] = per_level_nodes.get(node.depth, 0) + 1
        if node.action is None:
            continue
        dims: List[Dimension] = []
        if isinstance(node.action, CutAction):
            dims = [node.action.dimension]
        elif isinstance(node.action, MultiCutAction):
            dims = [d for d, _ in node.action.cuts]
        for dim in dims:
            level_counts = per_level_cuts.setdefault(node.depth, {})
            level_counts[dim.name] = level_counts.get(dim.name, 0) + 1
    levels = [
        LevelProfile(
            level=level,
            num_nodes=per_level_nodes[level],
            cut_dimension_counts=per_level_cuts.get(level, {}),
        )
        for level in sorted(per_level_nodes)
    ]
    return TreeProfile(
        depth=max(per_level_nodes) if per_level_nodes else 0,
        num_nodes=sum(per_level_nodes.values()),
        levels=levels,
    )


def render_profile(profile: TreeProfile, max_width: int = 50) -> str:
    """Render a text version of Figure 5's per-level bar chart."""
    if not profile.levels:
        return "(empty tree)"
    peak = max(level.num_nodes for level in profile.levels)
    lines = []
    for level in profile.levels:
        bar_len = max(1, int(round(max_width * level.num_nodes / peak)))
        dims = ",".join(
            f"{name}:{count}" for name, count in
            sorted(level.cut_dimension_counts.items(), key=lambda kv: -kv[1])
        )
        lines.append(
            f"level {level.level:>3} | {'#' * bar_len:<{max_width}} "
            f"{level.num_nodes:>6} nodes  {dims}"
        )
    return "\n".join(lines)


def compare_profiles(profiles: Sequence[TreeProfile]) -> Dict[str, List[float]]:
    """Summarise a sequence of profiles (e.g. over training) as curves.

    Returns series for tree depth and node count, in profile order — the
    data behind Figure 5's left-to-right snapshots.
    """
    return {
        "depth": [float(p.depth) for p in profiles],
        "num_nodes": [float(p.num_nodes) for p in profiles],
    }
