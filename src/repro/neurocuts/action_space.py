"""NeuroCuts action space: (dimension, per-dimension action) tuples.

Appendix A: actions are sampled from two categorical distributions, one
selecting the dimension and one selecting what to do along that dimension.
The second component enumerates the cut fan-outs (2, 4, 8, 16, 32) followed
by the partition choices allowed by the configured partition mode:

* ``none`` — cut actions only;
* ``simple`` — one partition action per discrete coverage-threshold level
  (0 %, 2 %, ..., 64 %; the 100 % level cannot separate anything and is
  excluded), applied along the selected dimension;
* ``efficuts`` — a single EffiCuts-partition action (the dimension component
  is ignored for it).

Partition actions are only available at the top levels of the tree; the
action mask communicates that to the policy, exactly like the paper's
``ActionMask`` observation component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.exceptions import ConfigError
from repro.rules.fields import DIMENSIONS, Dimension
from repro.rl.spaces import Discrete, TupleSpace
from repro.tree.actions import (
    CUT_SIZES,
    PARTITION_LEVELS,
    Action,
    CutAction,
    EffiCutsPartitionAction,
    PartitionAction,
)
from repro.tree.node import Node
from repro.neurocuts.config import NeuroCutsConfig

#: Simple-partition thresholds the agent may pick (100 % excluded: it cannot
#: separate rules, every coverage fraction is <= 1).
SIMPLE_PARTITION_THRESHOLDS: Tuple[float, ...] = PARTITION_LEVELS[:-1]


@dataclass(frozen=True)
class ActionSpec:
    """Static description of the NeuroCuts action encoding for one config."""

    num_dimensions: int
    num_cut_actions: int
    num_partition_actions: int
    partition_mode: str

    @property
    def per_dimension_actions(self) -> int:
        """Size of the second categorical component."""
        return self.num_cut_actions + self.num_partition_actions

    @property
    def sizes(self) -> Tuple[int, int]:
        """Component sizes of the tuple action space."""
        return (self.num_dimensions, self.per_dimension_actions)


class NeuroCutsActionSpace:
    """Encodes/decodes NeuroCuts tuple actions and computes action masks."""

    def __init__(self, config: NeuroCutsConfig) -> None:
        self.config = config
        if config.partition_mode == "none":
            num_partition = 0
        elif config.partition_mode == "simple":
            num_partition = len(SIMPLE_PARTITION_THRESHOLDS)
        elif config.partition_mode == "efficuts":
            num_partition = 1
        else:  # pragma: no cover - config validation rejects this earlier
            raise ConfigError(f"unknown partition mode {config.partition_mode!r}")
        self.spec = ActionSpec(
            num_dimensions=len(DIMENSIONS),
            num_cut_actions=len(CUT_SIZES),
            num_partition_actions=num_partition,
            partition_mode=config.partition_mode,
        )
        self.space = TupleSpace(
            spaces=(
                Discrete(self.spec.num_dimensions),
                Discrete(self.spec.per_dimension_actions),
            )
        )

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #

    def decode(self, action: Tuple[int, int]) -> Action:
        """Convert a (dimension index, action index) pair to a tree action."""
        dim_idx, act_idx = int(action[0]), int(action[1])
        if not self.space.contains((dim_idx, act_idx)):
            raise ConfigError(f"action {action} outside the action space")
        dimension = DIMENSIONS[dim_idx]
        if act_idx < self.spec.num_cut_actions:
            return CutAction(dimension=dimension, num_cuts=CUT_SIZES[act_idx])
        partition_idx = act_idx - self.spec.num_cut_actions
        if self.spec.partition_mode == "simple":
            threshold = SIMPLE_PARTITION_THRESHOLDS[partition_idx]
            return PartitionAction(dimension=dimension, threshold=threshold)
        return EffiCutsPartitionAction(
            largeness_threshold=self.config.efficuts_largeness_threshold
        )

    # ------------------------------------------------------------------ #
    # Masks
    # ------------------------------------------------------------------ #

    def masks_for_node(self, node: Node) -> Tuple[np.ndarray, np.ndarray]:
        """Per-component boolean masks of the actions valid at ``node``.

        A cut size is valid when the node's range along at least one
        dimension is wide enough to cut (the dimension mask handles the
        per-dimension width); partition actions are valid only in the top
        ``partition_top_levels`` levels of the tree and only if they would
        separate the node's rules into two non-empty groups.
        """
        dim_mask = np.zeros(self.spec.num_dimensions, dtype=bool)
        for i, dim in enumerate(DIMENSIONS):
            lo, hi = node.range_for(dim)
            dim_mask[i] = (hi - lo) >= 2
        if not dim_mask.any():
            # Degenerate box: allow everything and let the environment turn
            # the inapplicable action into a forced leaf.
            dim_mask[:] = True

        act_mask = np.zeros(self.spec.per_dimension_actions, dtype=bool)
        act_mask[: self.spec.num_cut_actions] = True

        partition_allowed = (
            self.spec.num_partition_actions > 0
            and node.depth < self.config.partition_top_levels
        )
        if partition_allowed:
            if self.spec.partition_mode == "efficuts":
                act_mask[self.spec.num_cut_actions] = self._efficuts_separates(node)
            else:
                for j, threshold in enumerate(SIMPLE_PARTITION_THRESHOLDS):
                    act_mask[self.spec.num_cut_actions + j] = (
                        self._simple_separates(node, threshold)
                    )
        return dim_mask, act_mask

    def _simple_separates(self, node: Node, threshold: float) -> bool:
        """True if some dimension's coverage threshold splits the rules."""
        for dim in DIMENSIONS:
            large = sum(
                1 for rule in node.rules
                if rule.coverage_fraction(dim) > threshold
            )
            if 0 < large < node.num_rules:
                return True
        return False

    def _efficuts_separates(self, node: Node) -> bool:
        """True if the EffiCuts partition yields at least two categories."""
        from repro.tree.node import efficuts_categories

        buckets = efficuts_categories(
            node.rules, self.config.efficuts_largeness_threshold
        )
        return sum(1 for b in buckets if b) >= 2

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #

    def describe(self) -> str:
        """One-line description of the configured action encoding."""
        return (
            f"Tuple(Discrete({self.spec.num_dimensions}), "
            f"Discrete({self.spec.num_cut_actions} cuts + "
            f"{self.spec.num_partition_actions} partitions))"
        )

    def all_actions(self) -> List[Tuple[int, int]]:
        """Enumerate every (dimension, action) index pair."""
        return [
            (d, a)
            for d in range(self.spec.num_dimensions)
            for a in range(self.spec.per_dimension_actions)
        ]
