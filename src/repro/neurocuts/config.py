"""NeuroCuts configuration (the hyperparameters of Table 1).

Defaults follow Appendix B of the paper.  The few scale knobs whose paper
values assume hours of AWS time (total timesteps, batch size, network width)
keep the paper defaults here but are overridden to smaller values by the
test-suite and benchmark fixtures; see DESIGN.md §2 for the substitution
rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.exceptions import ConfigError
from repro.rl.ppo import PPOConfig

#: Allowed top-node partitioning modes (Table 1).
PARTITION_MODES: Tuple[str, ...] = ("none", "simple", "efficuts")

#: Allowed reward scaling functions (Algorithm 1, line 5).
REWARD_SCALING: Tuple[str, ...] = ("linear", "log")

#: Reward assignment modes: "subtree" is the paper's dense per-node scheme
#: (each decision is rewarded with its own subtree's objective); "root" is
#: the ablation where every decision receives only the whole-tree reward.
REWARD_MODES: Tuple[str, ...] = ("subtree", "root")

#: Rollout-collection backends (None = pick from the worker count).
ROLLOUT_BACKENDS: Tuple[Optional[str], ...] = (None, "serial", "process")


@dataclass
class NeuroCutsConfig:
    """All knobs of a NeuroCuts training run.

    Attributes mirror Table 1 of the paper:

    * ``time_space_coeff`` — the coefficient ``c`` trading classification
      time (c = 1) against memory footprint (c = 0).
    * ``partition_mode`` — top-node partitioning: ``"none"``, ``"simple"``
      (learned per-dimension coverage threshold) or ``"efficuts"``.
    * ``reward_scaling`` — ``"linear"`` (f(x) = x) or ``"log"`` (f(x) = log x).
    * ``max_timesteps_per_rollout`` — rollout truncation (Section 5.1).
    * ``max_tree_depth`` — depth truncation (Section 5.1).
    * ``max_timesteps_total`` — total environment steps to train for.
    * ``timesteps_per_batch`` — environment steps per PPO batch.
    * ``hidden_sizes`` / ``activation`` — the policy network (512×512 tanh).
    * ``leaf_threshold`` — rules per terminal leaf (shared with baselines).
    * ``partition_top_levels`` — tree levels at which partition actions stay
      unmasked (the paper prohibits partitioning at lower levels).

    Beyond Table 1, the actor/learner knobs (the paper's Figure 7 scaling
    setup):

    * ``num_rollout_workers`` — how many rollout shards each PPO batch is
      scattered over.
    * ``rollout_backend`` — ``None`` (auto: serial for one worker, a
      persistent process pool otherwise), ``"serial"``, or ``"process"``.
    * ``async_collection`` — when True, the trainer pipelines collection
      against learning: the next round's rollout shards are submitted on
      the *pre-update* weight snapshot before the PPO update runs, so
      workers keep rolling while the learner learns.  Every trained batch
      is at most ``max_weight_lag`` weight generations stale (explicitly
      stamped and asserted).  When False (default) collection is fully
      synchronous and histories are byte-identical to the classic path.
    * ``max_weight_lag`` — the staleness bound of async collection; only
      a lag of 1 (off-by-one snapshots, the paper's pipelined setup) or 0
      (submit-after-update: async plumbing, no overlap) is supported.
    """

    time_space_coeff: float = 1.0
    partition_mode: str = "none"
    reward_scaling: str = "linear"
    reward_mode: str = "subtree"
    max_timesteps_per_rollout: int = 15000
    max_tree_depth: int = 100
    max_timesteps_total: int = 10_000_000
    timesteps_per_batch: int = 60_000
    hidden_sizes: Sequence[int] = (512, 512)
    activation: str = "tanh"
    learning_rate: float = 5e-5
    discount_factor: float = 1.0
    entropy_coeff: float = 0.01
    clip_param: float = 0.3
    vf_clip_param: float = 10.0
    kl_target: float = 0.01
    num_sgd_iters: int = 30
    sgd_minibatch_size: int = 1000
    leaf_threshold: int = 16
    partition_top_levels: int = 1
    efficuts_largeness_threshold: float = 0.5
    seed: int = 0
    #: Stop training early once this many rollouts produced no improvement.
    convergence_patience: Optional[int] = None
    #: Rollout shards per PPO batch (1 = classic single-process collection).
    num_rollout_workers: int = 1
    #: Executor backend for rollout collection (None = auto).
    rollout_backend: Optional[str] = None
    #: Pipeline collection against the PPO update (False = byte-identical
    #: to the classic synchronous path).
    async_collection: bool = False
    #: Bounded staleness of async collection, in weight generations.
    max_weight_lag: int = 1

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigError` if any value is out of range."""
        if not 0.0 <= self.time_space_coeff <= 1.0:
            raise ConfigError("time_space_coeff must be within [0, 1]")
        if self.partition_mode not in PARTITION_MODES:
            raise ConfigError(
                f"partition_mode must be one of {PARTITION_MODES}, "
                f"got {self.partition_mode!r}"
            )
        if self.reward_scaling not in REWARD_SCALING:
            raise ConfigError(
                f"reward_scaling must be one of {REWARD_SCALING}, "
                f"got {self.reward_scaling!r}"
            )
        if self.reward_mode not in REWARD_MODES:
            raise ConfigError(
                f"reward_mode must be one of {REWARD_MODES}, "
                f"got {self.reward_mode!r}"
            )
        if self.max_timesteps_per_rollout < 1:
            raise ConfigError("max_timesteps_per_rollout must be >= 1")
        if self.max_tree_depth < 1:
            raise ConfigError("max_tree_depth must be >= 1")
        if self.leaf_threshold < 1:
            raise ConfigError("leaf_threshold must be >= 1")
        if self.timesteps_per_batch < 1:
            raise ConfigError("timesteps_per_batch must be >= 1")
        if self.max_timesteps_total < 1:
            raise ConfigError("max_timesteps_total must be >= 1")
        if self.partition_top_levels < 0:
            raise ConfigError("partition_top_levels must be >= 0")
        if not 0.0 < self.efficuts_largeness_threshold < 1.0:
            raise ConfigError("efficuts_largeness_threshold must be in (0, 1)")
        if self.num_rollout_workers < 1:
            raise ConfigError("num_rollout_workers must be >= 1")
        if self.rollout_backend not in ROLLOUT_BACKENDS:
            raise ConfigError(
                f"rollout_backend must be one of {ROLLOUT_BACKENDS}, "
                f"got {self.rollout_backend!r}"
            )
        if self.max_weight_lag not in (0, 1):
            raise ConfigError(
                "max_weight_lag must be 0 or 1: the pipelined collector "
                "holds at most one in-flight round (double-buffered "
                f"broadcast), got {self.max_weight_lag!r}"
            )

    def ppo_config(self) -> PPOConfig:
        """The PPO learner configuration implied by this NeuroCuts config."""
        return PPOConfig(
            learning_rate=self.learning_rate,
            clip_param=self.clip_param,
            vf_clip_param=self.vf_clip_param,
            entropy_coeff=self.entropy_coeff,
            kl_target=self.kl_target,
            num_sgd_iters=self.num_sgd_iters,
            sgd_minibatch_size=self.sgd_minibatch_size,
        )

    @classmethod
    def fast_test_config(cls, **overrides) -> "NeuroCutsConfig":
        """A scaled-down configuration suitable for unit tests and CI benches."""
        defaults = dict(
            hidden_sizes=(64, 64),
            max_timesteps_total=4000,
            timesteps_per_batch=400,
            max_timesteps_per_rollout=300,
            max_tree_depth=30,
            num_sgd_iters=5,
            sgd_minibatch_size=128,
            learning_rate=3e-4,
        )
        defaults.update(overrides)
        return cls(**defaults)
