"""The NeuroCuts training driver (Algorithm 1 + the PPO realisation of §5).

The trainer is the *learner* of an actor/learner architecture (the paper's
Figure 7 scaling design).  Each iteration it broadcasts a flat snapshot of
the policy weights, scatters per-worker seeds and timestep budgets to
:class:`~repro.neurocuts.workers.RolloutWorker` shards running on a
backend-pluggable executor (serial in-process by default, a persistent
process pool for ``num_rollout_workers > 1``), gathers and concatenates the
experience shards, runs the PPO update centrally, and tracks the best tree
seen so far under the configured time/space objective — the artifact the
evaluation section reports.

Shard collection is a pure function of (weights, seed, budget), so for a
fixed configuration the serial backend and a one-worker process pool produce
byte-identical training histories.

Two fleet-trainer refinements ride on that purity:

* **Shared-memory weight broadcast** — process-pool backends publish each
  weight snapshot once through :mod:`repro.neurocuts.broadcast` and ship a
  tiny handle per shard instead of pickling the flat vector per request.
  Serial/thread backends keep the inline ndarray; the bytes collected are
  identical either way.
* **Async collection** (``config.async_collection``) — the next round's
  shards are submitted on the *pre-update* snapshot before the PPO update
  runs, so workers keep rolling while the learner learns.  Every trained
  batch carries an explicit weight-generation stamp and the trainer raises
  if a batch is ever staler than ``config.max_weight_lag``.  Checkpoints
  persist the gathered-but-untrained prefetch round, so resumed async runs
  continue byte-identically.  With ``async_collection=False`` the classic
  synchronous path runs untouched.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.exceptions import BuildError, CheckpointError
from repro.rules.ruleset import RuleSet
from repro.nn.checkpoints import load_training_checkpoint, save_checkpoint
from repro.nn.model import ActorCriticMLP
from repro.rl.batch import SampleBatch
from repro.rl.policy import Policy
from repro.rl.ppo import PPOLearner, PPOStats
from repro.tree.lookup import TreeClassifier
from repro.tree.serialize import tree_from_dict, tree_to_dict
from repro.tree.tree import DecisionTree
from repro.baselines.base import TreeBuilder
from repro.executors import ProcessPoolExecutor, RolloutExecutor, TaskHandle
from repro.neurocuts.broadcast import WeightBroadcast, shared_memory_available
from repro.neurocuts.config import NeuroCutsConfig
from repro.neurocuts.env import NeuroCutsEnv, RolloutResult
from repro.neurocuts.reward import RewardComponents
from repro.neurocuts.workers import (
    RolloutSummary,
    ShardRequest,
    _collect_shard,
    allocate_session,
    broadcast_weights,
    discard_session,
    make_rollout_executor,
    shard_budgets,
    shard_seeds,
)


@dataclass
class IterationStats:
    """Diagnostics for one training iteration (one PPO batch)."""

    iteration: int
    timesteps_total: int
    num_rollouts: int
    mean_reward: float
    best_objective: float
    best_time: float
    best_space: float
    policy_loss: float
    value_loss: float
    entropy: float
    kl: float
    wall_time_s: float

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)


@dataclass
class _InFlightRound:
    """One submitted-but-ungathered collection round (the async pipeline)."""

    handles: List[TaskHandle]
    #: Weight generation the round's snapshot was taken at (staleness stamp).
    generation: int


@dataclass
class _ReadyRound:
    """A gathered round waiting to be trained on.

    Its steps are already counted and its best-tree candidates already
    folded — exactly the state an uninterrupted run is in between gathering
    a round and running its PPO update — so a checkpoint carrying one
    resumes byte-identically.
    """

    batch: SampleBatch
    summaries: List[RolloutSummary]
    generation: int


@dataclass
class TrainingResult:
    """Outcome of a full NeuroCuts training run."""

    best_tree: DecisionTree
    best_objective: float
    best_time: float
    best_space: float
    history: List[IterationStats]
    timesteps_total: int

    def best_classifier(self) -> TreeClassifier:
        """The best tree wrapped as a deployable classifier."""
        return TreeClassifier(self.best_tree.ruleset, [self.best_tree])


class NeuroCutsTrainer:
    """Trains a NeuroCuts policy for one classifier and extracts its best tree.

    Args:
        ruleset: the classifier to learn a tree for.
        config: training configuration; ``config.num_rollout_workers``
            controls rollout sharding.
        executor: optional pre-built executor to collect shards on.  When
            omitted the trainer owns one sized from the config (serial for
            one worker, a persistent spawn pool otherwise) and tears it down
            in :meth:`close`.  Externally supplied executors are never shut
            down by the trainer; their worker processes bootstrap rollout
            state from the first request they serve.
        rollout_backend: override the backend choice ("serial" or
            "process") without touching the config — e.g. to force a
            one-worker process pool for determinism checks.
    """

    def __init__(self, ruleset: RuleSet,
                 config: Optional[NeuroCutsConfig] = None,
                 executor: Optional[RolloutExecutor] = None,
                 rollout_backend: Optional[str] = None) -> None:
        self.config = config or NeuroCutsConfig()
        self.ruleset = ruleset
        self.env = NeuroCutsEnv(ruleset, self.config)
        self.model = ActorCriticMLP(
            obs_size=self.env.observation_size,
            action_sizes=self.env.action_sizes,
            hidden_sizes=self.config.hidden_sizes,
            activation=self.config.activation,
            seed=self.config.seed,
        )
        self.policy = Policy(self.model, self.env.action_space.space,
                             seed=self.config.seed)
        self.learner = PPOLearner(self.model, self.config.ppo_config(),
                                  seed=self.config.seed)
        self.history: List[IterationStats] = []
        self._timesteps_total = 0
        #: Number of collection rounds run so far (seeds shards per round).
        self._collect_rounds = 0
        #: Convergence-patience state (persists across train() calls and
        #: checkpoint resumes).
        self._stale_iterations = 0
        self._last_best = float("inf")
        #: Best rollout whose tree completed within the rollout budget.
        self._best_rollout: Optional[RolloutResult] = None
        #: Best rollout overall, including truncated trees (still valid
        #: classifiers — truncation only leaves oversized leaves behind).
        self._best_any: Optional[RolloutResult] = None
        self._executor = executor
        self._owns_executor = executor is None
        self._session: Optional[int] = None
        #: True when worker state was installed by a pool initializer (so
        #: shard requests need not carry a bootstrap payload).
        self._session_initialized = False
        self._rollout_backend = rollout_backend
        #: Weight generations applied so far (== PPO updates run).  Stamps
        #: async batches so staleness is asserted, never assumed.
        self._weight_generation = 0
        #: Per-iteration staleness (in weight generations) of the batch each
        #: PPO update trained on; all zeros on the synchronous path.
        self.collection_lags: List[int] = []
        #: The async pipeline's one in-flight round (None when synchronous).
        self._inflight: Optional[_InFlightRound] = None
        #: A gathered-but-untrained round carried across train() calls and
        #: checkpoint resumes.
        self._prefetch: Optional[_ReadyRound] = None
        #: Shared-memory weight publisher (process-pool backends only).
        self._broadcast: Optional[WeightBroadcast] = None

    # ------------------------------------------------------------------ #
    # Executor lifecycle
    # ------------------------------------------------------------------ #

    @property
    def num_rollout_workers(self) -> int:
        """How many rollout shards each batch is scattered over."""
        if self._executor is not None and not self._owns_executor:
            return self._executor.num_workers
        return self.config.num_rollout_workers

    def _ensure_executor(self) -> RolloutExecutor:
        if self._executor is None:
            self._executor, self._session = make_rollout_executor(
                self.ruleset, self.config, self.config.num_rollout_workers,
                backend=self._rollout_backend or self.config.rollout_backend,
            )
            self._session_initialized = True
        elif self._session is None:
            # External executor: its processes never ran our initializer, so
            # requests carry a bootstrap payload under a fresh session id.
            self._session = allocate_session()
        return self._executor

    def close(self) -> None:
        """Shut down the trainer-owned executor (idempotent).

        Externally supplied executors are left running — their owner decides
        when to release them.
        """
        # Drain any in-flight async round before tearing anything down:
        # abandoned tasks would otherwise race the shared-memory unlink (and
        # a pool shutdown) below.  Results are discarded; the gathered
        # prefetch (if any) is kept so a save() after close() stays exact.
        if self._inflight is not None:
            for handle in self._inflight.handles:
                try:
                    handle.result()
                except Exception:  # noqa: BLE001 - draining, not consuming
                    pass
            self._inflight = None
        if self._broadcast is not None:
            self._broadcast.close()
            self._broadcast = None
        # Serial sessions build their rollout worker in this process; drop
        # it so closed trainers do not accumulate env + model replicas.
        discard_session(self._session)
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        self._session = None
        self._session_initialized = False

    def __enter__(self) -> "NeuroCutsTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Rollout collection (the scatter/gather half of the learner loop)
    # ------------------------------------------------------------------ #

    def _publish_weights(self, executor: RolloutExecutor):
        """Snapshot the model for scatter: inline ndarray or shm handle.

        Process pools publish the flat vector once into shared memory and
        ship a tiny :class:`~repro.neurocuts.broadcast.WeightHandle` per
        shard (stamped with the round index it serves).  Serial and thread
        backends keep the inline ndarray — the same bytes either way, so
        histories are byte-identical across the two transports.
        """
        flat = broadcast_weights(self.model)
        if not (isinstance(executor, ProcessPoolExecutor)
                and shared_memory_available()):
            return flat
        if self._broadcast is None:
            self._broadcast = WeightBroadcast(capacity=len(flat))
        return self._broadcast.publish(flat, generation=self._collect_rounds)

    def _build_requests(self, executor: RolloutExecutor) -> List[ShardRequest]:
        """Scatter plan for the next collection round (round index seeds it)."""
        remaining = self.config.max_timesteps_total - self._timesteps_total
        total_budget = max(1, min(self.config.timesteps_per_batch, remaining))
        num_workers = max(1, self.num_rollout_workers)
        budgets = shard_budgets(total_budget, num_workers)
        seeds = shard_seeds(self.config.seed, self._collect_rounds, num_workers)
        weights = self._publish_weights(executor)
        # External executors never ran our initializer, so every request
        # carries a (ruleset, config) bootstrap payload.  It cannot be
        # dropped after a warm-up round: map() gives no process-affinity
        # guarantee, and another trainer sharing the executor may evict this
        # session's worker between rounds.  Trainer-owned executors (the
        # default) initialise eagerly and never pay this pickling cost.
        bootstrap = None if self._session_initialized \
            else (self.ruleset, self.config)
        return [
            ShardRequest(session=self._session, weights=weights, seed=seed,
                         budget=budget, bootstrap=bootstrap)
            for seed, budget in zip(seeds, budgets)
        ]

    def _fold_shards(self, shards) -> tuple[SampleBatch, List[RolloutSummary]]:
        """Consume one gathered round: count steps, fold bests, concatenate."""
        self._collect_rounds += 1
        batches: List[SampleBatch] = []
        summaries: List[RolloutSummary] = []
        for shard in shards:
            self._timesteps_total += shard.num_steps
            summaries.extend(shard.summaries)
            if shard.batch is not None:
                batches.append(shard.batch)
            # Gather in worker order so tie-breaking (strict <, first wins)
            # matches a serial pass over the same rollout stream.
            if shard.best_any is not None:
                self._consider_best(shard.best_any)
            if shard.best_complete is not None:
                self._consider_best(shard.best_complete)
        if not batches:
            # Zero-step rollouts (a ruleset that fits one terminal leaf)
            # still report their tree through the best tracking above, so
            # train() can return the optimal tree instead of crashing.
            raise BuildError("no experience collected; rollouts produced no steps")
        return SampleBatch.concat(batches), summaries

    def collect_batch(self) -> tuple[SampleBatch, List[RolloutSummary]]:
        """Collect one PPO batch worth of rollouts, sharded across workers.

        Broadcasts the current weights, scatters per-worker seeds and
        budgets, gathers the shards, folds their best-tree candidates into
        the global best tracking, and concatenates the experience.
        """
        executor = self._ensure_executor()
        requests = self._build_requests(executor)
        shards = executor.map(_collect_shard, requests)
        return self._fold_shards(shards)

    # ----- the async pipeline (submit ahead, gather one round behind) ----- #

    def _submit_round(self) -> _InFlightRound:
        """Launch the next collection round without waiting on its results."""
        assert self._inflight is None, "at most one round may be in flight"
        executor = self._ensure_executor()
        requests = self._build_requests(executor)
        return _InFlightRound(
            handles=[executor.submit(_collect_shard, request)
                     for request in requests],
            generation=self._weight_generation,
        )

    def _gather_inflight(self) -> _ReadyRound:
        """Block on the in-flight round and fold it (clears the pipeline)."""
        inflight = self._inflight
        self._inflight = None
        shards = [handle.result() for handle in inflight.handles]
        batch, summaries = self._fold_shards(shards)
        return _ReadyRound(batch=batch, summaries=summaries,
                           generation=inflight.generation)

    def _take_ready_round(self) -> _ReadyRound:
        """The next round to train on: prefetch, in-flight, or collected now."""
        if self._prefetch is not None:
            ready = self._prefetch
            self._prefetch = None
            return ready
        if self._inflight is None:
            # Pipeline cold (first iteration, or ``max_weight_lag == 0``):
            # collect synchronously on the current weights.
            self._inflight = self._submit_round()
        return self._gather_inflight()

    def _drain_inflight(self) -> None:
        """Gather a leftover in-flight round into the prefetch stash.

        Called when the training loop exits with the pipeline primed: the
        round's steps are counted and its best candidates folded (exactly
        the state between gathering and training), and the gathered batch is
        carried in ``self._prefetch`` — consumed by the next ``train`` call
        and persisted by :meth:`save`, so nothing collected is ever lost.
        """
        if self._inflight is not None:
            try:
                self._prefetch = self._gather_inflight()
            except BuildError:
                # The drained round had no trainable steps; its (optimal)
                # tree already reached the best tracking via the fold.
                pass

    def _consider_best(self, result: RolloutResult) -> None:
        """Track the best complete (non-overflowing) tree seen so far."""
        if self._best_any is None or result.objective < self._best_any.objective:
            self._best_any = result
        if result.truncated and result.tree.has_overflowing_leaves():
            return
        if self._best_rollout is None or result.objective < self._best_rollout.objective:
            self._best_rollout = result

    # ------------------------------------------------------------------ #
    # Training loop
    # ------------------------------------------------------------------ #

    def train(self, max_iterations: Optional[int] = None) -> TrainingResult:
        """Run training until the timestep budget (or iteration cap) is hit.

        Convergence-patience counters live on the trainer (not this call),
        so repeated ``train`` calls — and checkpoint resumes — continue the
        same trajectory an uninterrupted run would follow.
        """
        if self.config.async_collection:
            return self._train_async(max_iterations)
        iteration = len(self.history)
        while self._timesteps_total < self.config.max_timesteps_total:
            if max_iterations is not None and iteration >= max_iterations:
                break
            start = time.perf_counter()
            try:
                batch, summaries = self.collect_batch()
            except BuildError:
                if self._best_any is not None:
                    break  # nothing to learn (single-leaf tree): done
                raise
            ppo_stats = self.learner.update(batch)
            self._weight_generation += 1
            self.collection_lags.append(0)
            iteration += 1
            stats = self._record_iteration(iteration, summaries, ppo_stats,
                                           time.perf_counter() - start)
            if self.config.convergence_patience is not None:
                if stats.best_objective < self._last_best - 1e-9:
                    self._last_best = stats.best_objective
                    self._stale_iterations = 0
                else:
                    self._stale_iterations += 1
                    if self._stale_iterations >= self.config.convergence_patience:
                        break
        return self.result()

    def _train_async(self, max_iterations: Optional[int] = None
                     ) -> TrainingResult:
        """The pipelined training loop (``config.async_collection``).

        Each iteration trains on the round gathered from the pipeline and
        immediately resubmits collection on the *pre-update* snapshot, so
        workers roll while the learner updates.  The batch trained on is
        therefore one weight generation stale from the second iteration on —
        asserted against ``config.max_weight_lag`` via explicit generation
        stamps, never assumed.  With ``max_weight_lag=0`` the pipeline never
        primes and the trajectory is byte-identical to the synchronous path.

        When the loop exits with a round still in flight (budget, iteration
        cap, or convergence), the round is gathered and stashed as the
        prefetch consumed by the next ``train`` call — and persisted by
        :meth:`save` — so interrupted pipelines resume exactly.
        """
        iteration = len(self.history)
        while self._timesteps_total < self.config.max_timesteps_total \
                or self._prefetch is not None:
            if max_iterations is not None and iteration >= max_iterations:
                break
            start = time.perf_counter()
            try:
                ready = self._take_ready_round()
            except BuildError:
                if self._best_any is not None:
                    break  # nothing to learn (single-leaf tree): done
                raise
            # Pipeline: launch the next round on the snapshot *before* this
            # update applies, while there is still budget to spend.  Not
            # gated on max_iterations: capped runs leave the pipeline primed
            # (drained to the prefetch below) so a later train() call
            # continues byte-identically with an uncapped run.
            if self.config.max_weight_lag >= 1 \
                    and self._timesteps_total < self.config.max_timesteps_total:
                self._inflight = self._submit_round()
            lag = self._weight_generation - ready.generation
            if lag > self.config.max_weight_lag:
                raise BuildError(
                    f"async collection staleness contract violated: batch "
                    f"collected at weight generation {ready.generation} "
                    f"trained at generation {self._weight_generation} "
                    f"(lag {lag} > max_weight_lag "
                    f"{self.config.max_weight_lag})"
                )
            ppo_stats = self.learner.update(ready.batch)
            self._weight_generation += 1
            self.collection_lags.append(lag)
            iteration += 1
            stats = self._record_iteration(iteration, ready.summaries,
                                           ppo_stats,
                                           time.perf_counter() - start)
            if self.config.convergence_patience is not None:
                if stats.best_objective < self._last_best - 1e-9:
                    self._last_best = stats.best_objective
                    self._stale_iterations = 0
                else:
                    self._stale_iterations += 1
                    if self._stale_iterations >= self.config.convergence_patience:
                        break
        self._drain_inflight()
        return self.result()

    def _record_iteration(self, iteration: int,
                          summaries: List[RolloutSummary],
                          ppo_stats: PPOStats, wall_time: float) -> IterationStats:
        best = self._best_rollout or self._best_any
        stats = IterationStats(
            iteration=iteration,
            timesteps_total=self._timesteps_total,
            num_rollouts=len(summaries),
            mean_reward=float(np.mean([s.reward for s in summaries])),
            best_objective=best.objective if best else float("inf"),
            best_time=best.root_reward.time if best else float("inf"),
            best_space=best.root_reward.space if best else float("inf"),
            policy_loss=ppo_stats.policy_loss,
            value_loss=ppo_stats.value_loss,
            entropy=ppo_stats.entropy,
            kl=ppo_stats.kl,
            wall_time_s=wall_time,
        )
        self.history.append(stats)
        return stats

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def result(self) -> TrainingResult:
        """Package the best tree found so far (training may continue after).

        Complete trees are preferred; if every rollout so far was truncated,
        the best truncated tree is returned (it is still a correct, if slow,
        classifier).
        """
        best = self._best_rollout or self._best_any
        if best is None:
            raise BuildError("train() has not produced any tree yet")
        return TrainingResult(
            best_tree=best.tree,
            best_objective=best.objective,
            best_time=best.root_reward.time,
            best_space=best.root_reward.space,
            history=list(self.history),
            timesteps_total=self._timesteps_total,
        )

    def sample_trees(self, count: int, deterministic: bool = False
                     ) -> List[DecisionTree]:
        """Draw trees from the current (stochastic) policy — Figure 6."""
        trees = []
        for _ in range(count):
            result = self.env.rollout(
                self.policy, deterministic=deterministic, collect_experience=False
            )
            trees.append(result.tree)
        return trees

    # ------------------------------------------------------------------ #
    # Checkpointing (exact resume of an interrupted run)
    # ------------------------------------------------------------------ #

    def save(self, path: Union[str, Path]) -> None:
        """Checkpoint model, optimiser, and learner state for exact resume.

        :meth:`restore` continues training with byte-identical trajectories:
        shard seeds derive from the persisted round counter, the PPO
        minibatch RNG state and adaptive KL coefficient are saved, and the
        best-tree records (trees included) survive the round trip.  Async
        runs additionally persist the weight-generation stamp and the
        gathered-but-untrained prefetch round, so a resumed pipeline
        continues exactly where an uninterrupted one would be.
        """
        # A checkpoint must never capture a half-gathered pipeline: fold any
        # in-flight round into the prefetch first (same transition train()
        # performs on exit).
        self._drain_inflight()
        trainer_state = {
            "config": {
                key: list(value) if isinstance(value, tuple) else value
                for key, value in dataclasses.asdict(self.config).items()
            },
            "timesteps_total": self._timesteps_total,
            "collect_rounds": self._collect_rounds,
            "stale_iterations": self._stale_iterations,
            "last_best": self._last_best if self._last_best != float("inf")
            else None,
            "kl_coeff": self.learner._kl_coeff,
            "learner_rng": self.learner._rng.bit_generator.state,
            "history": [stats.as_dict() for stats in self.history],
            "best_rollout": self._rollout_record(self._best_rollout),
            "best_any": self._rollout_record(self._best_any),
            "weight_generation": self._weight_generation,
            "collection_lags": list(self.collection_lags),
            "prefetch": self._prefetch_record(self._prefetch),
        }
        save_checkpoint(self.model, path, optimizer=self.learner.optimizer,
                        trainer_state=trainer_state)

    @staticmethod
    def _rollout_record(result: Optional[RolloutResult]) -> Optional[Dict]:
        if result is None:
            return None
        return {
            "tree": tree_to_dict(result.tree),
            "time": result.root_reward.time,
            "space": result.root_reward.space,
            "reward": result.root_reward.reward,
            "num_steps": result.num_steps,
            "truncated": result.truncated,
        }

    @staticmethod
    def _prefetch_record(round_: Optional[_ReadyRound]) -> Optional[Dict]:
        """Serialise the prefetch round as JSON-safe nested lists.

        ``json`` round-trips float64 exactly (shortest-repr encoding), so a
        restored prefetch batch is byte-identical to the saved one.
        """
        if round_ is None:
            return None
        batch = round_.batch
        return {
            "generation": round_.generation,
            "summaries": [dataclasses.asdict(s) for s in round_.summaries],
            "batch": {
                "obs": batch.obs.tolist(),
                "actions": batch.actions.tolist(),
                "returns": batch.returns.tolist(),
                "value_preds": batch.value_preds.tolist(),
                "logp_old": batch.logp_old.tolist(),
                "action_masks": None if batch.action_masks is None else
                [mask.tolist() for mask in batch.action_masks],
            },
        }

    @staticmethod
    def _prefetch_from_record(record: Optional[Dict]) -> Optional[_ReadyRound]:
        if record is None:
            return None
        raw = record["batch"]
        masks = raw.get("action_masks")
        batch = SampleBatch(
            obs=np.array(raw["obs"], dtype=np.float64),
            actions=np.array(raw["actions"], dtype=np.int64),
            returns=np.array(raw["returns"], dtype=np.float64),
            value_preds=np.array(raw["value_preds"], dtype=np.float64),
            logp_old=np.array(raw["logp_old"], dtype=np.float64),
            action_masks=None if masks is None else
            [np.array(mask, dtype=bool) for mask in masks],
        )
        return _ReadyRound(
            batch=batch,
            summaries=[RolloutSummary(**s) for s in record["summaries"]],
            generation=int(record["generation"]),
        )

    def _rollout_from_record(self, record: Optional[Dict]
                             ) -> Optional[RolloutResult]:
        if record is None:
            return None
        return RolloutResult(
            tree=tree_from_dict(record["tree"], self.ruleset),
            batch=None,
            root_reward=RewardComponents(
                time=record["time"], space=record["space"],
                reward=record["reward"],
            ),
            num_steps=record["num_steps"],
            truncated=record["truncated"],
        )

    @classmethod
    def restore(cls, path: Union[str, Path], ruleset: RuleSet,
                config: Optional[NeuroCutsConfig] = None,
                executor: Optional[RolloutExecutor] = None,
                rollout_backend: Optional[str] = None) -> "NeuroCutsTrainer":
        """Rebuild a trainer from :meth:`save` and continue exactly.

        The training configuration is restored from the checkpoint when
        ``config`` is omitted — that is the exact-resume path.  Passing a
        ``config`` overrides the saved one (e.g. to change the worker count
        on different hardware); overriding seed-relevant fields changes the
        continuation trajectory.
        """
        bundle = load_training_checkpoint(path)
        if bundle.trainer_state is None:
            raise CheckpointError(
                f"{path} is a model-only checkpoint; save it with "
                f"NeuroCutsTrainer.save() to resume training"
            )
        if config is None:
            saved = bundle.trainer_state.get("config")
            if saved is not None:
                config = NeuroCutsConfig(**{
                    key: tuple(value) if key == "hidden_sizes" else value
                    for key, value in saved.items()
                })
        trainer = cls(ruleset, config, executor=executor,
                      rollout_backend=rollout_backend)
        trainer.model.load_parameters(bundle.model.parameters())
        bundle.restore_optimizer(trainer.learner.optimizer)
        state = bundle.trainer_state
        trainer._timesteps_total = int(state["timesteps_total"])
        trainer._collect_rounds = int(state["collect_rounds"])
        trainer._stale_iterations = int(state.get("stale_iterations", 0))
        last_best = state.get("last_best")
        trainer._last_best = float("inf") if last_best is None else float(last_best)
        trainer.learner._kl_coeff = float(state["kl_coeff"])
        trainer.learner._rng.bit_generator.state = state["learner_rng"]
        trainer.history = [IterationStats(**stats) for stats in state["history"]]
        trainer._best_rollout = trainer._rollout_from_record(state["best_rollout"])
        trainer._best_any = trainer._rollout_from_record(state["best_any"])
        # Fleet-trainer state (absent in pre-async checkpoints: default to
        # the synchronous interpretation — one generation per update, no
        # prefetch in the pipeline).
        trainer._weight_generation = int(
            state.get("weight_generation", len(trainer.history)))
        trainer.collection_lags = [
            int(lag) for lag in state.get("collection_lags", [])]
        trainer._prefetch = trainer._prefetch_from_record(
            state.get("prefetch"))
        return trainer


class NeuroCutsBuilder(TreeBuilder):
    """Adapter exposing NeuroCuts through the common TreeBuilder interface.

    This is what the figure benchmarks use so NeuroCuts slots into the same
    comparison harness as the baseline heuristics.
    """

    name = "NeuroCuts"

    def __init__(self, config: Optional[NeuroCutsConfig] = None,
                 max_iterations: Optional[int] = None) -> None:
        self.config = config or NeuroCutsConfig()
        self.max_iterations = max_iterations
        self.last_result: Optional[TrainingResult] = None

    def build(self, ruleset: RuleSet) -> TreeClassifier:
        with NeuroCutsTrainer(ruleset, self.config) as trainer:
            self.last_result = trainer.train(max_iterations=self.max_iterations)
        return self.last_result.best_classifier()
