"""The NeuroCuts training driver (Algorithm 1 + the PPO realisation of §5).

The trainer ties together the environment (tree rollouts with delayed
subtree rewards), the shared-trunk actor-critic network, and the PPO learner.
Each training iteration collects at least ``timesteps_per_batch`` decision
steps worth of rollouts, runs a PPO update, and tracks the best tree seen so
far under the configured time/space objective — the artifact the evaluation
section reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import BuildError
from repro.rules.ruleset import RuleSet
from repro.nn.model import ActorCriticMLP
from repro.rl.batch import SampleBatch
from repro.rl.policy import Policy
from repro.rl.ppo import PPOLearner, PPOStats
from repro.tree.lookup import TreeClassifier
from repro.tree.tree import DecisionTree
from repro.baselines.base import TreeBuilder
from repro.neurocuts.config import NeuroCutsConfig
from repro.neurocuts.env import NeuroCutsEnv, RolloutResult


@dataclass
class IterationStats:
    """Diagnostics for one training iteration (one PPO batch)."""

    iteration: int
    timesteps_total: int
    num_rollouts: int
    mean_reward: float
    best_objective: float
    best_time: float
    best_space: float
    policy_loss: float
    value_loss: float
    entropy: float
    kl: float
    wall_time_s: float

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)


@dataclass
class TrainingResult:
    """Outcome of a full NeuroCuts training run."""

    best_tree: DecisionTree
    best_objective: float
    best_time: float
    best_space: float
    history: List[IterationStats]
    timesteps_total: int

    def best_classifier(self) -> TreeClassifier:
        """The best tree wrapped as a deployable classifier."""
        return TreeClassifier(self.best_tree.ruleset, [self.best_tree])


class NeuroCutsTrainer:
    """Trains a NeuroCuts policy for one classifier and extracts its best tree."""

    def __init__(self, ruleset: RuleSet,
                 config: Optional[NeuroCutsConfig] = None) -> None:
        self.config = config or NeuroCutsConfig()
        self.ruleset = ruleset
        self.env = NeuroCutsEnv(ruleset, self.config)
        self.model = ActorCriticMLP(
            obs_size=self.env.observation_size,
            action_sizes=self.env.action_sizes,
            hidden_sizes=self.config.hidden_sizes,
            activation=self.config.activation,
            seed=self.config.seed,
        )
        self.policy = Policy(self.model, self.env.action_space.space,
                             seed=self.config.seed)
        self.learner = PPOLearner(self.model, self.config.ppo_config(),
                                  seed=self.config.seed)
        self.history: List[IterationStats] = []
        self._timesteps_total = 0
        #: Best rollout whose tree completed within the rollout budget.
        self._best_rollout: Optional[RolloutResult] = None
        #: Best rollout overall, including truncated trees (still valid
        #: classifiers — truncation only leaves oversized leaves behind).
        self._best_any: Optional[RolloutResult] = None

    # ------------------------------------------------------------------ #
    # Rollout collection
    # ------------------------------------------------------------------ #

    def collect_batch(self) -> tuple[SampleBatch, List[RolloutResult]]:
        """Run rollouts until the per-batch timestep budget is filled."""
        batches: List[SampleBatch] = []
        rollouts: List[RolloutResult] = []
        steps = 0
        while steps < self.config.timesteps_per_batch:
            result = self.env.rollout(self.policy)
            rollouts.append(result)
            steps += result.num_steps
            self._timesteps_total += result.num_steps
            if result.batch is not None:
                batches.append(result.batch)
            self._consider_best(result)
            if self._timesteps_total >= self.config.max_timesteps_total:
                break
        if not batches:
            raise BuildError("no experience collected; rollouts produced no steps")
        return SampleBatch.concat(batches), rollouts

    def _consider_best(self, result: RolloutResult) -> None:
        """Track the best complete (non-overflowing) tree seen so far."""
        if self._best_any is None or result.objective < self._best_any.objective:
            self._best_any = result
        if result.truncated and result.tree.has_overflowing_leaves():
            return
        if self._best_rollout is None or result.objective < self._best_rollout.objective:
            self._best_rollout = result

    # ------------------------------------------------------------------ #
    # Training loop
    # ------------------------------------------------------------------ #

    def train(self, max_iterations: Optional[int] = None) -> TrainingResult:
        """Run training until the timestep budget (or iteration cap) is hit."""
        iteration = len(self.history)
        stale_iterations = 0
        last_best = float("inf")
        while self._timesteps_total < self.config.max_timesteps_total:
            if max_iterations is not None and iteration >= max_iterations:
                break
            start = time.perf_counter()
            batch, rollouts = self.collect_batch()
            ppo_stats = self.learner.update(batch)
            iteration += 1
            stats = self._record_iteration(iteration, rollouts, ppo_stats,
                                           time.perf_counter() - start)
            if self.config.convergence_patience is not None:
                if stats.best_objective < last_best - 1e-9:
                    last_best = stats.best_objective
                    stale_iterations = 0
                else:
                    stale_iterations += 1
                    if stale_iterations >= self.config.convergence_patience:
                        break
        return self.result()

    def _record_iteration(self, iteration: int, rollouts: List[RolloutResult],
                          ppo_stats: PPOStats, wall_time: float) -> IterationStats:
        best = self._best_rollout or self._best_any
        stats = IterationStats(
            iteration=iteration,
            timesteps_total=self._timesteps_total,
            num_rollouts=len(rollouts),
            mean_reward=float(np.mean([r.root_reward.reward for r in rollouts])),
            best_objective=best.objective if best else float("inf"),
            best_time=best.root_reward.time if best else float("inf"),
            best_space=best.root_reward.space if best else float("inf"),
            policy_loss=ppo_stats.policy_loss,
            value_loss=ppo_stats.value_loss,
            entropy=ppo_stats.entropy,
            kl=ppo_stats.kl,
            wall_time_s=wall_time,
        )
        self.history.append(stats)
        return stats

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def result(self) -> TrainingResult:
        """Package the best tree found so far (training may continue after).

        Complete trees are preferred; if every rollout so far was truncated,
        the best truncated tree is returned (it is still a correct, if slow,
        classifier).
        """
        best = self._best_rollout or self._best_any
        if best is None:
            raise BuildError("train() has not produced any tree yet")
        return TrainingResult(
            best_tree=best.tree,
            best_objective=best.objective,
            best_time=best.root_reward.time,
            best_space=best.root_reward.space,
            history=list(self.history),
            timesteps_total=self._timesteps_total,
        )

    def sample_trees(self, count: int, deterministic: bool = False
                     ) -> List[DecisionTree]:
        """Draw trees from the current (stochastic) policy — Figure 6."""
        trees = []
        for _ in range(count):
            result = self.env.rollout(
                self.policy, deterministic=deterministic, collect_experience=False
            )
            trees.append(result.tree)
        return trees


class NeuroCutsBuilder(TreeBuilder):
    """Adapter exposing NeuroCuts through the common TreeBuilder interface.

    This is what the figure benchmarks use so NeuroCuts slots into the same
    comparison harness as the baseline heuristics.
    """

    name = "NeuroCuts"

    def __init__(self, config: Optional[NeuroCutsConfig] = None,
                 max_iterations: Optional[int] = None) -> None:
        self.config = config or NeuroCutsConfig()
        self.max_iterations = max_iterations
        self.last_result: Optional[TrainingResult] = None

    def build(self, ruleset: RuleSet) -> TreeClassifier:
        trainer = NeuroCutsTrainer(ruleset, self.config)
        self.last_result = trainer.train(max_iterations=self.max_iterations)
        return self.last_result.best_classifier()
