"""The NeuroCuts training driver (Algorithm 1 + the PPO realisation of §5).

The trainer is the *learner* of an actor/learner architecture (the paper's
Figure 7 scaling design).  Each iteration it broadcasts a flat snapshot of
the policy weights, scatters per-worker seeds and timestep budgets to
:class:`~repro.neurocuts.workers.RolloutWorker` shards running on a
backend-pluggable executor (serial in-process by default, a persistent
process pool for ``num_rollout_workers > 1``), gathers and concatenates the
experience shards, runs the PPO update centrally, and tracks the best tree
seen so far under the configured time/space objective — the artifact the
evaluation section reports.

Shard collection is a pure function of (weights, seed, budget), so for a
fixed configuration the serial backend and a one-worker process pool produce
byte-identical training histories.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.exceptions import BuildError, CheckpointError
from repro.rules.ruleset import RuleSet
from repro.nn.checkpoints import load_training_checkpoint, save_checkpoint
from repro.nn.model import ActorCriticMLP
from repro.rl.batch import SampleBatch
from repro.rl.policy import Policy
from repro.rl.ppo import PPOLearner, PPOStats
from repro.tree.lookup import TreeClassifier
from repro.tree.serialize import tree_from_dict, tree_to_dict
from repro.tree.tree import DecisionTree
from repro.baselines.base import TreeBuilder
from repro.executors import RolloutExecutor
from repro.neurocuts.config import NeuroCutsConfig
from repro.neurocuts.env import NeuroCutsEnv, RolloutResult
from repro.neurocuts.reward import RewardComponents
from repro.neurocuts.workers import (
    RolloutSummary,
    ShardRequest,
    _collect_shard,
    allocate_session,
    broadcast_weights,
    discard_session,
    make_rollout_executor,
    shard_budgets,
    shard_seeds,
)


@dataclass
class IterationStats:
    """Diagnostics for one training iteration (one PPO batch)."""

    iteration: int
    timesteps_total: int
    num_rollouts: int
    mean_reward: float
    best_objective: float
    best_time: float
    best_space: float
    policy_loss: float
    value_loss: float
    entropy: float
    kl: float
    wall_time_s: float

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)


@dataclass
class TrainingResult:
    """Outcome of a full NeuroCuts training run."""

    best_tree: DecisionTree
    best_objective: float
    best_time: float
    best_space: float
    history: List[IterationStats]
    timesteps_total: int

    def best_classifier(self) -> TreeClassifier:
        """The best tree wrapped as a deployable classifier."""
        return TreeClassifier(self.best_tree.ruleset, [self.best_tree])


class NeuroCutsTrainer:
    """Trains a NeuroCuts policy for one classifier and extracts its best tree.

    Args:
        ruleset: the classifier to learn a tree for.
        config: training configuration; ``config.num_rollout_workers``
            controls rollout sharding.
        executor: optional pre-built executor to collect shards on.  When
            omitted the trainer owns one sized from the config (serial for
            one worker, a persistent spawn pool otherwise) and tears it down
            in :meth:`close`.  Externally supplied executors are never shut
            down by the trainer; their worker processes bootstrap rollout
            state from the first request they serve.
        rollout_backend: override the backend choice ("serial" or
            "process") without touching the config — e.g. to force a
            one-worker process pool for determinism checks.
    """

    def __init__(self, ruleset: RuleSet,
                 config: Optional[NeuroCutsConfig] = None,
                 executor: Optional[RolloutExecutor] = None,
                 rollout_backend: Optional[str] = None) -> None:
        self.config = config or NeuroCutsConfig()
        self.ruleset = ruleset
        self.env = NeuroCutsEnv(ruleset, self.config)
        self.model = ActorCriticMLP(
            obs_size=self.env.observation_size,
            action_sizes=self.env.action_sizes,
            hidden_sizes=self.config.hidden_sizes,
            activation=self.config.activation,
            seed=self.config.seed,
        )
        self.policy = Policy(self.model, self.env.action_space.space,
                             seed=self.config.seed)
        self.learner = PPOLearner(self.model, self.config.ppo_config(),
                                  seed=self.config.seed)
        self.history: List[IterationStats] = []
        self._timesteps_total = 0
        #: Number of collection rounds run so far (seeds shards per round).
        self._collect_rounds = 0
        #: Convergence-patience state (persists across train() calls and
        #: checkpoint resumes).
        self._stale_iterations = 0
        self._last_best = float("inf")
        #: Best rollout whose tree completed within the rollout budget.
        self._best_rollout: Optional[RolloutResult] = None
        #: Best rollout overall, including truncated trees (still valid
        #: classifiers — truncation only leaves oversized leaves behind).
        self._best_any: Optional[RolloutResult] = None
        self._executor = executor
        self._owns_executor = executor is None
        self._session: Optional[int] = None
        #: True when worker state was installed by a pool initializer (so
        #: shard requests need not carry a bootstrap payload).
        self._session_initialized = False
        self._rollout_backend = rollout_backend

    # ------------------------------------------------------------------ #
    # Executor lifecycle
    # ------------------------------------------------------------------ #

    @property
    def num_rollout_workers(self) -> int:
        """How many rollout shards each batch is scattered over."""
        if self._executor is not None and not self._owns_executor:
            return self._executor.num_workers
        return self.config.num_rollout_workers

    def _ensure_executor(self) -> RolloutExecutor:
        if self._executor is None:
            self._executor, self._session = make_rollout_executor(
                self.ruleset, self.config, self.config.num_rollout_workers,
                backend=self._rollout_backend or self.config.rollout_backend,
            )
            self._session_initialized = True
        elif self._session is None:
            # External executor: its processes never ran our initializer, so
            # requests carry a bootstrap payload under a fresh session id.
            self._session = allocate_session()
        return self._executor

    def close(self) -> None:
        """Shut down the trainer-owned executor (idempotent).

        Externally supplied executors are left running — their owner decides
        when to release them.
        """
        # Serial sessions build their rollout worker in this process; drop
        # it so closed trainers do not accumulate env + model replicas.
        discard_session(self._session)
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        self._session = None
        self._session_initialized = False

    def __enter__(self) -> "NeuroCutsTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Rollout collection (the scatter/gather half of the learner loop)
    # ------------------------------------------------------------------ #

    def collect_batch(self) -> tuple[SampleBatch, List[RolloutSummary]]:
        """Collect one PPO batch worth of rollouts, sharded across workers.

        Broadcasts the current weights, scatters per-worker seeds and
        budgets, gathers the shards, folds their best-tree candidates into
        the global best tracking, and concatenates the experience.
        """
        executor = self._ensure_executor()
        remaining = self.config.max_timesteps_total - self._timesteps_total
        total_budget = max(1, min(self.config.timesteps_per_batch, remaining))
        num_workers = max(1, self.num_rollout_workers)
        budgets = shard_budgets(total_budget, num_workers)
        seeds = shard_seeds(self.config.seed, self._collect_rounds, num_workers)
        weights = broadcast_weights(self.model)
        # External executors never ran our initializer, so every request
        # carries a (ruleset, config) bootstrap payload.  It cannot be
        # dropped after a warm-up round: map() gives no process-affinity
        # guarantee, and another trainer sharing the executor may evict this
        # session's worker between rounds.  Trainer-owned executors (the
        # default) initialise eagerly and never pay this pickling cost.
        bootstrap = None if self._session_initialized \
            else (self.ruleset, self.config)
        requests = [
            ShardRequest(session=self._session, weights=weights, seed=seed,
                         budget=budget, bootstrap=bootstrap)
            for seed, budget in zip(seeds, budgets)
        ]
        shards = executor.map(_collect_shard, requests)
        self._collect_rounds += 1

        batches: List[SampleBatch] = []
        summaries: List[RolloutSummary] = []
        for shard in shards:
            self._timesteps_total += shard.num_steps
            summaries.extend(shard.summaries)
            if shard.batch is not None:
                batches.append(shard.batch)
            # Gather in worker order so tie-breaking (strict <, first wins)
            # matches a serial pass over the same rollout stream.
            if shard.best_any is not None:
                self._consider_best(shard.best_any)
            if shard.best_complete is not None:
                self._consider_best(shard.best_complete)
        if not batches:
            # Zero-step rollouts (a ruleset that fits one terminal leaf)
            # still report their tree through the best tracking above, so
            # train() can return the optimal tree instead of crashing.
            raise BuildError("no experience collected; rollouts produced no steps")
        return SampleBatch.concat(batches), summaries

    def _consider_best(self, result: RolloutResult) -> None:
        """Track the best complete (non-overflowing) tree seen so far."""
        if self._best_any is None or result.objective < self._best_any.objective:
            self._best_any = result
        if result.truncated and result.tree.has_overflowing_leaves():
            return
        if self._best_rollout is None or result.objective < self._best_rollout.objective:
            self._best_rollout = result

    # ------------------------------------------------------------------ #
    # Training loop
    # ------------------------------------------------------------------ #

    def train(self, max_iterations: Optional[int] = None) -> TrainingResult:
        """Run training until the timestep budget (or iteration cap) is hit.

        Convergence-patience counters live on the trainer (not this call),
        so repeated ``train`` calls — and checkpoint resumes — continue the
        same trajectory an uninterrupted run would follow.
        """
        iteration = len(self.history)
        while self._timesteps_total < self.config.max_timesteps_total:
            if max_iterations is not None and iteration >= max_iterations:
                break
            start = time.perf_counter()
            try:
                batch, summaries = self.collect_batch()
            except BuildError:
                if self._best_any is not None:
                    break  # nothing to learn (single-leaf tree): done
                raise
            ppo_stats = self.learner.update(batch)
            iteration += 1
            stats = self._record_iteration(iteration, summaries, ppo_stats,
                                           time.perf_counter() - start)
            if self.config.convergence_patience is not None:
                if stats.best_objective < self._last_best - 1e-9:
                    self._last_best = stats.best_objective
                    self._stale_iterations = 0
                else:
                    self._stale_iterations += 1
                    if self._stale_iterations >= self.config.convergence_patience:
                        break
        return self.result()

    def _record_iteration(self, iteration: int,
                          summaries: List[RolloutSummary],
                          ppo_stats: PPOStats, wall_time: float) -> IterationStats:
        best = self._best_rollout or self._best_any
        stats = IterationStats(
            iteration=iteration,
            timesteps_total=self._timesteps_total,
            num_rollouts=len(summaries),
            mean_reward=float(np.mean([s.reward for s in summaries])),
            best_objective=best.objective if best else float("inf"),
            best_time=best.root_reward.time if best else float("inf"),
            best_space=best.root_reward.space if best else float("inf"),
            policy_loss=ppo_stats.policy_loss,
            value_loss=ppo_stats.value_loss,
            entropy=ppo_stats.entropy,
            kl=ppo_stats.kl,
            wall_time_s=wall_time,
        )
        self.history.append(stats)
        return stats

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def result(self) -> TrainingResult:
        """Package the best tree found so far (training may continue after).

        Complete trees are preferred; if every rollout so far was truncated,
        the best truncated tree is returned (it is still a correct, if slow,
        classifier).
        """
        best = self._best_rollout or self._best_any
        if best is None:
            raise BuildError("train() has not produced any tree yet")
        return TrainingResult(
            best_tree=best.tree,
            best_objective=best.objective,
            best_time=best.root_reward.time,
            best_space=best.root_reward.space,
            history=list(self.history),
            timesteps_total=self._timesteps_total,
        )

    def sample_trees(self, count: int, deterministic: bool = False
                     ) -> List[DecisionTree]:
        """Draw trees from the current (stochastic) policy — Figure 6."""
        trees = []
        for _ in range(count):
            result = self.env.rollout(
                self.policy, deterministic=deterministic, collect_experience=False
            )
            trees.append(result.tree)
        return trees

    # ------------------------------------------------------------------ #
    # Checkpointing (exact resume of an interrupted run)
    # ------------------------------------------------------------------ #

    def save(self, path: Union[str, Path]) -> None:
        """Checkpoint model, optimiser, and learner state for exact resume.

        :meth:`restore` continues training with byte-identical trajectories:
        shard seeds derive from the persisted round counter, the PPO
        minibatch RNG state and adaptive KL coefficient are saved, and the
        best-tree records (trees included) survive the round trip.
        """
        trainer_state = {
            "config": {
                key: list(value) if isinstance(value, tuple) else value
                for key, value in dataclasses.asdict(self.config).items()
            },
            "timesteps_total": self._timesteps_total,
            "collect_rounds": self._collect_rounds,
            "stale_iterations": self._stale_iterations,
            "last_best": self._last_best if self._last_best != float("inf")
            else None,
            "kl_coeff": self.learner._kl_coeff,
            "learner_rng": self.learner._rng.bit_generator.state,
            "history": [stats.as_dict() for stats in self.history],
            "best_rollout": self._rollout_record(self._best_rollout),
            "best_any": self._rollout_record(self._best_any),
        }
        save_checkpoint(self.model, path, optimizer=self.learner.optimizer,
                        trainer_state=trainer_state)

    @staticmethod
    def _rollout_record(result: Optional[RolloutResult]) -> Optional[Dict]:
        if result is None:
            return None
        return {
            "tree": tree_to_dict(result.tree),
            "time": result.root_reward.time,
            "space": result.root_reward.space,
            "reward": result.root_reward.reward,
            "num_steps": result.num_steps,
            "truncated": result.truncated,
        }

    def _rollout_from_record(self, record: Optional[Dict]
                             ) -> Optional[RolloutResult]:
        if record is None:
            return None
        return RolloutResult(
            tree=tree_from_dict(record["tree"], self.ruleset),
            batch=None,
            root_reward=RewardComponents(
                time=record["time"], space=record["space"],
                reward=record["reward"],
            ),
            num_steps=record["num_steps"],
            truncated=record["truncated"],
        )

    @classmethod
    def restore(cls, path: Union[str, Path], ruleset: RuleSet,
                config: Optional[NeuroCutsConfig] = None,
                executor: Optional[RolloutExecutor] = None,
                rollout_backend: Optional[str] = None) -> "NeuroCutsTrainer":
        """Rebuild a trainer from :meth:`save` and continue exactly.

        The training configuration is restored from the checkpoint when
        ``config`` is omitted — that is the exact-resume path.  Passing a
        ``config`` overrides the saved one (e.g. to change the worker count
        on different hardware); overriding seed-relevant fields changes the
        continuation trajectory.
        """
        bundle = load_training_checkpoint(path)
        if bundle.trainer_state is None:
            raise CheckpointError(
                f"{path} is a model-only checkpoint; save it with "
                f"NeuroCutsTrainer.save() to resume training"
            )
        if config is None:
            saved = bundle.trainer_state.get("config")
            if saved is not None:
                config = NeuroCutsConfig(**{
                    key: tuple(value) if key == "hidden_sizes" else value
                    for key, value in saved.items()
                })
        trainer = cls(ruleset, config, executor=executor,
                      rollout_backend=rollout_backend)
        trainer.model.load_parameters(bundle.model.parameters())
        bundle.restore_optimizer(trainer.learner.optimizer)
        state = bundle.trainer_state
        trainer._timesteps_total = int(state["timesteps_total"])
        trainer._collect_rounds = int(state["collect_rounds"])
        trainer._stale_iterations = int(state.get("stale_iterations", 0))
        last_best = state.get("last_best")
        trainer._last_best = float("inf") if last_best is None else float(last_best)
        trainer.learner._kl_coeff = float(state["kl_coeff"])
        trainer.learner._rng.bit_generator.state = state["learner_rng"]
        trainer.history = [IterationStats(**stats) for stats in state["history"]]
        trainer._best_rollout = trainer._rollout_from_record(state["best_rollout"])
        trainer._best_any = trainer._rollout_from_record(state["best_any"])
        return trainer


class NeuroCutsBuilder(TreeBuilder):
    """Adapter exposing NeuroCuts through the common TreeBuilder interface.

    This is what the figure benchmarks use so NeuroCuts slots into the same
    comparison harness as the baseline heuristics.
    """

    name = "NeuroCuts"

    def __init__(self, config: Optional[NeuroCutsConfig] = None,
                 max_iterations: Optional[int] = None) -> None:
        self.config = config or NeuroCutsConfig()
        self.max_iterations = max_iterations
        self.last_result: Optional[TrainingResult] = None

    def build(self, ruleset: RuleSet) -> TreeClassifier:
        with NeuroCutsTrainer(ruleset, self.config) as trainer:
            self.last_result = trainer.train(max_iterations=self.max_iterations)
        return self.last_result.best_classifier()
