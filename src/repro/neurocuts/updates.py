"""Incremental classifier updates (Section 4.2, "Handling classifier updates").

Small updates do not retrain the policy: new rules are inserted into the
existing tree along every path whose box they intersect (respecting the
partition structure), and deleted rules are removed from the leaves that hold
them.  When updates accumulate past a threshold, the caller is told to
retrain (the paper's "re-runs training" case).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.rules.fields import DIMENSIONS
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet
from repro.tree.actions import EffiCutsPartitionAction, PartitionAction
from repro.tree.node import Node, efficuts_categories
from repro.tree.tree import DecisionTree


@dataclass
class UpdateStats:
    """Bookkeeping about updates applied to a live classifier."""

    rules_added: int = 0
    rules_removed: int = 0
    leaves_touched: int = 0

    @property
    def total_updates(self) -> int:
        return self.rules_added + self.rules_removed


class IncrementalUpdater:
    """Applies rule insertions/removals to an already-built decision tree."""

    def __init__(self, tree: DecisionTree, retrain_threshold: int = 100) -> None:
        self.tree = tree
        self.retrain_threshold = retrain_threshold
        self.stats = UpdateStats()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def add_rule(self, rule: Rule) -> int:
        """Insert a rule into every leaf whose region it intersects.

        Returns the number of leaves the rule was added to.
        """
        touched = self._insert(self.tree.root, rule)
        if touched:
            self.tree.ruleset = self.tree.ruleset.with_rules_added([rule])
            if rule not in self.tree.root.rules:
                self.tree.root.rules.append(rule)
            self.stats.rules_added += 1
            self.stats.leaves_touched += touched
            self.tree.mark_modified()
        return touched

    def remove_rule(self, rule: Rule) -> int:
        """Remove a rule from every leaf holding it.

        Returns the number of leaves the rule was removed from.
        """
        touched = 0
        for node in self.tree.nodes():
            if rule in node.rules:
                node.rules.remove(rule)
                if node.is_leaf:
                    touched += 1
        if touched or rule in self.tree.ruleset.rules:
            self.tree.ruleset = self.tree.ruleset.with_rules_removed([rule])
            self.stats.rules_removed += 1
            self.stats.leaves_touched += touched
            self.tree.mark_modified()
        return touched

    def needs_retraining(self) -> bool:
        """True once enough updates accumulated that retraining is advised."""
        return self.stats.total_updates >= self.retrain_threshold

    # ------------------------------------------------------------------ #
    # Insertion routing
    # ------------------------------------------------------------------ #

    def _insert(self, node: Node, rule: Rule) -> int:
        if not rule.intersects(node.ranges):
            return 0
        if node.is_leaf:
            if rule not in node.rules:
                node.rules.append(rule)
                node.rules.sort(key=lambda r: -r.priority)
            return 1
        touched = 0
        if isinstance(node.action, PartitionAction):
            coverage = rule.coverage_fraction(node.action.dimension)
            # Children were created in (small, large) order.
            target = node.children[1] if coverage > node.action.threshold \
                else node.children[0]
            touched += self._insert(target, rule)
        elif isinstance(node.action, EffiCutsPartitionAction):
            mask = 0
            for dim in DIMENSIONS:
                if rule.coverage_fraction(dim) > node.action.largeness_threshold:
                    mask |= 1 << int(dim)
            target = self._efficuts_child(node, mask)
            touched += self._insert(target, rule)
        else:
            for child in node.children:
                touched += self._insert(child, rule)
        if touched and rule not in node.rules:
            node.rules.append(rule)
            node.rules.sort(key=lambda r: -r.priority)
        return touched

    def _efficuts_child(self, node: Node, mask: int) -> Node:
        """Pick the partition child whose category matches (or is closest to)
        the rule's largeness mask."""
        exact = [c for c in node.children if c.efficuts_category == mask]
        if exact:
            return exact[0]
        # No exact category (it was empty at build time): use the child with
        # the closest mask so the rule still lands in exactly one tree.
        return min(
            node.children,
            key=lambda c: bin((c.efficuts_category or 0) ^ mask).count("1"),
        )
