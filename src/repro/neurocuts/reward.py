"""Reward computation for NeuroCuts (Algorithm 1, lines 16–17).

The return assigned to the decision taken at node ``s`` is::

    R = -(c * f(Time(s)) + (1 - c) * f(Space(s) - d(c) * Floor(s)))

where ``Time(s)`` and ``Space(s)`` are the classification time and memory
footprint of the completed subtree rooted at ``s`` (Eqs. 1–4), ``c`` is the
time-space coefficient, and ``f`` is the reward scaling function (identity
or logarithm).  Rewards are computed only once the tree rollout is complete
— the "delayed reward" structure the paper highlights — and every recorded
1-step decision receives the reward of its own subtree, which is what makes
the per-node decisions align with the global objective (Eq. 5).

``Floor(s)`` is the irreducible cost of storing each of the node's rules
exactly once (``RULE_POINTER_BYTES * num_rules``).  No action can reduce
that floor — it is paid by every correct classifier, including a plain
linear scan — so charging it to a decision only injects the node's rule
count into the return as noise the value baseline cannot explain (the
observation encodes the node's box, not its rule list).  In the
space-optimised regime (``c -> 0``) — where no time term disciplines the
tree and the raw-space reward demonstrably fails to learn — the reward
therefore charges only the controllable *excess*: replication plus
structural bytes.  That keeps returns comparable across nodes at every
depth, ranks complete trees exactly as raw ``Space`` does at the root (the
floor is a per-rollout constant there), and is what makes memory actually
shrink as ``c`` approaches 0 (Figure 11).

Subtracting a constant floor also *amplifies* the space term's relative
spread, so applying it in mixed regimes would silently re-weight the
blended objective toward space (observed as Figure 10's time parity
breaking at ``c = 0.5``).  The floor discount ``d(c) = max(0, 1 - 2c)``
therefore fades the correction out linearly, reaching the paper's raw-space
reward by ``c = 0.5``: pure-space training gets the fix, blended training
keeps the paper's balance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict

from repro.exceptions import ConfigError
from repro.tree.node import Node
from repro.tree.stats import RULE_POINTER_BYTES, subtree_space, subtree_time
from repro.neurocuts.config import NeuroCutsConfig


def linear_scaling(value: float) -> float:
    """Identity reward scaling, f(x) = x."""
    return float(value)


def log_scaling(value: float) -> float:
    """Logarithmic reward scaling, f(x) = log(x); used when mixing objectives."""
    return math.log(max(1.0, float(value)))


SCALING_FUNCTIONS: Dict[str, Callable[[float], float]] = {
    "linear": linear_scaling,
    "log": log_scaling,
}


def floor_discount(coefficient: float) -> float:
    """How much of the rule-storage floor the space reward excludes.

    ``d(c) = max(0, 1 - 2c)``: full exclusion in the pure-space regime,
    linearly fading to the paper's raw-space reward by ``c = 0.5``.
    """
    return max(0.0, 1.0 - 2.0 * coefficient)


def space_excess(space: float, num_rules: int,
                 discount: float = 1.0) -> float:
    """The controllable part of a subtree's memory footprint.

    Subtracts ``discount`` times the irreducible ``RULE_POINTER_BYTES`` per
    rule of the subtree's root, clamping at 1 so logarithmic scaling stays
    defined.  ``discount = 1`` charges pure excess (the space-only regime);
    ``discount = 0`` charges raw space.
    """
    floor = RULE_POINTER_BYTES * max(0, num_rules)
    return max(1.0, float(space) - discount * floor)


@dataclass(frozen=True)
class RewardComponents:
    """The raw and combined reward terms for one subtree."""

    time: float
    space: float
    reward: float


class RewardCalculator:
    """Computes subtree rewards according to a NeuroCuts configuration."""

    def __init__(self, config: NeuroCutsConfig) -> None:
        if config.reward_scaling not in SCALING_FUNCTIONS:
            raise ConfigError(f"unknown reward scaling {config.reward_scaling!r}")
        self.coefficient = config.time_space_coeff
        self.scaling = SCALING_FUNCTIONS[config.reward_scaling]

    def subtree_reward(self, node: Node) -> RewardComponents:
        """Reward of the completed subtree rooted at ``node``.

        ``RewardComponents.space`` reports the raw subtree footprint (what
        the evaluation tabulates); the combined reward charges only the
        excess over the node's irreducible rule storage.
        """
        time = float(subtree_time(node))
        space = float(subtree_space(node))
        return self.combine(time, space, num_rules=node.num_rules)

    def combine(self, time: float, space: float,
                num_rules: int = 0) -> RewardComponents:
        """Combine raw time/space into the scalar reward.

        ``num_rules`` is the rule count whose storage floor is excluded from
        the space term; 0 leaves the space term unreduced.
        """
        c = self.coefficient
        reward = -(
            c * self.scaling(time)
            + (1.0 - c) * self.scaling(
                space_excess(space, num_rules, discount=floor_discount(c))
            )
        )
        return RewardComponents(time=time, space=space, reward=reward)

    def objective(self, time: float, space: float, num_rules: int = 0) -> float:
        """The minimisation objective (the negation of the reward)."""
        return -self.combine(time, space, num_rules=num_rules).reward
