"""Reward computation for NeuroCuts (Algorithm 1, lines 16–17).

The return assigned to the decision taken at node ``s`` is::

    R = -(c * f(Time(s)) + (1 - c) * f(Space(s)))

where ``Time(s)`` and ``Space(s)`` are the classification time and memory
footprint of the completed subtree rooted at ``s`` (Eqs. 1–4), ``c`` is the
time-space coefficient, and ``f`` is the reward scaling function (identity or
logarithm).  Rewards are computed only once the tree rollout is complete —
the "delayed reward" structure the paper highlights — and every recorded
1-step decision receives the reward of its own subtree, which is what makes
the per-node decisions align with the global objective (Eq. 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict

from repro.exceptions import ConfigError
from repro.tree.node import Node
from repro.tree.stats import subtree_space, subtree_time
from repro.neurocuts.config import NeuroCutsConfig


def linear_scaling(value: float) -> float:
    """Identity reward scaling, f(x) = x."""
    return float(value)


def log_scaling(value: float) -> float:
    """Logarithmic reward scaling, f(x) = log(x); used when mixing objectives."""
    return math.log(max(1.0, float(value)))


SCALING_FUNCTIONS: Dict[str, Callable[[float], float]] = {
    "linear": linear_scaling,
    "log": log_scaling,
}


@dataclass(frozen=True)
class RewardComponents:
    """The raw and combined reward terms for one subtree."""

    time: float
    space: float
    reward: float


class RewardCalculator:
    """Computes subtree rewards according to a NeuroCuts configuration."""

    def __init__(self, config: NeuroCutsConfig) -> None:
        if config.reward_scaling not in SCALING_FUNCTIONS:
            raise ConfigError(f"unknown reward scaling {config.reward_scaling!r}")
        self.coefficient = config.time_space_coeff
        self.scaling = SCALING_FUNCTIONS[config.reward_scaling]

    def subtree_reward(self, node: Node) -> RewardComponents:
        """Reward of the completed subtree rooted at ``node``."""
        time = float(subtree_time(node))
        space = float(subtree_space(node))
        return self.combine(time, space)

    def combine(self, time: float, space: float) -> RewardComponents:
        """Combine raw time/space into the scalar reward."""
        c = self.coefficient
        reward = -(c * self.scaling(time) + (1.0 - c) * self.scaling(space))
        return RewardComponents(time=time, space=space, reward=reward)

    def objective(self, time: float, space: float) -> float:
        """The minimisation objective (the negation of the reward)."""
        return -self.combine(time, space).reward
