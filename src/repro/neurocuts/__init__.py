"""NeuroCuts: the paper's core contribution, built on the RL and tree substrates."""

from repro.neurocuts.config import (
    NeuroCutsConfig,
    PARTITION_MODES,
    REWARD_MODES,
    REWARD_SCALING,
    ROLLOUT_BACKENDS,
)
from repro.neurocuts.action_space import (
    ActionSpec,
    NeuroCutsActionSpace,
    SIMPLE_PARTITION_THRESHOLDS,
)
from repro.neurocuts.observation import (
    NUM_EFFICUTS_CATEGORIES,
    ObservationEncoder,
    binary_encode,
    one_hot,
)
from repro.neurocuts.reward import (
    RewardCalculator,
    RewardComponents,
    SCALING_FUNCTIONS,
    floor_discount,
    linear_scaling,
    log_scaling,
    space_excess,
)
from repro.neurocuts.env import NeuroCutsEnv, RolloutResult
from repro.neurocuts.workers import (
    RolloutShard,
    RolloutSummary,
    RolloutWorker,
    ShardRequest,
    make_rollout_executor,
    shard_budgets,
    shard_seeds,
)
from repro.neurocuts.trainer import (
    IterationStats,
    NeuroCutsBuilder,
    NeuroCutsTrainer,
    TrainingResult,
)
from repro.neurocuts.service import (
    RetrainRequest,
    RetrainResponse,
    default_retrain_config,
    run_retrain,
)
from repro.neurocuts.updates import IncrementalUpdater, UpdateStats
from repro.neurocuts.visualize import (
    LevelProfile,
    TreeProfile,
    compare_profiles,
    profile_tree,
    render_profile,
)

__all__ = [
    "NeuroCutsConfig",
    "PARTITION_MODES",
    "REWARD_MODES",
    "REWARD_SCALING",
    "ActionSpec",
    "NeuroCutsActionSpace",
    "SIMPLE_PARTITION_THRESHOLDS",
    "NUM_EFFICUTS_CATEGORIES",
    "ObservationEncoder",
    "binary_encode",
    "one_hot",
    "RewardCalculator",
    "RewardComponents",
    "SCALING_FUNCTIONS",
    "linear_scaling",
    "floor_discount",
    "log_scaling",
    "space_excess",
    "NeuroCutsEnv",
    "RolloutResult",
    "ROLLOUT_BACKENDS",
    "RolloutShard",
    "RolloutSummary",
    "RolloutWorker",
    "ShardRequest",
    "make_rollout_executor",
    "shard_budgets",
    "shard_seeds",
    "IterationStats",
    "NeuroCutsBuilder",
    "NeuroCutsTrainer",
    "TrainingResult",
    "RetrainRequest",
    "RetrainResponse",
    "default_retrain_config",
    "run_retrain",
    "IncrementalUpdater",
    "UpdateStats",
    "LevelProfile",
    "TreeProfile",
    "compare_profiles",
    "profile_tree",
    "render_profile",
]
