"""Trainer-as-a-service: NeuroCuts retrains as self-contained tasks.

The serving layer's retrain loop (Section 4.2's "re-runs training" case)
needs to run a whole NeuroCuts training job *behind* the live path — on a
background thread, on a process pool, or inline for deterministic tests.
This module packages one training run as a pure task: a picklable
:class:`RetrainRequest` in, a picklable :class:`RetrainResponse` out, with
:func:`run_retrain` as the module-level entrypoint any
:class:`repro.executors.RolloutExecutor` backend can execute.

The response carries the best tree in its serialised (dict) form rather
than as live ``Node`` objects, so the same payload crosses process
boundaries and thread boundaries identically; callers rebuild it against
the ruleset snapshot the request was made from (:meth:`RetrainResponse.classifier`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.neurocuts.config import NeuroCutsConfig
from repro.neurocuts.trainer import NeuroCutsTrainer
from repro.rules.ruleset import RuleSet
from repro.tree.lookup import TreeClassifier
from repro.tree.serialize import tree_from_dict, tree_to_dict


def default_retrain_config(timesteps: int = 3_000,
                           rollout_workers: int = 1,
                           seed: int = 0,
                           **overrides) -> NeuroCutsConfig:
    """A training configuration sized for *serving-loop* retrains.

    Retrains triggered by rule churn trade ultimate tree quality for
    turnaround: a small policy network and a tight timestep budget so the
    new tree lands while the workload that triggered it is still relevant.
    ``rollout_workers`` shards collection across a ``repro.executors`` pool
    exactly as offline training does.
    """
    defaults = dict(
        hidden_sizes=(64, 64),
        max_timesteps_total=timesteps,
        timesteps_per_batch=max(200, timesteps // 6),
        max_timesteps_per_rollout=400,
        max_tree_depth=40,
        num_sgd_iters=5,
        sgd_minibatch_size=128,
        learning_rate=3e-4,
        convergence_patience=4,
        num_rollout_workers=rollout_workers,
        seed=seed,
    )
    defaults.update(overrides)
    return NeuroCutsConfig(**defaults)


@dataclass(frozen=True)
class RetrainRequest:
    """One retrain job: (who, what ruleset snapshot, how to train).

    Attributes:
        tenant_id: opaque caller tag, echoed back in the response so a
            controller juggling several jobs can route completions.
        ruleset: the ruleset snapshot to train against.  The resulting tree
            is exact for *this* snapshot; updates that land while the job
            runs must be replayed by the caller on installation.
        config: full training configuration (see
            :func:`default_retrain_config` for serving-sized defaults).
        max_iterations: optional cap on PPO iterations (handy in tests).
    """

    tenant_id: str
    ruleset: RuleSet
    config: NeuroCutsConfig
    max_iterations: Optional[int] = None


@dataclass
class RetrainResponse:
    """Outcome of one retrain job, in fully picklable form."""

    tenant_id: str
    #: The best tree found, serialised with :func:`repro.tree.serialize.tree_to_dict`.
    tree_dict: Dict = field(repr=False)
    best_objective: float = 0.0
    timesteps_total: int = 0
    iterations: int = 0
    wall_seconds: float = 0.0

    def classifier(self, ruleset: RuleSet) -> TreeClassifier:
        """Rebuild the trained tree against the request's ruleset snapshot.

        ``ruleset`` must be the snapshot the request carried (trees
        reference rules by priority, which is only meaningful within the
        ruleset they were trained on).
        """
        tree = tree_from_dict(self.tree_dict, ruleset)
        return TreeClassifier(ruleset, [tree], name=f"retrain-{self.tenant_id}")


def run_retrain(request: RetrainRequest) -> RetrainResponse:
    """Execute one retrain job (the executor-facing task function).

    Runs a complete NeuroCuts training session on the request's ruleset
    snapshot and returns the best tree found.  Pure with respect to the
    request — no shared state — so it behaves identically on the serial,
    thread, and process executor backends.
    """
    started = time.perf_counter()
    with NeuroCutsTrainer(request.ruleset, request.config) as trainer:
        result = trainer.train(max_iterations=request.max_iterations)
    return RetrainResponse(
        tenant_id=request.tenant_id,
        tree_dict=tree_to_dict(result.best_tree),
        best_objective=result.best_objective,
        timesteps_total=result.timesteps_total,
        iterations=len(result.history),
        wall_seconds=time.perf_counter() - started,
    )
