"""NeuroCuts observation encoding (Appendix A).

The agent never sees the rest of the tree — only a fixed-length encoding of
the node it must act on:

* for every dimension, the node's range boundaries as binary strings
  (``BinaryString(range_min) + BinaryString(range_max)``);
* for every dimension, one-hot encodings of the partition state
  (``OneHot(partition_min) + OneHot(partition_max)`` over the discrete
  coverage levels);
* a one-hot encoding of the node's EffiCuts partition category; and
* the action mask, flattened.

The exact bit count differs slightly from the paper's 278 (the paper packs
the same information with a shared mask layout); the encoder reports its
size via :attr:`ObservationEncoder.size` and everything downstream adapts.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.rules.fields import DIMENSIONS, FIELD_BITS, Dimension
from repro.rl.spaces import Box
from repro.tree.actions import PARTITION_LEVELS
from repro.tree.node import Node
from repro.neurocuts.action_space import NeuroCutsActionSpace

#: Number of EffiCuts categories (one per subset of the five dimensions).
NUM_EFFICUTS_CATEGORIES = 1 << len(DIMENSIONS)


def binary_encode(value: int, bits: int) -> np.ndarray:
    """Encode an unsigned integer as a most-significant-bit-first bit vector."""
    if value < 0 or value >= (1 << bits):
        raise ValueError(f"value {value} does not fit in {bits} bits")
    return np.array(
        [(value >> shift) & 1 for shift in range(bits - 1, -1, -1)],
        dtype=np.float64,
    )


def one_hot(index: int, size: int) -> np.ndarray:
    """Standard one-hot vector."""
    if not 0 <= index < size:
        raise ValueError(f"one-hot index {index} out of range [0, {size})")
    vec = np.zeros(size, dtype=np.float64)
    vec[index] = 1.0
    return vec


class ObservationEncoder:
    """Encodes a tree node into the fixed-length NeuroCuts observation."""

    def __init__(self, action_space: NeuroCutsActionSpace) -> None:
        self.action_space = action_space
        self._range_bits = sum(2 * FIELD_BITS[d] for d in DIMENSIONS)
        self._partition_bits = 2 * len(PARTITION_LEVELS) * len(DIMENSIONS)
        self._efficuts_bits = NUM_EFFICUTS_CATEGORIES
        self._mask_bits = sum(action_space.space.sizes)
        self.size = (
            self._range_bits
            + self._partition_bits
            + self._efficuts_bits
            + self._mask_bits
        )
        self.space = Box(low=0.0, high=1.0, shape=(self.size,))

    def encode(self, node: Node,
               masks: Tuple[np.ndarray, np.ndarray] | None = None) -> np.ndarray:
        """Encode one node (and the masks in force at it) as a flat vector."""
        if masks is None:
            masks = self.action_space.masks_for_node(node)
        parts = []
        # Range boundaries per dimension.  The range maximum is encoded as
        # hi - 1 so the full field range still fits in the field's bit width.
        for dim in DIMENSIONS:
            lo, hi = node.range_for(dim)
            bits = FIELD_BITS[dim]
            parts.append(binary_encode(lo, bits))
            parts.append(binary_encode(hi - 1, bits))
        # Partition state per dimension.
        for dim in DIMENSIONS:
            lo_level, hi_level = node.partition_state[int(dim)]
            parts.append(one_hot(lo_level, len(PARTITION_LEVELS)))
            parts.append(one_hot(hi_level, len(PARTITION_LEVELS)))
        # EffiCuts category (category 0 also covers "no partition applied").
        category = node.efficuts_category if node.efficuts_category is not None else 0
        parts.append(one_hot(category, NUM_EFFICUTS_CATEGORIES))
        # Flattened action mask.
        dim_mask, act_mask = masks
        parts.append(np.asarray(dim_mask, dtype=np.float64))
        parts.append(np.asarray(act_mask, dtype=np.float64))
        obs = np.concatenate(parts)
        if obs.shape[0] != self.size:
            raise AssertionError(
                f"observation has {obs.shape[0]} entries, expected {self.size}"
            )
        return obs

    def describe(self) -> str:
        """Breakdown of the observation layout."""
        return (
            f"Box(low=0, high=1, shape=({self.size},)) = "
            f"{self._range_bits} range bits + {self._partition_bits} partition bits "
            f"+ {self._efficuts_bits} EffiCuts-category bits + "
            f"{self._mask_bits} action-mask bits"
        )
