"""Seed parameter families for the ClassBench-style generator.

The real ClassBench tool ships twelve seed files derived from production
classifiers: five access-control lists (``acl1``–``acl5``), five firewalls
(``fw1``–``fw5``) and two IP-chain sets (``ipc1``–``ipc2``).  The seeds we
cannot redistribute, so this module encodes the *structural* characteristics
the literature reports for each family — prefix-length distributions, port
range classes, protocol mix and wildcard density — as parameter objects the
synthetic generator consumes.

What matters for reproducing NeuroCuts is that the three families stress
decision-tree builders differently:

* **acl** rules are mostly exact or long-prefix IP pairs with specific
  destination ports — they cut cleanly and produce shallow trees.
* **fw** rules contain many wildcarded source fields and large port ranges —
  they replicate heavily under naive cutting (the hard case in Figure 5).
* **ipc** rules sit in between, with moderate wildcarding on both IPs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class PortDistribution:
    """Distribution over port-range classes for one port dimension.

    Each weight selects one of the standard ClassBench port classes:

    * ``wildcard`` — the full range [0, 65536).
    * ``ephemeral`` — the high range [1024, 65536).
    * ``well_known`` — the low range [0, 1024).
    * ``exact`` — a single port drawn from a small set of popular services.
    * ``arbitrary`` — a random contiguous range.
    """

    wildcard: float
    ephemeral: float
    well_known: float
    exact: float
    arbitrary: float

    def weights(self) -> List[float]:
        """Return the class weights in canonical order."""
        return [self.wildcard, self.ephemeral, self.well_known,
                self.exact, self.arbitrary]


@dataclass(frozen=True)
class PrefixDistribution:
    """Distribution over prefix lengths for one IP dimension.

    ``length_weights`` maps prefix length -> relative weight.  A weight on
    length 0 produces wildcard addresses.  Nesting depth controls how many
    distinct subtrees of the address space the family concentrates rules in,
    which controls rule overlap.
    """

    length_weights: Dict[int, float]
    num_subnets: int = 16

    def lengths(self) -> List[int]:
        return sorted(self.length_weights)

    def weights(self) -> List[float]:
        return [self.length_weights[k] for k in self.lengths()]


@dataclass(frozen=True)
class SeedParameters:
    """All generation parameters for one ClassBench seed family."""

    name: str
    family: str
    src_prefix: PrefixDistribution
    dst_prefix: PrefixDistribution
    src_port: PortDistribution
    dst_port: PortDistribution
    #: Weight of each protocol value; 256 means "wildcard protocol".
    protocol_weights: Dict[int, float] = field(default_factory=dict)
    #: Fraction of rules duplicated with only priority differences removed.
    redundancy: float = 0.0

    def describe(self) -> str:
        """One-line human readable description."""
        return f"{self.name} ({self.family} family)"


#: Sentinel protocol key meaning "any protocol".
PROTO_WILDCARD = 256

_TCP, _UDP, _ICMP = 6, 17, 1


def _acl_seed(name: str, subnets: int, dst_exact_bias: float) -> SeedParameters:
    """ACL-style: long prefixes, specific destination ports, little wildcard."""
    return SeedParameters(
        name=name,
        family="acl",
        src_prefix=PrefixDistribution(
            {0: 0.08, 8: 0.05, 16: 0.17, 24: 0.40, 32: 0.30},
            num_subnets=subnets,
        ),
        dst_prefix=PrefixDistribution(
            {0: 0.02, 16: 0.13, 24: 0.45, 28: 0.15, 32: 0.25},
            num_subnets=subnets,
        ),
        src_port=PortDistribution(
            wildcard=0.85, ephemeral=0.07, well_known=0.03,
            exact=0.03, arbitrary=0.02,
        ),
        dst_port=PortDistribution(
            wildcard=0.15, ephemeral=0.05, well_known=0.10,
            exact=dst_exact_bias, arbitrary=1.0 - 0.30 - dst_exact_bias,
        ),
        protocol_weights={_TCP: 0.62, _UDP: 0.25, _ICMP: 0.05, PROTO_WILDCARD: 0.08},
    )


def _fw_seed(name: str, wildcard_bias: float, subnets: int) -> SeedParameters:
    """Firewall-style: heavy source wildcarding and broad port ranges."""
    return SeedParameters(
        name=name,
        family="fw",
        src_prefix=PrefixDistribution(
            {0: wildcard_bias, 8: 0.10, 16: 0.18,
             24: max(0.0, 0.50 - wildcard_bias), 32: 0.22},
            num_subnets=subnets,
        ),
        dst_prefix=PrefixDistribution(
            {0: wildcard_bias / 2, 8: 0.08, 16: 0.22, 24: 0.35,
             32: max(0.0, 0.35 - wildcard_bias / 2)},
            num_subnets=subnets,
        ),
        src_port=PortDistribution(
            wildcard=0.70, ephemeral=0.18, well_known=0.04,
            exact=0.04, arbitrary=0.04,
        ),
        dst_port=PortDistribution(
            wildcard=0.35, ephemeral=0.15, well_known=0.12,
            exact=0.28, arbitrary=0.10,
        ),
        protocol_weights={_TCP: 0.50, _UDP: 0.28, _ICMP: 0.07, PROTO_WILDCARD: 0.15},
    )


def _ipc_seed(name: str, subnets: int) -> SeedParameters:
    """IP-chain style: moderate wildcarding on both address dimensions."""
    return SeedParameters(
        name=name,
        family="ipc",
        src_prefix=PrefixDistribution(
            {0: 0.15, 8: 0.08, 16: 0.25, 24: 0.32, 32: 0.20},
            num_subnets=subnets,
        ),
        dst_prefix=PrefixDistribution(
            {0: 0.10, 8: 0.07, 16: 0.28, 24: 0.35, 32: 0.20},
            num_subnets=subnets,
        ),
        src_port=PortDistribution(
            wildcard=0.78, ephemeral=0.10, well_known=0.04,
            exact=0.05, arbitrary=0.03,
        ),
        dst_port=PortDistribution(
            wildcard=0.30, ephemeral=0.12, well_known=0.13,
            exact=0.35, arbitrary=0.10,
        ),
        protocol_weights={_TCP: 0.55, _UDP: 0.27, _ICMP: 0.06, PROTO_WILDCARD: 0.12},
    )


#: The twelve ClassBench seed families used by the paper's 36-classifier suite.
SEEDS: Dict[str, SeedParameters] = {
    "acl1": _acl_seed("acl1", subnets=24, dst_exact_bias=0.55),
    "acl2": _acl_seed("acl2", subnets=16, dst_exact_bias=0.45),
    "acl3": _acl_seed("acl3", subnets=32, dst_exact_bias=0.50),
    "acl4": _acl_seed("acl4", subnets=20, dst_exact_bias=0.40),
    "acl5": _acl_seed("acl5", subnets=12, dst_exact_bias=0.60),
    "fw1": _fw_seed("fw1", wildcard_bias=0.30, subnets=12),
    "fw2": _fw_seed("fw2", wildcard_bias=0.25, subnets=16),
    "fw3": _fw_seed("fw3", wildcard_bias=0.35, subnets=10),
    "fw4": _fw_seed("fw4", wildcard_bias=0.40, subnets=8),
    "fw5": _fw_seed("fw5", wildcard_bias=0.45, subnets=8),
    "ipc1": _ipc_seed("ipc1", subnets=20),
    "ipc2": _ipc_seed("ipc2", subnets=14),
}

#: Seed names grouped by family.
FAMILIES: Dict[str, Tuple[str, ...]] = {
    "acl": ("acl1", "acl2", "acl3", "acl4", "acl5"),
    "fw": ("fw1", "fw2", "fw3", "fw4", "fw5"),
    "ipc": ("ipc1", "ipc2"),
}


def get_seed(name: str) -> SeedParameters:
    """Look up a seed family by name (e.g. ``"acl1"``)."""
    try:
        return SEEDS[name]
    except KeyError:
        raise KeyError(
            f"unknown ClassBench seed {name!r}; available: {sorted(SEEDS)}"
        ) from None


def seed_names() -> Sequence[str]:
    """All seed names in canonical (paper Figure 8) order."""
    return tuple(SEEDS)
