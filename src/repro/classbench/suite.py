"""The 36-classifier ClassBench suite used in the paper's evaluation.

Figures 8 and 9 evaluate over 36 classifiers: the 12 seed families (acl1–5,
fw1–5, ipc1–2) at three sizes (1k, 10k, 100k rules).  This module names and
materialises that suite.  Because this reproduction runs on CPU-scale
budgets, the suite can be generated at its paper sizes or at scaled-down
sizes (the default for tests and benchmarks) while keeping the same 36
(family, scale) labels so figure scripts produce the same rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.classbench.generator import generate_classifier
from repro.classbench.seeds import FAMILIES, seed_names
from repro.rules.ruleset import RuleSet

#: The three scales used by the paper, in rules.
PAPER_SCALES: Tuple[str, ...] = ("1k", "10k", "100k")

#: Number of rules each scale label maps to at full paper size.
PAPER_SCALE_SIZES: Dict[str, int] = {"1k": 1000, "10k": 10_000, "100k": 100_000}

#: Scaled-down sizes used by default in CI-scale benchmarks.
DEFAULT_SCALE_SIZES: Dict[str, int] = {"1k": 100, "10k": 300, "100k": 600}


@dataclass(frozen=True)
class ClassifierSpec:
    """One entry of the 36-classifier suite."""

    seed_name: str
    scale: str
    num_rules: int
    seed: int = 0

    @property
    def label(self) -> str:
        """Label matching the paper's x-axis, e.g. ``"acl1_1k"``."""
        return f"{self.seed_name}_{self.scale}"

    def materialize(self) -> RuleSet:
        """Generate the classifier for this spec."""
        return generate_classifier(
            self.seed_name, self.num_rules, seed=self.seed, name=self.label
        )


def suite_specs(scale_sizes: Optional[Dict[str, int]] = None,
                scales: Optional[Tuple[str, ...]] = None,
                families: Optional[Tuple[str, ...]] = None,
                seed: int = 0) -> List[ClassifierSpec]:
    """Enumerate the suite's classifier specs.

    Args:
        scale_sizes: mapping scale label -> rule count.  Defaults to the
            scaled-down sizes; pass :data:`PAPER_SCALE_SIZES` for full size.
        scales: which scale labels to include (default: all three).
        families: which seed families to include (default: all twelve).
        seed: base RNG seed.
    """
    scale_sizes = scale_sizes or DEFAULT_SCALE_SIZES
    scales = scales or PAPER_SCALES
    families = families or tuple(seed_names())
    specs = []
    for scale in scales:
        for family in families:
            specs.append(
                ClassifierSpec(
                    seed_name=family,
                    scale=scale,
                    num_rules=scale_sizes[scale],
                    seed=seed,
                )
            )
    return specs


def materialize_suite(specs: Optional[List[ClassifierSpec]] = None
                      ) -> Dict[str, RuleSet]:
    """Generate every classifier in the suite, keyed by its label."""
    specs = specs if specs is not None else suite_specs()
    return {spec.label: spec.materialize() for spec in specs}


def iter_suite(specs: Optional[List[ClassifierSpec]] = None
               ) -> Iterator[Tuple[str, RuleSet]]:
    """Lazily yield (label, classifier) pairs for the suite."""
    specs = specs if specs is not None else suite_specs()
    for spec in specs:
        yield spec.label, spec.materialize()


def family_of(label: str) -> str:
    """Return the family ("acl", "fw", "ipc") for a suite label."""
    for family, members in FAMILIES.items():
        if any(label.startswith(member) for member in members):
            return family
    raise KeyError(f"unknown suite label: {label!r}")
