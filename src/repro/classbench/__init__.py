"""ClassBench-style synthetic workload generation."""

from repro.classbench.generator import ClassBenchGenerator, generate_classifier
from repro.classbench.seeds import (
    FAMILIES,
    SEEDS,
    PortDistribution,
    PrefixDistribution,
    SeedParameters,
    get_seed,
    seed_names,
)
from repro.classbench.suite import (
    DEFAULT_SCALE_SIZES,
    PAPER_SCALE_SIZES,
    PAPER_SCALES,
    ClassifierSpec,
    family_of,
    iter_suite,
    materialize_suite,
    suite_specs,
)
from repro.classbench.traces import TraceConfig, TraceGenerator, generate_trace

__all__ = [
    "ClassBenchGenerator",
    "generate_classifier",
    "FAMILIES",
    "SEEDS",
    "PortDistribution",
    "PrefixDistribution",
    "SeedParameters",
    "get_seed",
    "seed_names",
    "DEFAULT_SCALE_SIZES",
    "PAPER_SCALE_SIZES",
    "PAPER_SCALES",
    "ClassifierSpec",
    "family_of",
    "iter_suite",
    "materialize_suite",
    "suite_specs",
    "TraceConfig",
    "TraceGenerator",
    "generate_trace",
]
