"""Packet trace generation (the ClassBench ``trace_generator`` analogue).

ClassBench ships a trace generator that produces packet headers biased toward
the rules in a filter set, controlled by a Pareto locality parameter.  The
same idea is reproduced here: traces mix rule-targeted headers (drawn from a
skewed distribution over rules, so some rules are "hot") with uniformly
random headers that typically fall through to the default rule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.rules.fields import DIMENSIONS, FIELD_RANGES
from repro.rules.packet import Packet
from repro.rules.ruleset import RuleSet


@dataclass(frozen=True)
class TraceConfig:
    """Configuration for synthetic packet traces.

    Attributes:
        num_packets: how many headers to generate.
        rule_bias: probability that a header is drawn from some rule's
            hypercube rather than uniformly from the whole space.
        pareto_shape: skew of the rule-popularity distribution; larger values
            concentrate traffic on fewer rules (ClassBench's locality knob).
        seed: RNG seed for reproducibility.
    """

    num_packets: int = 1000
    rule_bias: float = 0.9
    pareto_shape: float = 1.2
    seed: Optional[int] = 0


class TraceGenerator:
    """Generates packet traces targeted at a specific classifier."""

    def __init__(self, ruleset: RuleSet, config: TraceConfig = TraceConfig()) -> None:
        self.ruleset = ruleset
        self.config = config
        self._rng = random.Random(config.seed)
        self._np_rng = np.random.default_rng(config.seed)
        self._rule_weights = self._compute_rule_weights()

    def _compute_rule_weights(self) -> np.ndarray:
        """Pareto-skewed popularity over rules, normalised to sum to 1."""
        n = len(self.ruleset)
        ranks = np.arange(1, n + 1, dtype=float)
        weights = ranks ** (-self.config.pareto_shape)
        order = self._np_rng.permutation(n)
        weights = weights[order]
        return weights / weights.sum()

    def generate(self) -> List[Packet]:
        """Generate the configured number of packet headers."""
        packets: List[Packet] = []
        rules = self.ruleset.rules
        indices = self._np_rng.choice(
            len(rules), size=self.config.num_packets, p=self._rule_weights
        )
        for i in range(self.config.num_packets):
            if self._rng.random() < self.config.rule_bias:
                rule = rules[int(indices[i])]
                values = tuple(self._rng.randrange(lo, hi) for lo, hi in rule.ranges)
            else:
                values = tuple(
                    self._rng.randrange(lo, hi)
                    for lo, hi in (FIELD_RANGES[d] for d in DIMENSIONS)
                )
            packets.append(Packet.from_values(values))
        return packets


def generate_trace(ruleset: RuleSet, num_packets: int = 1000,
                   seed: Optional[int] = 0, rule_bias: float = 0.9) -> List[Packet]:
    """Convenience wrapper to generate a trace for a classifier."""
    config = TraceConfig(num_packets=num_packets, seed=seed, rule_bias=rule_bias)
    return TraceGenerator(ruleset, config).generate()
