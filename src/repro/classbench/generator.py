"""Synthetic ClassBench-style rule generation.

Given a :class:`~repro.classbench.seeds.SeedParameters` family and a target
rule count, the generator produces a classifier whose structural statistics
(prefix lengths, port classes, protocol mix, wildcard density, address
locality) follow the family's parameters.  The output is deterministic for a
given ``(seed_name, size, seed)`` triple so experiments are repeatable.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Optional, Sequence, Tuple

from repro.rules.fields import Dimension, FIELD_RANGES, Range, prefix_to_range
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet
from repro.classbench.seeds import (
    PROTO_WILDCARD,
    PortDistribution,
    PrefixDistribution,
    SeedParameters,
    get_seed,
)

#: Popular service ports used for the "exact" port class.
_COMMON_PORTS = (
    20, 21, 22, 23, 25, 53, 67, 68, 80, 110, 123, 137, 138, 139, 143,
    161, 179, 389, 443, 445, 465, 514, 587, 636, 993, 995, 1433, 1521,
    1723, 3306, 3389, 5060, 5432, 6379, 8080, 8443, 9090, 27017,
)

_PORT_FULL: Range = (0, 65536)
_PORT_EPHEMERAL: Range = (1024, 65536)
_PORT_WELL_KNOWN: Range = (0, 1024)


class ClassBenchGenerator:
    """Generates synthetic classifiers that mimic a ClassBench seed family."""

    def __init__(self, seed_params: SeedParameters, seed: int = 0) -> None:
        self.params = seed_params
        # zlib.crc32 is stable across processes (unlike hash(), which is
        # salted), so the same (family, seed) pair always yields the same
        # classifier — a requirement for reproducible experiments.
        family_digest = zlib.crc32(seed_params.name.encode()) & 0xFFFF
        self._rng = random.Random(family_digest * 10_007 + seed)
        # Pre-draw the family's subnet "anchors": the address-space localities
        # rules cluster around, which is what gives ClassBench rule sets their
        # characteristic overlap structure.
        self._src_subnets = self._draw_subnets(seed_params.src_prefix)
        self._dst_subnets = self._draw_subnets(seed_params.dst_prefix)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def generate(self, num_rules: int, name: Optional[str] = None) -> RuleSet:
        """Generate a classifier with ``num_rules`` rules (plus default rule)."""
        if num_rules < 1:
            raise ValueError("num_rules must be >= 1")
        rules: List[Rule] = []
        seen: set[Tuple[Range, ...]] = set()
        attempts = 0
        max_attempts = num_rules * 50
        while len(rules) < num_rules - 1 and attempts < max_attempts:
            attempts += 1
            rule = self._draw_rule()
            if rule.ranges in seen:
                continue
            seen.add(rule.ranges)
            rules.append(rule)
        # Always terminate with a default rule so every packet matches.
        rules.append(Rule.wildcard())
        label = name or f"{self.params.name}_{num_rules}"
        return RuleSet(rules, name=label, reassign_priorities=True)

    # ------------------------------------------------------------------ #
    # Internal draws
    # ------------------------------------------------------------------ #

    def _draw_subnets(self, dist: PrefixDistribution) -> List[int]:
        """Draw the base /8 network anchors the family's rules cluster in."""
        count = max(1, dist.num_subnets)
        return [self._rng.randrange(0, 256) << 24 for _ in range(count)]

    def _draw_rule(self) -> Rule:
        src_ip = self._draw_prefix(self.params.src_prefix, self._src_subnets)
        dst_ip = self._draw_prefix(self.params.dst_prefix, self._dst_subnets)
        src_port = self._draw_port(self.params.src_port)
        dst_port = self._draw_port(self.params.dst_port)
        protocol = self._draw_protocol()
        return Rule(ranges=(src_ip, dst_ip, src_port, dst_port, protocol))

    def _draw_prefix(self, dist: PrefixDistribution, subnets: Sequence[int]) -> Range:
        length = self._rng.choices(dist.lengths(), weights=dist.weights())[0]
        if length == 0:
            return FIELD_RANGES[Dimension.SRC_IP]
        base = self._rng.choice(subnets)
        # Fill the host bits below the /8 anchor randomly, then mask to length.
        host = self._rng.getrandbits(24)
        address = base | host
        return prefix_to_range(address, length, bits=32)

    def _draw_port(self, dist: PortDistribution) -> Range:
        choice = self._rng.choices(range(5), weights=dist.weights())[0]
        if choice == 0:
            return _PORT_FULL
        if choice == 1:
            return _PORT_EPHEMERAL
        if choice == 2:
            return _PORT_WELL_KNOWN
        if choice == 3:
            port = self._rng.choice(_COMMON_PORTS)
            return (port, port + 1)
        lo = self._rng.randrange(0, 65000)
        span = self._rng.choice((2, 4, 8, 16, 64, 256, 1024))
        hi = min(65536, lo + span)
        return (lo, hi)

    def _draw_protocol(self) -> Range:
        weights = self.params.protocol_weights
        values = list(weights)
        proto = self._rng.choices(values, weights=[weights[v] for v in values])[0]
        if proto == PROTO_WILDCARD:
            return FIELD_RANGES[Dimension.PROTOCOL]
        return (proto, proto + 1)


def generate_classifier(seed_name: str, num_rules: int, seed: int = 0,
                        name: Optional[str] = None) -> RuleSet:
    """Convenience wrapper: generate one classifier from a named seed family.

    Args:
        seed_name: ClassBench seed family, e.g. ``"acl1"`` or ``"fw5"``.
        num_rules: target number of rules (including the default rule).
        seed: RNG seed; the same triple always yields the same classifier.
        name: optional override of the classifier name.
    """
    generator = ClassBenchGenerator(get_seed(seed_name), seed=seed)
    return generator.generate(num_rules, name=name)
