"""Backend-pluggable task executors (the actor half of actor/learner training).

The paper scales NeuroCuts by collecting decision-tree rollouts on many
parallel workers (Figure 7).  This module is the execution substrate for that
and for harness suite-parallelism: a small :class:`RolloutExecutor` interface
with two backends —

* :class:`SerialExecutor` — runs tasks inline in the calling process.  Serial
  execution is a first-class backend, not a degenerate case: determinism
  tests and incremental deployments rely on it producing byte-identical
  results to a one-worker pool.
* :class:`ProcessPoolExecutor` — a *persistent* spawn-based process pool.
  The pool is created lazily on first use and reused across ``map`` calls,
  so per-iteration work (e.g. one PPO batch worth of rollout shards) does not
  pay process start-up and initializer costs every time.
* :class:`ThreadExecutor` — a persistent thread pool for tasks that must
  share the caller's memory (no pickling) and overlap it asynchronously,
  e.g. a background NeuroCuts retrain running beside a serving loop.

Beyond ordered ``map``, every backend supports ``submit`` — fire one task
and get a :class:`TaskHandle` to poll (``ready()``) or await (``result()``).
The serial backend runs submitted tasks inline and returns completed
handles, which keeps single-threaded runs deterministic.

Both backends accept an ``initializer`` so worker processes can build
expensive per-worker state (an environment plus a policy replica) once and
serve many tasks from it; task payloads then only need to carry what changes
per call (a weight snapshot, a seed, a budget).

This module deliberately has no dependencies on the rest of the package so
any layer (``neurocuts``, ``harness``, user code) can import it without
cycles.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.dummy
import multiprocessing.pool
import threading
from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, Generic, List, Optional, Sequence, \
    Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Backend names accepted by :func:`make_executor`.
EXECUTOR_BACKENDS = ("serial", "thread", "process")


class TaskHandle(Generic[R]):
    """A single in-flight :meth:`RolloutExecutor.submit` task.

    The minimal future surface the serving layer needs: :meth:`ready` to poll
    without blocking (so a serving loop can check for a finished retrain
    between batches) and :meth:`result` to block until the value — or the
    task's exception — is available.
    """

    def ready(self) -> bool:
        """True once :meth:`result` would return without blocking."""
        raise NotImplementedError

    def result(self) -> R:
        """Block until the task finishes; re-raises the task's exception."""
        raise NotImplementedError


class CompletedTask(TaskHandle[R]):
    """A task that already ran (the serial backend submits eagerly)."""

    def __init__(self, value: Optional[R] = None,
                 error: Optional[BaseException] = None) -> None:
        self._value = value
        self._error = error

    def ready(self) -> bool:
        return True

    def result(self) -> R:
        if self._error is not None:
            raise self._error
        return self._value  # type: ignore[return-value]


class _AsyncResultTask(TaskHandle[R]):
    """Wraps a ``multiprocessing`` ``AsyncResult`` (pool backends)."""

    def __init__(self, async_result: multiprocessing.pool.AsyncResult) -> None:
        self._async_result = async_result

    def ready(self) -> bool:
        return self._async_result.ready()

    def result(self) -> R:
        return self._async_result.get()


class RolloutExecutor:
    """Abstract executor: maps a function over items on some backend.

    Implementations must preserve input order in the returned list and may
    hold persistent resources; callers that own an executor should call
    :meth:`shutdown` (or use it as a context manager) when done.
    """

    #: Number of concurrent workers this executor can run (1 for serial).
    num_workers: int = 1

    def map(self, func: Callable[[T], R], items: Sequence[T],
            chunk_size: int = 1) -> List[R]:
        """Apply ``func`` to every item, returning results in input order."""
        raise NotImplementedError

    def submit(self, func: Callable[[T], R], item: T) -> TaskHandle[R]:
        """Start one task and return a handle to poll/await it.

        Pool backends run the task concurrently with the caller; the serial
        backend runs it inline *now* and returns an already-completed handle
        (exceptions are captured and re-raised by ``result()``, so callers
        see uniform behaviour across backends).
        """
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release any persistent resources (idempotent)."""

    def __enter__(self) -> "RolloutExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class SerialExecutor(RolloutExecutor):
    """Runs every task inline in the calling process.

    The ``initializer`` (if any) runs lazily in the calling process before
    the first task, mirroring the per-process set-up a pool backend performs
    in each worker.
    """

    num_workers = 1

    def __init__(self, initializer: Optional[Callable[..., None]] = None,
                 initargs: Tuple = ()) -> None:
        self._initializer = initializer
        self._initargs = initargs
        self._initialized = initializer is None

    def map(self, func: Callable[[T], R], items: Sequence[T],
            chunk_size: int = 1) -> List[R]:
        self._ensure_initialized()
        return [func(item) for item in items]

    def submit(self, func: Callable[[T], R], item: T) -> TaskHandle[R]:
        self._ensure_initialized()
        try:
            return CompletedTask(value=func(item))
        except Exception as error:  # noqa: BLE001 - uniform handle surface
            return CompletedTask(error=error)

    def _ensure_initialized(self) -> None:
        if not self._initialized:
            assert self._initializer is not None
            self._initializer(*self._initargs)
            self._initialized = True


class ProcessPoolExecutor(RolloutExecutor):
    """A persistent spawn-based process pool behind the executor interface.

    Unlike ``multiprocessing.Pool`` used as a one-shot context manager, the
    pool here survives across :meth:`map` calls: worker processes (and
    whatever state their ``initializer`` built) are reused until
    :meth:`shutdown`.

    Args:
        num_workers: number of worker processes (>= 1).
        initializer: optional callable run once in every worker process.
        initargs: arguments for ``initializer``.
        context_method: multiprocessing start method (default ``"spawn"``,
            the only method that is safe with threaded BLAS and consistent
            across platforms).
    """

    def __init__(self, num_workers: int,
                 initializer: Optional[Callable[..., None]] = None,
                 initargs: Tuple = (),
                 context_method: str = "spawn") -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = int(num_workers)
        self._initializer = initializer
        self._initargs = initargs
        self._context_method = context_method
        self._pool: Optional[multiprocessing.pool.Pool] = None

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            context = multiprocessing.get_context(self._context_method)
            self._pool = context.Pool(
                self.num_workers,
                initializer=self._initializer,
                initargs=self._initargs,
            )
        return self._pool

    @property
    def is_running(self) -> bool:
        """True once the pool has been started and not yet shut down."""
        return self._pool is not None

    def map(self, func: Callable[[T], R], items: Sequence[T],
            chunk_size: int = 1) -> List[R]:
        items = list(items)
        if not items:
            return []
        pool = self._ensure_pool()
        return pool.map(func, items, chunksize=max(1, int(chunk_size)))

    def submit(self, func: Callable[[T], R], item: T) -> TaskHandle[R]:
        return _AsyncResultTask(self._ensure_pool().apply_async(func, (item,)))

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


class ThreadExecutor(RolloutExecutor):
    """A persistent thread pool behind the executor interface.

    Threads share the parent's memory, so tasks need no pickling — the
    backend of choice for background work that must overlap a serving loop
    in the *same* process (e.g. a NeuroCuts retrain kicked off by the
    :class:`~repro.serve.controller.RetrainController`): NumPy releases the
    GIL inside its kernels, so training genuinely overlaps serving.  CPU-bound
    pure-Python tasks should prefer the process backend.
    """

    def __init__(self, num_workers: int,
                 initializer: Optional[Callable[..., None]] = None,
                 initargs: Tuple = ()) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = int(num_workers)
        self._initializer = initializer
        self._initargs = initargs
        self._pool: Optional[multiprocessing.pool.Pool] = None

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            self._pool = multiprocessing.dummy.Pool(
                self.num_workers,
                initializer=self._initializer,
                initargs=self._initargs,
            )
        return self._pool

    @property
    def is_running(self) -> bool:
        """True once the pool has been started and not yet shut down."""
        return self._pool is not None

    def map(self, func: Callable[[T], R], items: Sequence[T],
            chunk_size: int = 1) -> List[R]:
        items = list(items)
        if not items:
            return []
        pool = self._ensure_pool()
        return pool.map(func, items, chunksize=max(1, int(chunk_size)))

    def submit(self, func: Callable[[T], R], item: T) -> TaskHandle[R]:
        return _AsyncResultTask(self._ensure_pool().apply_async(func, (item,)))

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


def make_executor(num_workers: int,
                  backend: Optional[str] = None,
                  initializer: Optional[Callable[..., None]] = None,
                  initargs: Tuple = ()) -> RolloutExecutor:
    """Build an executor for ``num_workers`` workers.

    ``backend`` may be ``"serial"``, ``"thread"``, ``"process"``, or ``None``
    to pick automatically (serial for one worker, a process pool otherwise).
    """
    if backend is None:
        backend = "serial" if num_workers <= 1 else "process"
    if backend not in EXECUTOR_BACKENDS:
        raise ValueError(
            f"backend must be one of {EXECUTOR_BACKENDS}, got {backend!r}"
        )
    if backend == "serial":
        return SerialExecutor(initializer=initializer, initargs=initargs)
    if backend == "thread":
        return ThreadExecutor(num_workers, initializer=initializer,
                              initargs=initargs)
    return ProcessPoolExecutor(num_workers, initializer=initializer,
                               initargs=initargs)


# --------------------------------------------------------------------------- #
# RetrainPool: many submitters multiplexed over one executor, fairly
# --------------------------------------------------------------------------- #


class _PooledTask(TaskHandle[R]):
    """A task queued in (or dispatched by) a :class:`RetrainPool`.

    Until the pool grants it a slot the task has no underlying handle; the
    pool's pump transitions it queued -> running -> done.  ``ready()`` and
    ``result()`` drive the pump, so a caller polling any pooled handle also
    advances everyone else's queue — no dedicated dispatcher thread.
    """

    __slots__ = ("key", "func", "item", "handle", "done", "_value", "_error",
                 "_pool")

    def __init__(self, pool: "RetrainPool", key: str,
                 func: Callable[[T], R], item: T) -> None:
        self._pool = pool
        self.key = key
        self.func = func
        self.item = item
        self.handle: Optional[TaskHandle[R]] = None
        self.done = False
        self._value: Optional[R] = None
        self._error: Optional[BaseException] = None

    def _finish(self) -> None:
        """Capture the underlying handle's outcome (handle must be ready)."""
        assert self.handle is not None
        try:
            self._value = self.handle.result()
        except BaseException as error:  # noqa: BLE001 - uniform surface
            self._error = error
        self.handle = None
        self.done = True

    def ready(self) -> bool:
        self._pool._pump()
        return self.done

    def result(self) -> R:
        self._pool._wait(self)
        if self._error is not None:
            raise self._error
        return self._value  # type: ignore[return-value]


class RetrainPool:
    """Multiplexes many submitters' tasks over one shared executor, fairly.

    Every :class:`~repro.serve.controller.RetrainController` — across all
    tenants, and across shards within a process — submits here instead of
    owning a private executor.  Tasks are keyed (by tenant) and dispatched
    round-robin across keys whenever an executor slot frees up, so one noisy
    tenant cannot starve the rest; tasks of the *same* key run in FIFO order.

    The pool is pumped cooperatively from ``ready()``/``result()`` calls on
    its handles — there is no background dispatcher thread, which keeps
    serial-backend pools (capacity 1, tasks run inline at dispatch) exactly
    as deterministic as a private :class:`SerialExecutor`.
    """

    def __init__(self, executor: RolloutExecutor) -> None:
        self._executor = executor
        self._capacity = max(1, int(executor.num_workers))
        self._queues: "OrderedDict[str, Deque[_PooledTask]]" = OrderedDict()
        self._running: List[_PooledTask] = []
        self._lock = threading.RLock()
        #: Total tasks ever submitted through the pool (monotonic).
        self.submitted = 0

    @property
    def executor(self) -> RolloutExecutor:
        """The shared underlying executor (for reuse assertions/tests)."""
        return self._executor

    @property
    def capacity(self) -> int:
        return self._capacity

    def queue_depth(self) -> int:
        """Tasks waiting for a slot (excludes running tasks)."""
        with self._lock:
            return sum(len(q) for q in self._queues.values())

    def submit(self, key: str, func: Callable[[T], R],
               item: T) -> TaskHandle[R]:
        """Enqueue one task under ``key`` and return its handle."""
        task = _PooledTask(self, key, func, item)
        with self._lock:
            self.submitted += 1
            queue = self._queues.get(key)
            if queue is None:
                queue = self._queues[key] = deque()
            queue.append(task)
            self._dispatch_ready()
        return task

    # ------------------------------------------------------------------ #
    # Pump: land finished tasks, grant freed slots round-robin
    # ------------------------------------------------------------------ #

    def _dispatch_ready(self) -> None:
        """Fill free slots from the queues, round-robin across keys.

        Caller holds the lock.  The serial executor runs the task inline
        here, so its slot frees immediately and the loop continues until
        the queues drain — preserving serial determinism.
        """
        while len(self._running) < self._capacity and self._queues:
            key, queue = next(iter(self._queues.items()))
            task = queue.popleft()
            # Rotate the key to the back (or drop it when drained) *before*
            # running the task: inline serial tasks re-enter the loop.
            del self._queues[key]
            if queue:
                self._queues[key] = queue
            task.handle = self._executor.submit(task.func, task.item)
            if task.handle.ready():
                task._finish()
            else:
                self._running.append(task)

    def _pump(self) -> None:
        with self._lock:
            finished = [t for t in self._running if t.handle.ready()]
            if finished:
                for task in finished:
                    task._finish()
                self._running = [t for t in self._running if not t.done]
            self._dispatch_ready()

    def _wait(self, task: _PooledTask) -> None:
        """Block until ``task`` is done, pumping the pool as tasks land."""
        while True:
            self._pump()
            if task.done:
                return
            with self._lock:
                # Block on the task itself once running, else on the oldest
                # running task (its completion frees a slot and the pump
                # advances the queues).
                target = task if task.handle is not None else (
                    self._running[0] if self._running else None)
                handle = target.handle if target is not None else None
            if handle is None:
                continue  # dispatch raced us; re-pump
            try:
                handle.result()
            except BaseException:  # noqa: BLE001 - landed via _finish later
                pass


# --------------------------------------------------------------------------- #
# Shared retrain pools: one multiplexed pool per (backend, size) per process
# --------------------------------------------------------------------------- #

_SHARED_RETRAIN_POOLS: Dict[Tuple[str, int], RetrainPool] = {}


def resolve_pool_backend(backend: str) -> str:
    """Resolve a retrain-pool backend for the *current* process.

    Daemonic pool workers (process-backend serving shards) cannot spawn
    child processes, so a ``"process"`` retrain pool inside one silently
    resolves to ``"thread"`` — by construction, not per-task warning.
    """
    if backend == "process" and multiprocessing.current_process().daemon:
        return "thread"
    return backend


def shared_retrain_pool(num_workers: int,
                        backend: str = "thread") -> RetrainPool:
    """The process-local shared retrain pool for this width and backend.

    All retrain controllers in a process that ask for the same
    ``(backend, num_workers)`` get the *same* :class:`RetrainPool` (and thus
    the same underlying executor) — the fleet-trainer contract that retrains
    across tenants and shards multiplex over one pool instead of each
    controller spawning its own.  Pools live until
    :func:`shutdown_shared_retrain_pools` or interpreter exit.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    backend = resolve_pool_backend(backend)
    if backend not in EXECUTOR_BACKENDS:
        raise ValueError(
            f"backend must be one of {EXECUTOR_BACKENDS}, got {backend!r}"
        )
    key = (backend, int(num_workers))
    pool = _SHARED_RETRAIN_POOLS.get(key)
    if pool is None:
        pool = RetrainPool(make_executor(num_workers, backend=backend))
        _SHARED_RETRAIN_POOLS[key] = pool
    return pool


def shutdown_shared_retrain_pools() -> None:
    """Shut down every shared retrain pool (recreated lazily if needed)."""
    for pool in list(_SHARED_RETRAIN_POOLS.values()):
        pool.executor.shutdown()
    _SHARED_RETRAIN_POOLS.clear()


atexit.register(shutdown_shared_retrain_pools)


# --------------------------------------------------------------------------- #
# Shared executors: process pools reused across unrelated map calls
# --------------------------------------------------------------------------- #

_SHARED_EXECUTORS: Dict[int, ProcessPoolExecutor] = {}


def shared_executor(num_workers: int) -> RolloutExecutor:
    """A process-pool executor shared by all callers needing this width.

    Used by :func:`repro.harness.parallel.parallel_map` so repeated harness
    calls reuse one persistent pool per worker count instead of spawning a
    fresh pool every call.  Shared executors carry no initializer (tasks must
    be self-contained) and live until :func:`shutdown_shared_executors` or
    interpreter exit.
    """
    if num_workers <= 1:
        return SerialExecutor()
    executor = _SHARED_EXECUTORS.get(num_workers)
    if executor is None:
        executor = ProcessPoolExecutor(num_workers)
        _SHARED_EXECUTORS[num_workers] = executor
    return executor


def shutdown_shared_executors() -> None:
    """Terminate every shared pool (they are recreated lazily if needed)."""
    for executor in list(_SHARED_EXECUTORS.values()):
        executor.shutdown()
    _SHARED_EXECUTORS.clear()


atexit.register(shutdown_shared_executors)
