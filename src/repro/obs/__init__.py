"""Observability: unified metrics, bench scorecards, and the regression gate.

This package is the repo's *perf observatory* — the substrate every perf
claim flows through:

* :mod:`repro.obs.metrics` — a lightweight :class:`MetricsRegistry` of
  counters, gauges, and timing histograms.  Registries are picklable and
  *exactly* mergeable across the shard boundary: timings keep raw samples,
  so merged percentiles equal those of a single process observing the union
  (the same contract as the raw-latency percentile merge in
  :mod:`repro.serve.sharded`).  Phase-timer spans instrument the hot
  serving-lifecycle edges: compile, swap install, retrain job, batch flush,
  queue wait.
* :mod:`repro.obs.bench` — the versioned :class:`BenchRecord` JSON schema
  (``BENCH_<area>.json``): run name, area, config knobs, deterministic
  counters, timing metrics, and an environment fingerprint.
* :mod:`repro.obs.compare` — the regression gate: strict equality on
  deterministic counters, tolerance bands on timing metrics (direction
  aware, skippable on starved CI containers), non-zero exit on regression
  via ``repro bench compare``.
* :mod:`repro.obs.serialize` — the one stable-key serialization helper the
  scattered ``as_dict()`` implementations route through.

``repro.obs`` sits below every other layer (it imports only numpy), so the
engine, serving, harness, and trace layers can all report through it
without import cycles.
"""

from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    bench_filename,
    environment_fingerprint,
    read_bench,
    write_bench,
)
from repro.obs.compare import (
    CheckResult,
    CompareReport,
    compare_records,
    timing_direction,
    timings_comparable,
)
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, Timing
from repro.obs.serialize import stable_dict

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchRecord",
    "bench_filename",
    "environment_fingerprint",
    "read_bench",
    "write_bench",
    "CheckResult",
    "CompareReport",
    "compare_records",
    "timing_direction",
    "timings_comparable",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Timing",
    "stable_dict",
]
