"""The versioned ``BENCH_<area>.json`` scorecard schema.

A :class:`BenchRecord` is one benchmark run made machine-readable: what ran
(``name``, ``area``), with which knobs (``config``), what it measured, and
where (``environment``).  Metrics are split by comparison semantics:

* ``counters`` — deterministic quantities (packets served, swaps, cache
  invalidations, exactness mismatches, compiled bytes).  Given the same
  config these are a pure function of the workload, so the regression gate
  (:mod:`repro.obs.compare`) holds them to **exact equality**.
* ``timings`` — wall-clock quantities (pps, latency percentiles, compile
  seconds).  They measure the machine as much as the code, so the gate
  applies a relative tolerance band, direction-aware.

Records serialise as sorted-key JSON (``BENCH_<area>.json`` by convention);
the embedded ``schema_version`` gates reads — an unknown version raises
:class:`~repro.exceptions.BenchFormatError` instead of silently
misinterpreting fields.  The environment fingerprint (python/numpy version,
CPU count, platform, git SHA) is recorded for provenance but never
compared: a baseline from one machine must stay comparable on another.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.exceptions import BenchFormatError
from repro.obs.serialize import stable_dict

#: Current scorecard schema version; bump on incompatible field changes.
BENCH_SCHEMA_VERSION = 1

#: Benchmark areas with a conventional ``BENCH_<area>.json`` file name.
BENCH_AREAS = ("engine", "serve", "scaling", "replay")

_NUMBER_TYPES = (int, float)


def _git(args: list, cwd: Path) -> Optional[str]:
    """Run a git command; stdout on success, None on any failure."""
    try:
        out = subprocess.run(
            ["git", *args], capture_output=True, text=True, timeout=10,
            cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def git_sha(repo_root: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The HEAD SHA of the checkout this code came from, or None.

    With ``repo_root`` the SHA is resolved there, no questions asked.
    Without it, the SHA is only reported when this very file is *tracked*
    by the repository surrounding it (a dev checkout): a pip-installed
    copy whose site-packages happens to live under some unrelated git
    checkout must record None, not that repository's SHA.
    """
    if repo_root is not None:
        sha = _git(["rev-parse", "HEAD"], Path(repo_root))
        return sha or None
    here = Path(__file__).resolve()
    if _git(["ls-files", "--error-unmatch", here.name],
            here.parent) is None:
        return None
    sha = _git(["rev-parse", "HEAD"], here.parent)
    return sha or None


def environment_fingerprint() -> Dict[str, object]:
    """Where a record was produced: interpreter, numpy, CPUs, git SHA."""
    return stable_dict({
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "git_sha": git_sha(),
    })


def bench_filename(area: str) -> str:
    """The conventional scorecard file name for an area."""
    return f"BENCH_{area}.json"


@dataclass
class BenchRecord:
    """One benchmark run in the versioned scorecard schema."""

    name: str
    area: str
    config: Dict[str, object] = field(default_factory=dict)
    counters: Dict[str, Union[int, float]] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    environment: Dict[str, object] = field(default_factory=dict)
    schema_version: int = BENCH_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not self.environment:
            self.environment = environment_fingerprint()

    def as_dict(self) -> dict:
        return stable_dict({
            "schema_version": self.schema_version,
            "name": self.name,
            "area": self.area,
            "config": self.config,
            "counters": self.counters,
            "timings": self.timings,
            "environment": self.environment,
        })

    def to_json(self) -> str:
        """Sorted-key JSON (deterministic bytes for equal records)."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: dict, source: str = "<dict>") -> "BenchRecord":
        """Validate and build a record from decoded JSON.

        Raises :class:`BenchFormatError` on an unknown schema version,
        missing fields, or wrong field types — never a bare
        ``KeyError``/``TypeError``.
        """
        if not isinstance(data, dict):
            raise BenchFormatError(
                f"{source}: bench record must be a JSON object, "
                f"got {type(data).__name__}"
            )
        version = data.get("schema_version")
        if version != BENCH_SCHEMA_VERSION:
            raise BenchFormatError(
                f"{source}: unsupported bench schema version {version!r} "
                f"(this build reads version {BENCH_SCHEMA_VERSION})"
            )
        for key, kind in (("name", str), ("area", str), ("config", dict),
                          ("counters", dict), ("timings", dict),
                          ("environment", dict)):
            if key not in data:
                raise BenchFormatError(f"{source}: missing field {key!r}")
            if not isinstance(data[key], kind):
                raise BenchFormatError(
                    f"{source}: field {key!r} must be "
                    f"{kind.__name__}, got {type(data[key]).__name__}"
                )
        for section in ("counters", "timings"):
            for metric, value in data[section].items():
                if isinstance(value, bool) or \
                        not isinstance(value, _NUMBER_TYPES):
                    raise BenchFormatError(
                        f"{source}: {section}[{metric!r}] must be a "
                        f"number, got {type(value).__name__}"
                    )
        return cls(
            name=data["name"],
            area=data["area"],
            config=dict(data["config"]),
            counters=dict(data["counters"]),
            timings={k: float(v) for k, v in data["timings"].items()},
            environment=dict(data["environment"]),
            schema_version=version,
        )

    @classmethod
    def from_json(cls, text: str, source: str = "<json>") -> "BenchRecord":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise BenchFormatError(
                f"{source}: not valid JSON ({error})"
            ) from error
        return cls.from_dict(data, source=source)


def write_bench(record: BenchRecord, path: Union[str, Path]) -> Path:
    """Write a record to ``path`` (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(record.to_json(), encoding="utf-8")
    return path


def read_bench(path: Union[str, Path]) -> BenchRecord:
    """Read and validate a scorecard file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise BenchFormatError(
            f"cannot read bench record {path}: {error}"
        ) from error
    return BenchRecord.from_json(text, source=str(path))
