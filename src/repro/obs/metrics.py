"""The metrics layer: counters, gauges, timing histograms, phase spans.

A :class:`MetricsRegistry` is the one bag of telemetry a serving stack
carries.  Three series kinds cover the repo's needs:

* :class:`Counter` — a monotonically growing integer; merge is addition.
* :class:`Gauge` — a last-written level (queue depth, tenant count).  Merge
  takes the **max** — the only associative, commutative, order-free choice
  that still answers the fleet question gauges are used for here ("what was
  the highest level any shard saw"); ``updates`` counts sets and merges by
  addition.
* :class:`Timing` — a timing histogram that keeps its **raw samples**, so a
  merge concatenates samples and every percentile of the merged series
  equals the percentile a single process would have computed over the union.
  This is the identical contract to the raw-latency percentile merge in
  :mod:`repro.serve.sharded`, applied to every timed phase.

Merging is associative and commutative in the summary view, which is what
lets the sharded front-end fold worker registries in any order.  Registries
hold only plain containers — no locks, no threads — so they pickle across
the process boundary unchanged.

**Threading.**  A registry assumes the single-serving-thread model of
:mod:`repro.serve`: series are created and read from the serving thread.
The one background writer is an engine builder / retrain observer calling
``Timing.observe`` on a series that already exists — a bare ``list.append``,
atomic under the GIL — so callers that share a series with a background
thread must create it up front (see :class:`~repro.serve.engines.EngineSlot`).

Spans are the cheap way in: ``with registry.span("engine.compile_seconds"):``
times the block with ``perf_counter`` and records one sample.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List

import numpy as np

from repro.obs.serialize import stable_dict

#: Percentiles a timing summary reports (matches the serving layer's
#: latency percentiles).
TIMING_PERCENTILES = (50.0, 90.0, 99.0)


@dataclass
class Counter:
    """A summable event count (packets, batches, swaps...)."""

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} is monotone; cannot inc({amount})"
            )
        self.value += amount

    def merge(self, other: "Counter") -> "Counter":
        self.value += other.value
        return self

    def as_dict(self) -> dict:
        return stable_dict({"value": self.value})


@dataclass
class Gauge:
    """A level (queue depth, registered tenants); merge keeps the max."""

    name: str
    value: float = 0.0
    #: How many times the gauge was set; merges by addition.
    updates: int = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1

    def merge(self, other: "Gauge") -> "Gauge":
        self.value = max(self.value, other.value)
        self.updates += other.updates
        return self

    def as_dict(self) -> dict:
        return stable_dict({"value": self.value, "updates": self.updates})


@dataclass
class Timing:
    """A timing histogram holding raw samples (seconds) for exact merges."""

    name: str
    samples: List[float] = field(default_factory=list)

    def observe(self, seconds: float) -> None:
        """Record one duration (an append; GIL-atomic, see module docs)."""
        self.samples.append(float(seconds))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return float(sum(self.samples))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.samples else 0.0

    @property
    def max(self) -> float:
        return float(np.max(self.samples)) if self.samples else 0.0

    def percentile(self, pct: float) -> float:
        """An exact percentile over the raw samples (0.0 when empty)."""
        if not self.samples:
            return 0.0
        return float(np.percentile(self.samples, pct))

    def merge(self, other: "Timing") -> "Timing":
        self.samples.extend(other.samples)
        return self

    def as_dict(self) -> dict:
        summary = {
            "count": self.count,
            "total_seconds": self.total,
            "mean_seconds": self.mean,
            "max_seconds": self.max,
        }
        for pct in TIMING_PERCENTILES:
            summary[f"p{pct:g}_seconds"] = self.percentile(pct)
        return stable_dict(summary)


class MetricsRegistry:
    """A picklable bag of named counters, gauges, and timing histograms.

    Series accessors are get-or-create, so instrumentation points never
    need registration boilerplate.  A name may only ever be one kind —
    asking for ``counter("x")`` after ``timing("x")`` raises, which keeps
    merged registries well-typed.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.timings: Dict[str, Timing] = {}

    # ------------------------------------------------------------------ #
    # Series access
    # ------------------------------------------------------------------ #

    def _check_kind(self, name: str, kind: Dict[str, object]) -> None:
        for series in (self.counters, self.gauges, self.timings):
            if series is not kind and name in series:
                raise ValueError(
                    f"metric {name!r} already exists with a different kind"
                )

    def counter(self, name: str) -> Counter:
        self._check_kind(name, self.counters)
        series = self.counters.get(name)
        if series is None:
            series = self.counters[name] = Counter(name)
        return series

    def gauge(self, name: str) -> Gauge:
        self._check_kind(name, self.gauges)
        series = self.gauges.get(name)
        if series is None:
            series = self.gauges[name] = Gauge(name)
        return series

    def timing(self, name: str) -> Timing:
        self._check_kind(name, self.timings)
        series = self.timings.get(name)
        if series is None:
            series = self.timings[name] = Timing(name)
        return series

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a phase: records the block's wall seconds into ``name``.

        The series is created *before* the block runs, so a span around
        code that hands the same series to a background thread stays safe.
        """
        series = self.timing(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            series.observe(time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    # Merge and views
    # ------------------------------------------------------------------ #

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry in (exact; see module docstring)."""
        for name, counter in other.counters.items():
            self.counter(name).merge(counter)
        for name, gauge in other.gauges.items():
            self.gauge(name).merge(gauge)
        for name, timing in other.timings.items():
            self.timing(name).merge(timing)
        return self

    @classmethod
    def merged(cls, registries: Iterable["MetricsRegistry"]
               ) -> "MetricsRegistry":
        """A fresh registry holding the exact union of the given ones."""
        result = cls()
        for registry in registries:
            result.merge(registry)
        return result

    def snapshot(self) -> "MetricsRegistry":
        """A detached point-in-time copy of every series.

        Series objects and raw sample lists are cloned (a C-level list
        copy, far cheaper than ``copy.deepcopy`` for big sample sets), so
        the snapshot never moves when the live registry keeps observing —
        what lets a report embed metrics without aliasing the shared
        instance background writers hold.
        """
        result = MetricsRegistry()
        result.counters = {n: Counter(n, c.value)
                           for n, c in self.counters.items()}
        result.gauges = {n: Gauge(n, g.value, g.updates)
                         for n, g in self.gauges.items()}
        result.timings = {n: Timing(n, list(t.samples))
                          for n, t in self.timings.items()}
        return result

    def summary(self) -> dict:
        """Stable-key nested summary: {counters, gauges, timings}."""
        return stable_dict({
            "counters": {n: c.value for n, c in self.counters.items()},
            "gauges": {n: g.as_dict() for n, g in self.gauges.items()},
            "timings": {n: t.as_dict() for n, t in self.timings.items()},
        })

    def as_dict(self) -> dict:
        """Alias of :meth:`summary` (the uniform serialization surface)."""
        return self.summary()

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.timings)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MetricsRegistry(counters={len(self.counters)}, "
                f"gauges={len(self.gauges)}, timings={len(self.timings)})")
