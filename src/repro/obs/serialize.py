"""Stable-key serialization: one helper behind every ``as_dict()``.

Telemetry classes across the repo (:class:`~repro.serve.engines.SwapStats`,
:class:`~repro.serve.controller.RetrainStats`,
:class:`~repro.engine.cache.FlowCacheStats`, the tree/classifier stats, the
metric summaries) each expose an ``as_dict()`` view.  Before this module
every one of them hand-rolled its dict, which made key order an accident
and let numpy scalar types leak into JSON payloads.  :func:`stable_dict` is
the single choke point: keys are sorted, values are coerced to plain JSON
types, and nested mappings/sequences are normalised recursively — so two
serializations of equal telemetry are byte-identical once dumped with
``json.dumps``.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

import numpy as np


def _coerce(value: Any) -> Any:
    """Normalise one value to a plain JSON-serialisable Python type."""
    if isinstance(value, (np.generic,)):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_coerce(v) for v in value.tolist()]
    if isinstance(value, Mapping):
        return {str(k): _coerce(v) for k, v in sorted(value.items(),
                                                      key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_coerce(v) for v in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    # Dataclass-style telemetry objects serialise through their own view.
    as_dict = getattr(value, "as_dict", None)
    if callable(as_dict):
        return _coerce(as_dict())
    raise TypeError(
        f"cannot serialise {type(value).__name__!r} into a stable dict"
    )


def stable_dict(mapping: Mapping[str, Any]) -> Dict[str, Any]:
    """A plain dict with sorted keys and JSON-native values.

    Insertion order of the returned dict *is* sorted-key order, so
    ``json.dumps`` produces identical bytes for equal telemetry without
    needing ``sort_keys=True`` at every call site (though passing it stays
    harmless).  Nested mappings are normalised the same way; numpy scalars
    and arrays are converted to their Python equivalents.
    """
    return {str(key): _coerce(value)
            for key, value in sorted(mapping.items(),
                                     key=lambda kv: str(kv[0]))}
