"""The regression gate: compare a bench run against a checked-in baseline.

:func:`compare_records` implements the comparison semantics the scorecard
schema (:mod:`repro.obs.bench`) was split for:

* **Config** — the knobs must match (comparing runs of different scenarios
  is user error, not a perf verdict); ``ignore_config=True`` opts out when
  a scale change is intentional.
* **Counters** — strict: a deterministic counter that moved *at all* is a
  regression (or an unflagged behaviour change, which the gate exists to
  surface).  A counter present in the baseline but missing from the run is
  a regression too; counters new in the run are reported informationally.
* **Timings** — tolerance-banded and direction-aware: a metric whose name
  marks it higher-is-better (``*_pps``, ``*speedup*``, ``*_per_sec``,
  ``*hit_rate*``) regresses when the run falls more than ``tolerance``
  below baseline; everything else (seconds, latencies) regresses when the
  run rises more than ``tolerance`` above.  Improvements never fail the
  gate.  Timing checks can be skipped wholesale — the 1-CPU CI container
  cannot meaningfully time multi-worker paths — and the skip is recorded
  in the report rather than silently passing.

Environment fingerprints never *fail* a comparison, but they do gate what
gets compared: :func:`timings_comparable` refuses timing bands when the two
records were produced on different machine classes (different fingerprint
``cpu_count``) — CI wall-clock numbers banded against a dev-machine
baseline are noise, not a verdict.  The fingerprint otherwise exists so a
surprising result can be traced to the machine that produced each side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.obs.bench import BenchRecord

#: Default relative tolerance for timing metrics (25 %).
DEFAULT_TIMING_TOLERANCE = 0.25

#: Substrings marking a timing metric as higher-is-better.
HIGHER_IS_BETTER_MARKERS = ("_pps", "pps_", "speedup", "_per_sec",
                            "hit_rate", "throughput")


def timings_comparable(run: BenchRecord,
                       baseline: BenchRecord) -> Tuple[bool, str]:
    """Whether two records' timings come from the same machine class.

    Timing bands only mean something when both sides ran on comparable
    hardware; the fingerprint's ``cpu_count`` is the proxy used here (a
    4-vCPU CI runner banded against a 1-CPU dev-container baseline, or
    vice versa, would gate on machine noise).  Returns ``(ok, reason)``
    where ``reason`` explains a False verdict.  Counters are unaffected —
    they are machine-independent by contract.
    """
    run_cpus = run.environment.get("cpu_count")
    base_cpus = baseline.environment.get("cpu_count")
    if run_cpus == base_cpus:
        return True, ""
    return False, (
        f"run was recorded with cpu_count={run_cpus} but the baseline "
        f"with cpu_count={base_cpus}; timings are not comparable across "
        f"machine classes"
    )


def timing_direction(metric: str) -> str:
    """``"higher"`` or ``"lower"`` — which direction is *better* for a metric."""
    lowered = metric.lower()
    if any(marker in lowered for marker in HIGHER_IS_BETTER_MARKERS):
        return "higher"
    return "lower"


@dataclass(frozen=True)
class CheckResult:
    """One metric's verdict in a comparison."""

    metric: str
    kind: str  #: "config" | "counter" | "timing"
    status: str  #: "ok" | "regression" | "missing" | "new" | "skipped"
    run_value: Optional[object] = None
    baseline_value: Optional[object] = None
    detail: str = ""

    @property
    def failed(self) -> bool:
        return self.status in ("regression", "missing")


@dataclass
class CompareReport:
    """Outcome of gating one run against one baseline."""

    run_name: str
    baseline_name: str
    timing_tolerance: float
    timings_checked: bool
    checks: List[CheckResult] = field(default_factory=list)

    @property
    def failures(self) -> List[CheckResult]:
        return [c for c in self.checks if c.failed]

    @property
    def ok(self) -> bool:
        """True when the run passes the gate (no counter/timing/config fails)."""
        return not self.failures

    def rows(self) -> List[List[object]]:
        """Table rows for :func:`repro.harness.tables.format_table`."""
        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:,.6g}"
            return str(value)

        rows: List[List[object]] = []
        for check in self.checks:
            rows.append([
                check.kind,
                check.metric,
                fmt(check.baseline_value) if check.baseline_value is not None
                else "-",
                fmt(check.run_value) if check.run_value is not None else "-",
                check.status + (f" ({check.detail})" if check.detail else ""),
            ])
        return rows


def _check_config(run: BenchRecord, baseline: BenchRecord,
                  checks: List[CheckResult]) -> None:
    keys = sorted(set(run.config) | set(baseline.config))
    for key in keys:
        in_run = key in run.config
        in_base = key in baseline.config
        if in_run and in_base and run.config[key] == baseline.config[key]:
            continue
        checks.append(CheckResult(
            metric=key, kind="config", status="regression",
            run_value=run.config.get(key), baseline_value=baseline.config.get(key),
            detail="config drift; rerun with the baseline's config or pass "
                   "--ignore-config",
        ))


def _check_counters(run: BenchRecord, baseline: BenchRecord,
                    checks: List[CheckResult]) -> None:
    for metric in sorted(baseline.counters):
        base_value = baseline.counters[metric]
        if metric not in run.counters:
            checks.append(CheckResult(
                metric=metric, kind="counter", status="missing",
                baseline_value=base_value,
                detail="counter present in baseline but absent from the run",
            ))
            continue
        run_value = run.counters[metric]
        if run_value == base_value:
            checks.append(CheckResult(metric=metric, kind="counter",
                                      status="ok", run_value=run_value,
                                      baseline_value=base_value))
        else:
            checks.append(CheckResult(
                metric=metric, kind="counter", status="regression",
                run_value=run_value, baseline_value=base_value,
                detail="deterministic counter changed",
            ))
    for metric in sorted(set(run.counters) - set(baseline.counters)):
        checks.append(CheckResult(metric=metric, kind="counter", status="new",
                                  run_value=run.counters[metric],
                                  detail="not in baseline"))


def _check_timings(run: BenchRecord, baseline: BenchRecord,
                   tolerance: float, checked: bool,
                   checks: List[CheckResult]) -> None:
    for metric in sorted(baseline.timings):
        base_value = baseline.timings[metric]
        if metric not in run.timings:
            checks.append(CheckResult(
                metric=metric, kind="timing",
                status="missing" if checked else "skipped",
                baseline_value=base_value,
                detail="timing present in baseline but absent from the run",
            ))
            continue
        run_value = run.timings[metric]
        if not checked:
            checks.append(CheckResult(metric=metric, kind="timing",
                                      status="skipped", run_value=run_value,
                                      baseline_value=base_value))
            continue
        direction = timing_direction(metric)
        if base_value == 0:
            # A zero baseline carries no scale to band against; only a
            # higher-is-better metric collapsing to <= 0 could even be
            # judged, and a zero baseline there means "never measured".
            checks.append(CheckResult(metric=metric, kind="timing",
                                      status="ok", run_value=run_value,
                                      baseline_value=base_value,
                                      detail="zero baseline, not banded"))
            continue
        change = (run_value - base_value) / abs(base_value)
        worse = -change if direction == "higher" else change
        if worse > tolerance:
            checks.append(CheckResult(
                metric=metric, kind="timing", status="regression",
                run_value=run_value, baseline_value=base_value,
                detail=f"{direction}-is-better moved {change:+.1%} "
                       f"(tolerance {tolerance:.0%})",
            ))
        else:
            checks.append(CheckResult(metric=metric, kind="timing",
                                      status="ok", run_value=run_value,
                                      baseline_value=base_value,
                                      detail=f"{change:+.1%}"))
    for metric in sorted(set(run.timings) - set(baseline.timings)):
        checks.append(CheckResult(metric=metric, kind="timing", status="new",
                                  run_value=run.timings[metric],
                                  detail="not in baseline"))


def compare_records(
    run: BenchRecord,
    baseline: BenchRecord,
    timing_tolerance: float = DEFAULT_TIMING_TOLERANCE,
    check_timings: bool = True,
    ignore_config: bool = False,
) -> CompareReport:
    """Gate a bench run against a baseline record.

    Returns a :class:`CompareReport`; ``report.ok`` is the gate verdict
    (``repro bench compare`` exits non-zero when it is False).
    """
    if timing_tolerance < 0:
        raise ValueError("timing_tolerance must be >= 0")
    checks: List[CheckResult] = []
    if run.area != baseline.area:
        checks.append(CheckResult(
            metric="area", kind="config", status="regression",
            run_value=run.area, baseline_value=baseline.area,
            detail="records benchmark different areas",
        ))
    if not ignore_config:
        _check_config(run, baseline, checks)
    _check_counters(run, baseline, checks)
    _check_timings(run, baseline, timing_tolerance, check_timings, checks)
    return CompareReport(
        run_name=run.name,
        baseline_name=baseline.name,
        timing_tolerance=timing_tolerance,
        timings_checked=check_timings,
        checks=checks,
    )
