"""Advantage and return computation.

NeuroCuts frames each node decision as a 1-step problem whose return is the
negated time/space objective of the subtree the action produced, so the
advantage is simply ``return − V(s)``.  For completeness (and for the generic
MDP tests of the RL substrate) standard discounted returns and Generalised
Advantage Estimation over sequential trajectories are provided as well.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def one_step_advantages(returns: np.ndarray, value_preds: np.ndarray,
                        normalize: bool = True) -> np.ndarray:
    """Advantages for the 1-step (contextual-bandit-like) NeuroCuts framing."""
    advantages = np.asarray(returns, dtype=np.float64) - np.asarray(
        value_preds, dtype=np.float64
    )
    if normalize:
        advantages = normalize_advantages(advantages)
    return advantages


def normalize_advantages(advantages: np.ndarray, epsilon: float = 1e-8) -> np.ndarray:
    """Zero-mean, unit-variance normalisation (standard PPO practice)."""
    advantages = np.asarray(advantages, dtype=np.float64)
    std = advantages.std()
    if std < epsilon:
        return advantages - advantages.mean()
    return (advantages - advantages.mean()) / (std + epsilon)


def discounted_returns(rewards: Sequence[float], gamma: float,
                       bootstrap_value: float = 0.0) -> np.ndarray:
    """Discounted return at every step of a sequential trajectory."""
    returns = np.zeros(len(rewards), dtype=np.float64)
    running = bootstrap_value
    for t in reversed(range(len(rewards))):
        running = rewards[t] + gamma * running
        returns[t] = running
    return returns


def gae_advantages(rewards: Sequence[float], values: Sequence[float],
                   gamma: float = 0.99, lam: float = 0.95,
                   bootstrap_value: float = 0.0) -> np.ndarray:
    """Generalised Advantage Estimation over one sequential trajectory."""
    rewards = np.asarray(rewards, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if len(rewards) != len(values):
        raise ValueError("rewards and values must have equal length")
    advantages = np.zeros(len(rewards), dtype=np.float64)
    next_value = bootstrap_value
    running = 0.0
    for t in reversed(range(len(rewards))):
        delta = rewards[t] + gamma * next_value - values[t]
        running = delta + gamma * lam * running
        advantages[t] = running
        next_value = values[t]
    return advantages
