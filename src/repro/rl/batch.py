"""Sample batches: the experience container consumed by the PPO learner.

A batch holds, for every 1-step decision collected during tree rollouts:
the observation, the (multi-component) action taken, the action masks in
force, the log-probability under the behaviour policy, the value prediction,
and the final (subtree-aggregated) return assigned to that decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np


@dataclass
class SampleBatch:
    """A flat batch of 1-step experiences."""

    obs: np.ndarray
    actions: np.ndarray
    returns: np.ndarray
    value_preds: np.ndarray
    logp_old: np.ndarray
    action_masks: Optional[List[np.ndarray]] = None

    def __post_init__(self) -> None:
        self.obs = np.asarray(self.obs, dtype=np.float64)
        self.actions = np.asarray(self.actions, dtype=np.int64)
        self.returns = np.asarray(self.returns, dtype=np.float64)
        self.value_preds = np.asarray(self.value_preds, dtype=np.float64)
        self.logp_old = np.asarray(self.logp_old, dtype=np.float64)
        n = len(self.obs)
        for name, arr in (("actions", self.actions), ("returns", self.returns),
                          ("value_preds", self.value_preds),
                          ("logp_old", self.logp_old)):
            if len(arr) != n:
                raise ValueError(f"{name} has length {len(arr)}, expected {n}")
        if self.action_masks is not None:
            self.action_masks = [np.asarray(m, dtype=bool) for m in self.action_masks]
            for mask in self.action_masks:
                if len(mask) != n:
                    raise ValueError("action mask length does not match batch size")

    def __len__(self) -> int:
        return len(self.obs)

    @property
    def advantages(self) -> np.ndarray:
        """Return minus value prediction (1-step advantage; γ = 0 framing)."""
        return self.returns - self.value_preds

    def shuffled(self, rng: np.random.Generator) -> "SampleBatch":
        """A copy of the batch with rows permuted."""
        order = rng.permutation(len(self))
        return self.take(order)

    def take(self, indices: np.ndarray) -> "SampleBatch":
        """Select a subset of rows by index."""
        masks = None
        if self.action_masks is not None:
            masks = [m[indices] for m in self.action_masks]
        return SampleBatch(
            obs=self.obs[indices],
            actions=self.actions[indices],
            returns=self.returns[indices],
            value_preds=self.value_preds[indices],
            logp_old=self.logp_old[indices],
            action_masks=masks,
        )

    def minibatches(self, size: int,
                    rng: np.random.Generator) -> Iterator["SampleBatch"]:
        """Yield shuffled minibatches of at most ``size`` rows."""
        order = rng.permutation(len(self))
        for start in range(0, len(self), size):
            yield self.take(order[start:start + size])

    @staticmethod
    def concat(batches: Sequence["SampleBatch"]) -> "SampleBatch":
        """Concatenate several batches into one."""
        batches = [b for b in batches if len(b)]
        if not batches:
            raise ValueError("cannot concatenate zero non-empty batches")
        masks = None
        if batches[0].action_masks is not None:
            num_components = len(batches[0].action_masks)
            masks = [
                np.concatenate([b.action_masks[i] for b in batches], axis=0)
                for i in range(num_components)
            ]
        return SampleBatch(
            obs=np.concatenate([b.obs for b in batches], axis=0),
            actions=np.concatenate([b.actions for b in batches], axis=0),
            returns=np.concatenate([b.returns for b in batches], axis=0),
            value_preds=np.concatenate([b.value_preds for b in batches], axis=0),
            logp_old=np.concatenate([b.logp_old for b in batches], axis=0),
            action_masks=masks,
        )


@dataclass
class ExperienceBuilder:
    """Accumulates per-step experience lists and finalises a SampleBatch."""

    obs: List[np.ndarray] = field(default_factory=list)
    actions: List[np.ndarray] = field(default_factory=list)
    returns: List[float] = field(default_factory=list)
    value_preds: List[float] = field(default_factory=list)
    logp_old: List[float] = field(default_factory=list)
    masks: List[List[np.ndarray]] = field(default_factory=list)

    def add(self, obs: np.ndarray, action: np.ndarray, ret: float,
            value_pred: float, logp: float,
            masks: Optional[Sequence[np.ndarray]] = None) -> None:
        """Append one 1-step experience."""
        self.obs.append(np.asarray(obs, dtype=np.float64))
        self.actions.append(np.asarray(action, dtype=np.int64))
        self.returns.append(float(ret))
        self.value_preds.append(float(value_pred))
        self.logp_old.append(float(logp))
        if masks is not None:
            self.masks.append([np.asarray(m, dtype=bool) for m in masks])

    def __len__(self) -> int:
        return len(self.obs)

    def build(self) -> SampleBatch:
        """Produce the immutable SampleBatch."""
        if not self.obs:
            raise ValueError("no experience collected")
        action_masks = None
        if self.masks:
            num_components = len(self.masks[0])
            action_masks = [
                np.stack([row[i] for row in self.masks], axis=0)
                for i in range(num_components)
            ]
        return SampleBatch(
            obs=np.stack(self.obs, axis=0),
            actions=np.stack(self.actions, axis=0),
            returns=np.array(self.returns),
            value_preds=np.array(self.value_preds),
            logp_old=np.array(self.logp_old),
            action_masks=action_masks,
        )
