"""Policy wrapper: sampling actions from the actor-critic model.

A :class:`Policy` glues the model, the action space, and the masked
multi-categorical distribution together and exposes the two operations the
environment side needs: *act* (sample an action, keeping the bookkeeping PPO
requires) and *act_deterministic* (take the mode, used when extracting the
best tree from a trained policy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.distributions import MultiCategorical
from repro.nn.model import ActorCriticMLP
from repro.rl.spaces import TupleSpace


@dataclass(frozen=True)
class PolicyDecision:
    """One sampled decision with everything PPO needs to learn from it."""

    action: Tuple[int, ...]
    log_prob: float
    value: float
    masks: Tuple[np.ndarray, ...]


class Policy:
    """A stochastic policy over a tuple action space."""

    def __init__(self, model: ActorCriticMLP, action_space: TupleSpace,
                 seed: int = 0) -> None:
        if tuple(model.action_sizes) != action_space.sizes:
            raise ValueError(
                f"model action sizes {model.action_sizes} do not match the "
                f"action space {action_space.sizes}"
            )
        self.model = model
        self.action_space = action_space
        self._rng = np.random.default_rng(seed)

    def reseed(self, seed) -> None:
        """Reset the sampling RNG from a seed (int or SeedSequence).

        Rollout workers reseed before every shard so a shard's trajectory is
        a pure function of (weights, seed) — the property that makes serial
        and process-pool execution byte-identical.
        """
        self._rng = np.random.default_rng(seed)

    def act(self, obs: np.ndarray,
            masks: Optional[Sequence[np.ndarray]] = None) -> PolicyDecision:
        """Sample an action for one observation."""
        logits, values = self.model.forward(obs[None, :])
        dist = MultiCategorical(
            logits, self.model.action_sizes,
            masks=[m[None, :] for m in masks] if masks is not None else None,
        )
        action = dist.sample(self._rng)[0]
        logp = float(dist.log_prob(action[None, :])[0])
        if masks is not None:
            resolved_masks = tuple(np.asarray(m, dtype=bool) for m in masks)
        else:
            resolved_masks = tuple(
                np.ones(size, dtype=bool) for size in self.model.action_sizes
            )
        return PolicyDecision(
            action=tuple(int(a) for a in action),
            log_prob=logp,
            value=float(values[0]),
            masks=resolved_masks,
        )

    def act_deterministic(self, obs: np.ndarray,
                          masks: Optional[Sequence[np.ndarray]] = None
                          ) -> Tuple[int, ...]:
        """Take the most probable action (greedy decoding of the policy)."""
        logits, _ = self.model.forward(obs[None, :])
        dist = MultiCategorical(
            logits, self.model.action_sizes,
            masks=[m[None, :] for m in masks] if masks is not None else None,
        )
        return tuple(int(a) for a in dist.mode()[0])

    def value(self, obs: np.ndarray) -> float:
        """Value estimate for one observation."""
        _, values = self.model.forward(obs[None, :])
        return float(values[0])
