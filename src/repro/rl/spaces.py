"""Minimal Gym-style observation/action spaces.

Appendix A of the paper specifies the NeuroCuts spaces in OpenAI Gym format:
``Tuple(Discrete(NumDims), Discrete(NumCutActions + NumPartitionActions))``
for actions and ``Box(low=0, high=1, shape=(278,))`` for observations.  This
module provides just enough of that vocabulary, without depending on gym.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Discrete:
    """A space of ``n`` integer actions ``{0, ..., n-1}``."""

    n: int

    def contains(self, value: int) -> bool:
        return 0 <= int(value) < self.n

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(0, self.n))


@dataclass(frozen=True)
class Box:
    """A bounded continuous (or binary) vector space."""

    low: float
    high: float
    shape: Tuple[int, ...]

    def contains(self, value: np.ndarray) -> bool:
        value = np.asarray(value)
        return (
            value.shape == self.shape
            and bool(np.all(value >= self.low))
            and bool(np.all(value <= self.high))
        )

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=self.shape)


@dataclass(frozen=True)
class TupleSpace:
    """A tuple of component spaces (used for the NeuroCuts action space)."""

    spaces: Tuple[Discrete, ...]

    def contains(self, value: Sequence[int]) -> bool:
        if len(value) != len(self.spaces):
            return False
        return all(space.contains(v) for space, v in zip(self.spaces, value))

    def sample(self, rng: np.random.Generator) -> Tuple[int, ...]:
        return tuple(space.sample(rng) for space in self.spaces)

    @property
    def sizes(self) -> Tuple[int, ...]:
        """Number of categories per component."""
        return tuple(space.n for space in self.spaces)
