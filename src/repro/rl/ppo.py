"""Proximal Policy Optimization over numpy actor-critic models.

This is the learner half of the NeuroCuts training loop (Section 5.1 /
Appendix B): an actor-critic loss with a clipped surrogate objective, entropy
regularisation, a clipped value-function loss, and a KL-based early-stop
across the SGD epochs of each batch.  Gradients are computed analytically
through :class:`~repro.nn.distributions.MultiCategorical` and the MLP's
hand-written backward pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import ConfigError
from repro.nn.distributions import MultiCategorical
from repro.nn.model import ActorCriticMLP
from repro.nn.optim import Adam, Optimizer, clip_gradients
from repro.rl.advantages import normalize_advantages
from repro.rl.batch import SampleBatch


@dataclass
class PPOConfig:
    """Hyperparameters of the PPO learner (paper Appendix B defaults)."""

    learning_rate: float = 5e-5
    clip_param: float = 0.3
    vf_clip_param: float = 10.0
    vf_loss_coeff: float = 1.0
    entropy_coeff: float = 0.01
    kl_target: float = 0.01
    kl_coeff: float = 0.2
    num_sgd_iters: int = 30
    sgd_minibatch_size: int = 1000
    grad_clip: Optional[float] = 40.0
    normalize_advantages: bool = True

    def validate(self) -> None:
        """Sanity-check parameter ranges."""
        if self.learning_rate <= 0:
            raise ConfigError("learning_rate must be positive")
        if not 0 < self.clip_param < 1:
            raise ConfigError("clip_param must be in (0, 1)")
        if self.num_sgd_iters < 1:
            raise ConfigError("num_sgd_iters must be >= 1")
        if self.sgd_minibatch_size < 1:
            raise ConfigError("sgd_minibatch_size must be >= 1")
        if self.entropy_coeff < 0:
            raise ConfigError("entropy_coeff must be >= 0")


@dataclass
class PPOStats:
    """Diagnostics from one PPO update over a batch."""

    policy_loss: float
    value_loss: float
    entropy: float
    kl: float
    num_sgd_iters_run: int
    grad_norm: float


class PPOLearner:
    """Runs PPO updates of an actor-critic model from sample batches."""

    def __init__(self, model: ActorCriticMLP, config: Optional[PPOConfig] = None,
                 optimizer: Optional[Optimizer] = None, seed: int = 0) -> None:
        self.model = model
        self.config = config or PPOConfig()
        self.config.validate()
        self.optimizer = optimizer or Adam(learning_rate=self.config.learning_rate)
        self._rng = np.random.default_rng(seed)
        self._kl_coeff = self.config.kl_coeff

    # ------------------------------------------------------------------ #
    # Loss and gradient computation for one minibatch
    # ------------------------------------------------------------------ #

    def _minibatch_update(self, batch: SampleBatch,
                          advantages: np.ndarray) -> Dict[str, float]:
        cfg = self.config
        logits, values = self.model.forward(batch.obs)
        dist = MultiCategorical(
            logits, self.model.action_sizes, masks=batch.action_masks
        )
        logp = dist.log_prob(batch.actions)
        entropy = dist.entropy()
        ratio = np.exp(np.clip(logp - batch.logp_old, -20.0, 20.0))

        # Clipped surrogate objective (to be maximised).
        unclipped = ratio * advantages
        clipped = np.clip(ratio, 1 - cfg.clip_param, 1 + cfg.clip_param) * advantages
        surrogate = np.minimum(unclipped, clipped)
        policy_loss = -float(surrogate.mean())

        # Value loss with error clipping (PPO vf_clip_param).
        vf_error = values - batch.returns
        vf_error_clipped = np.clip(vf_error, -cfg.vf_clip_param, cfg.vf_clip_param)
        value_loss = 0.5 * float((vf_error_clipped ** 2).mean())

        # Gradient of the total loss w.r.t. the flat logits.
        n = len(batch)
        use_unclipped = unclipped <= clipped
        dloss_dlogp = np.where(use_unclipped, -ratio * advantages, 0.0) / n
        dlogits = dist.log_prob_grad(batch.actions) * dloss_dlogp[:, None]
        dlogits -= cfg.entropy_coeff * dist.entropy_grad() / n

        # Gradient of the value loss w.r.t. the value output.
        within_clip = np.abs(vf_error) <= cfg.vf_clip_param
        dvalues = cfg.vf_loss_coeff * np.where(within_clip, vf_error_clipped, 0.0) / n

        grads = self.model.backward(dlogits, dvalues)
        grads = clip_gradients(grads, cfg.grad_clip)
        grad_norm = float(
            np.sqrt(sum(float(np.sum(g ** 2)) for g in grads.values()))
        )

        params = self.model.parameters()
        self.optimizer.step(params, grads)
        self.model.load_parameters(params)

        return {
            "policy_loss": policy_loss,
            "value_loss": value_loss,
            "entropy": float(entropy.mean()),
            "grad_norm": grad_norm,
        }

    def _mean_kl(self, batch: SampleBatch) -> float:
        """KL between the behaviour policy log-probs and the current policy."""
        logits, _ = self.model.forward(batch.obs)
        dist = MultiCategorical(
            logits, self.model.action_sizes, masks=batch.action_masks
        )
        logp = dist.log_prob(batch.actions)
        # One-sample estimate of KL(old || new) per decision.
        return float(np.mean(batch.logp_old - logp))

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def update(self, batch: SampleBatch) -> PPOStats:
        """Run the configured number of SGD epochs over one sample batch."""
        cfg = self.config
        advantages_full = batch.advantages
        if cfg.normalize_advantages:
            advantages_full = normalize_advantages(advantages_full)

        last: Dict[str, float] = {
            "policy_loss": 0.0, "value_loss": 0.0, "entropy": 0.0, "grad_norm": 0.0
        }
        iters_run = 0
        for _ in range(cfg.num_sgd_iters):
            order = self._rng.permutation(len(batch))
            for start in range(0, len(batch), cfg.sgd_minibatch_size):
                indices = order[start:start + cfg.sgd_minibatch_size]
                minibatch = batch.take(indices)
                last = self._minibatch_update(minibatch, advantages_full[indices])
            iters_run += 1
            kl = abs(self._mean_kl(batch))
            if kl > 1.5 * cfg.kl_target:
                break
        kl = abs(self._mean_kl(batch))
        return PPOStats(
            policy_loss=last["policy_loss"],
            value_loss=last["value_loss"],
            entropy=last["entropy"],
            kl=kl,
            num_sgd_iters_run=iters_run,
            grad_norm=last["grad_norm"],
        )
