"""Reinforcement-learning substrate: spaces, batches, advantages, PPO."""

from repro.rl.spaces import Box, Discrete, TupleSpace
from repro.rl.batch import ExperienceBuilder, SampleBatch
from repro.rl.advantages import (
    discounted_returns,
    gae_advantages,
    normalize_advantages,
    one_step_advantages,
)
from repro.rl.ppo import PPOConfig, PPOLearner, PPOStats
from repro.rl.policy import Policy, PolicyDecision

__all__ = [
    "Box",
    "Discrete",
    "TupleSpace",
    "ExperienceBuilder",
    "SampleBatch",
    "discounted_returns",
    "gae_advantages",
    "normalize_advantages",
    "one_step_advantages",
    "PPOConfig",
    "PPOLearner",
    "PPOStats",
    "Policy",
    "PolicyDecision",
]
