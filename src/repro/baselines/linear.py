"""Linear-search "builder": the trivial single-leaf classifier.

A classifier whose only node is a leaf containing every rule corresponds to
linear search.  It is the correctness ground truth and the degenerate corner
of the time/space trade-off (minimum memory, maximum classification time),
so benchmarks include it to anchor the comparison.
"""

from __future__ import annotations

from repro.rules.ruleset import RuleSet
from repro.tree.lookup import TreeClassifier
from repro.tree.tree import DecisionTree
from repro.baselines.base import TreeBuilder


class LinearSearchBuilder(TreeBuilder):
    """Builds the single-leaf tree that models a linear rule scan."""

    name = "LinearSearch"

    def build(self, ruleset: RuleSet) -> TreeClassifier:
        tree = DecisionTree(ruleset, leaf_threshold=max(1, len(ruleset)))
        # The root already satisfies the leaf threshold, so it stays a leaf.
        return TreeClassifier(ruleset, [tree], name=f"{self.name}:{ruleset.name}")
