"""CutSplit (Li et al., INFOCOM 2018).

CutSplit combines pre-cutting with splitting:

1. rules are partitioned into subsets by how "small" (long-prefix) their
   source/destination IP fields are — both small, only one small, or
   neither;
2. each subset's tree is first built with equal-width **cuts** (FiCuts) along
   the small IP dimensions while cutting remains effective, and
3. once cutting stops separating rules, the builder switches to
   HyperSplit-style binary **splits** at a weighted-median range endpoint,
   which guarantees progress without replication blow-up.

The published algorithm's thresholds (a field is "small" when its prefix is
at least 16 bits, i.e. coverage fraction at most 2^-16 of the address space
... in practice 1/65536) are preserved as constructor knobs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import InvalidActionError
from repro.rules.fields import DIMENSIONS, Dimension
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet
from repro.tree.actions import CutAction, SplitAction
from repro.tree.lookup import TreeClassifier
from repro.tree.node import Node
from repro.tree.tree import DecisionTree
from repro.baselines.base import TreeBuilder

#: Subset labels used by CutSplit's pre-partitioning.
SUBSET_BOTH_SMALL = "sa_da_small"
SUBSET_SRC_SMALL = "sa_small"
SUBSET_DST_SMALL = "da_small"
SUBSET_BIG = "big"


class CutSplitBuilder(TreeBuilder):
    """Multi-tree CutSplit heuristic (FiCuts pre-cutting + HyperSplit)."""

    name = "CutSplit"

    def __init__(
        self,
        binth: int = 16,
        smallness_prefix: int = 16,
        cut_threshold: int = 64,
        max_cuts: int = 16,
        max_depth: Optional[int] = 200,
    ) -> None:
        self.binth = binth
        self.smallness_prefix = smallness_prefix
        #: Above this many rules a node is still pre-cut; below it we split.
        self.cut_threshold = cut_threshold
        self.max_cuts = max_cuts
        self.max_depth = max_depth

    # ------------------------------------------------------------------ #
    # Partitioning
    # ------------------------------------------------------------------ #

    def _is_small(self, rule: Rule, dim: Dimension) -> bool:
        """A field is small when its range is a /smallness_prefix or longer."""
        max_span = 1 << (32 - self.smallness_prefix)
        return rule.span(dim) <= max_span

    def partition_rules(self, rules: Sequence[Rule]) -> Dict[str, List[Rule]]:
        """Split rules into the four CutSplit subsets (empty ones omitted)."""
        subsets: Dict[str, List[Rule]] = {
            SUBSET_BOTH_SMALL: [],
            SUBSET_SRC_SMALL: [],
            SUBSET_DST_SMALL: [],
            SUBSET_BIG: [],
        }
        for rule in rules:
            src_small = self._is_small(rule, Dimension.SRC_IP)
            dst_small = self._is_small(rule, Dimension.DST_IP)
            if src_small and dst_small:
                subsets[SUBSET_BOTH_SMALL].append(rule)
            elif src_small:
                subsets[SUBSET_SRC_SMALL].append(rule)
            elif dst_small:
                subsets[SUBSET_DST_SMALL].append(rule)
            else:
                subsets[SUBSET_BIG].append(rule)
        return {label: rules_ for label, rules_ in subsets.items() if rules_}

    def _cut_dimensions(self, subset: str) -> Tuple[Dimension, ...]:
        if subset == SUBSET_BOTH_SMALL:
            return (Dimension.SRC_IP, Dimension.DST_IP)
        if subset == SUBSET_SRC_SMALL:
            return (Dimension.SRC_IP,)
        if subset == SUBSET_DST_SMALL:
            return (Dimension.DST_IP,)
        return ()

    # ------------------------------------------------------------------ #
    # Per-node policy
    # ------------------------------------------------------------------ #

    def choose_action(self, node: Node, cut_dims: Tuple[Dimension, ...]):
        """FiCuts while the node is large, HyperSplit splits afterwards."""
        if node.num_rules > self.cut_threshold and cut_dims:
            dim = max(
                cut_dims,
                key=lambda d: len({r.range_for(d) for r in node.rules}),
            )
            lo, hi = node.range_for(dim)
            if hi - lo >= 2:
                num_cuts = min(self.max_cuts, hi - lo)
                return CutAction(dimension=dim, num_cuts=max(2, num_cuts))
        return self._split_action(node)

    def _split_action(self, node: Node) -> SplitAction:
        """HyperSplit: binary split at the weighted median range endpoint."""
        best: Optional[SplitAction] = None
        best_balance = None
        for dim in DIMENSIONS:
            lo, hi = node.range_for(dim)
            if hi - lo < 2:
                continue
            endpoints = sorted({
                point
                for rule in node.rules
                for point in rule.range_for(dim)
                if lo < point < hi
            })
            if not endpoints:
                continue
            point = endpoints[len(endpoints) // 2]
            left = sum(1 for r in node.rules if r.range_for(dim)[0] < point)
            right = sum(1 for r in node.rules if r.range_for(dim)[1] > point)
            balance = abs(left - right) + (left + right - node.num_rules)
            if best is None or balance < best_balance:
                best = SplitAction(dimension=dim, split_point=point)
                best_balance = balance
        if best is None:
            raise InvalidActionError("no dimension offers a useful split point")
        return best

    # ------------------------------------------------------------------ #
    # Builder interface
    # ------------------------------------------------------------------ #

    def build(self, ruleset: RuleSet) -> TreeClassifier:
        subsets = self.partition_rules(ruleset.rules)
        trees: List[DecisionTree] = []
        for label, rules in subsets.items():
            cut_dims = self._cut_dimensions(label)
            ordered = sorted(rules, key=lambda r: -r.priority)
            trees.append(self._build_subset_tree(ruleset, ordered, cut_dims))
        return TreeClassifier(ruleset, trees, name=f"{self.name}:{ruleset.name}")

    def _build_subset_tree(self, ruleset: RuleSet, rules: List[Rule],
                           cut_dims: Tuple[Dimension, ...]) -> DecisionTree:
        tree = DecisionTree(
            ruleset,
            leaf_threshold=self.binth,
            max_depth=self.max_depth,
            rules=rules,
        )
        while not tree.is_complete():
            node = tree.current_node()
            assert node is not None
            try:
                action = self.choose_action(node, cut_dims)
                tree.apply_action(action)
            except InvalidActionError:
                node.forced_leaf = True
                if node in tree._frontier:
                    tree._frontier.remove(node)
        return tree
