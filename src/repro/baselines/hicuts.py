"""HiCuts (Gupta & McKeown, Hot Interconnects 1999).

HiCuts builds a single decision tree by, at every node:

1. choosing the dimension to cut — the one with the most distinct rule
   projections (the "maximise entropy of the split" heuristic), and
2. choosing the number of equal-width cuts — the largest power of two whose
   *space measure* (total rules replicated into children plus the child
   count) stays below ``spfac`` times the number of rules at the node.

The knobs ``binth`` (leaf threshold) and ``spfac`` (space factor) are the
ones the original paper exposes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.rules.fields import DIMENSIONS, Dimension
from repro.rules.ruleset import RuleSet
from repro.tree.actions import CutAction
from repro.tree.lookup import TreeClassifier
from repro.tree.node import Node
from repro.tree.tree import DecisionTree, build_with_policy
from repro.baselines.base import TreeBuilder


class HiCutsBuilder(TreeBuilder):
    """Single-tree HiCuts heuristic."""

    name = "HiCuts"

    def __init__(self, binth: int = 16, spfac: float = 4.0,
                 max_cuts: int = 64, max_depth: Optional[int] = 200) -> None:
        self.binth = binth
        self.spfac = spfac
        self.max_cuts = max_cuts
        self.max_depth = max_depth

    # ------------------------------------------------------------------ #
    # Heuristics
    # ------------------------------------------------------------------ #

    def choose_dimension(self, node: Node) -> Dimension:
        """Pick the dimension with the most distinct rule projections."""
        best_dim = DIMENSIONS[0]
        best_score = -1
        for dim in DIMENSIONS:
            lo, hi = node.range_for(dim)
            if hi - lo < 2:
                continue
            distinct = len({
                rule.range_for(dim) for rule in node.rules
            })
            if distinct > best_score:
                best_score = distinct
                best_dim = dim
        return best_dim

    def choose_num_cuts(self, node: Node, dim: Dimension) -> int:
        """Largest power-of-two cut count whose space measure is acceptable."""
        lo, hi = node.range_for(dim)
        span = hi - lo
        budget = self.spfac * max(1, node.num_rules)
        best = 2
        num_cuts = 2
        while num_cuts <= min(self.max_cuts, span):
            measure = self._space_measure(node, dim, num_cuts)
            if measure > budget:
                break
            best = num_cuts
            num_cuts *= 2
        return best

    def _space_measure(self, node: Node, dim: Dimension, num_cuts: int) -> float:
        """sm(C) from the HiCuts paper: replicated rules + children count."""
        sub_ranges = node.cut_ranges(dim, num_cuts)
        total_rules = 0
        d = int(dim)
        for sub in sub_ranges:
            for rule in node.rules:
                r_lo, r_hi = rule.ranges[d]
                if r_lo < sub[1] and sub[0] < r_hi:
                    total_rules += 1
        return total_rules + len(sub_ranges)

    def choose_action(self, node: Node) -> CutAction:
        """The per-node HiCuts policy."""
        dim = self.choose_dimension(node)
        num_cuts = self.choose_num_cuts(node, dim)
        return CutAction(dimension=dim, num_cuts=num_cuts)

    # ------------------------------------------------------------------ #
    # Builder interface
    # ------------------------------------------------------------------ #

    def build(self, ruleset: RuleSet) -> TreeClassifier:
        tree = build_with_policy(
            ruleset,
            self.choose_action,
            leaf_threshold=self.binth,
            max_depth=self.max_depth,
        )
        return TreeClassifier(ruleset, [tree], name=f"{self.name}:{ruleset.name}")
