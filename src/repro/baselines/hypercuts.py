"""HyperCuts (Singh et al., SIGCOMM 2003).

HyperCuts generalises HiCuts by cutting several dimensions at once at each
node.  The heuristics reproduced here follow the published algorithm:

* candidate dimensions are those whose count of distinct rule projections is
  at least the mean across dimensions;
* the total number of children is capped by ``spfac * sqrt(num_rules)``;
* per-dimension cut counts are grown round-robin (powers of two) until the
  cap or the dimension's width is reached.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.rules.fields import DIMENSIONS, Dimension
from repro.rules.ruleset import RuleSet
from repro.tree.actions import CutAction, MultiCutAction
from repro.tree.lookup import TreeClassifier
from repro.tree.node import Node
from repro.tree.tree import build_with_policy
from repro.baselines.base import TreeBuilder


class HyperCutsBuilder(TreeBuilder):
    """Single-tree HyperCuts heuristic with multi-dimensional cuts."""

    name = "HyperCuts"

    def __init__(self, binth: int = 16, spfac: float = 4.0,
                 max_cuts_per_dim: int = 32,
                 max_depth: Optional[int] = 200) -> None:
        self.binth = binth
        self.spfac = spfac
        self.max_cuts_per_dim = max_cuts_per_dim
        self.max_depth = max_depth

    # ------------------------------------------------------------------ #
    # Heuristics
    # ------------------------------------------------------------------ #

    def candidate_dimensions(self, node: Node) -> List[Dimension]:
        """Dimensions with at-least-average numbers of distinct projections."""
        counts = {}
        for dim in DIMENSIONS:
            lo, hi = node.range_for(dim)
            if hi - lo < 2:
                continue
            counts[dim] = len({rule.range_for(dim) for rule in node.rules})
        if not counts:
            return []
        mean = sum(counts.values()) / len(counts)
        chosen = [dim for dim, count in counts.items() if count >= mean and count > 1]
        if not chosen:
            # Fall back to the single most discriminating dimension.
            chosen = [max(counts, key=counts.get)]
        return chosen

    def choose_action(self, node: Node) -> MultiCutAction | CutAction:
        dims = self.candidate_dimensions(node)
        if not dims:
            # No dimension can separate anything; let the driver make a leaf.
            return CutAction(dimension=DIMENSIONS[0], num_cuts=2)
        max_children = max(2, int(self.spfac * math.sqrt(max(1, node.num_rules))))
        cuts = {dim: 1 for dim in dims}
        # Grow cut counts round-robin while the child budget allows.
        progressed = True
        while progressed:
            progressed = False
            for dim in dims:
                lo, hi = node.range_for(dim)
                width = hi - lo
                proposed = cuts[dim] * 2
                if proposed > min(self.max_cuts_per_dim, width):
                    continue
                total = proposed
                for other in dims:
                    if other is not dim:
                        total *= cuts[other]
                if total > max_children:
                    continue
                cuts[dim] = proposed
                progressed = True
        chosen = tuple((dim, n) for dim, n in cuts.items() if n >= 2)
        if not chosen:
            # Budget too tight for a multi-cut; do a binary cut on the best dim.
            return CutAction(dimension=dims[0], num_cuts=2)
        if len(chosen) == 1:
            dim, n = chosen[0]
            return CutAction(dimension=dim, num_cuts=n)
        return MultiCutAction(cuts=chosen)

    # ------------------------------------------------------------------ #
    # Builder interface
    # ------------------------------------------------------------------ #

    def build(self, ruleset: RuleSet) -> TreeClassifier:
        tree = build_with_policy(
            ruleset,
            self.choose_action,
            leaf_threshold=self.binth,
            max_depth=self.max_depth,
        )
        return TreeClassifier(ruleset, [tree], name=f"{self.name}:{ruleset.name}")
