"""Tuple Space Search (Srinivasan et al., SIGCOMM 1999).

TSS is the non-tree baseline the related-work section mentions: rules are
grouped by their *tuple* — the vector of prefix/range specificities — and
each group is stored in a hash table keyed by the masked header fields.
Classification probes every tuple's table and keeps the best-priority hit.

It is included as an extra comparator (it is what Open vSwitch uses), and to
exercise the rule model from a direction the tree algorithms do not.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.rules.fields import DIMENSIONS, Dimension
from repro.rules.packet import Packet
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet

#: Port ranges are quantised to these classes to make them hashable tuples.
_PORT_CLASSES: Tuple[Tuple[int, int], ...] = (
    (0, 65536),       # wildcard
    (0, 1024),        # well-known
    (1024, 65536),    # ephemeral
)


def _prefix_length(rule: Rule, dim: Dimension) -> Optional[int]:
    """Prefix length of the rule's range in ``dim`` or None if not a prefix."""
    lo, hi = rule.range_for(dim)
    span = hi - lo
    if span & (span - 1):
        return None
    if lo % span:
        return None
    return dim.bits - (span.bit_length() - 1)


def _port_class(rule: Rule, dim: Dimension) -> Tuple[int, int]:
    rng = rule.range_for(dim)
    for cls in _PORT_CLASSES:
        if rng == cls:
            return cls
    return rng  # exact or arbitrary range: its own class


@dataclass(frozen=True)
class TupleKey:
    """The specificity vector defining one tuple-space table."""

    src_prefix: Optional[int]
    dst_prefix: Optional[int]
    src_port_class: Tuple[int, int]
    dst_port_class: Tuple[int, int]
    proto_exact: bool


class TupleSpaceClassifier:
    """A classifier backed by one hash table per tuple."""

    def __init__(self, ruleset: RuleSet) -> None:
        self.ruleset = ruleset
        self._tables: Dict[TupleKey, Dict[Tuple, List[Rule]]] = defaultdict(dict)
        self._fallback: List[Rule] = []
        for rule in ruleset:
            key = self._tuple_key(rule)
            if key is None:
                self._fallback.append(rule)
                continue
            hash_key = self._hash_key_for_rule(rule, key)
            bucket = self._tables[key].setdefault(hash_key, [])
            bucket.append(rule)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    def _tuple_key(self, rule: Rule) -> Optional[TupleKey]:
        src_len = _prefix_length(rule, Dimension.SRC_IP)
        dst_len = _prefix_length(rule, Dimension.DST_IP)
        if src_len is None or dst_len is None:
            return None
        proto_lo, proto_hi = rule.range_for(Dimension.PROTOCOL)
        sp_class = _port_class(rule, Dimension.SRC_PORT)
        dp_class = _port_class(rule, Dimension.DST_PORT)
        if sp_class not in _PORT_CLASSES and sp_class[1] - sp_class[0] != 1:
            return None
        if dp_class not in _PORT_CLASSES and dp_class[1] - dp_class[0] != 1:
            return None
        return TupleKey(
            src_prefix=src_len,
            dst_prefix=dst_len,
            src_port_class=sp_class if sp_class in _PORT_CLASSES else (-1, -1),
            dst_port_class=dp_class if dp_class in _PORT_CLASSES else (-1, -1),
            proto_exact=(proto_hi - proto_lo == 1),
        )

    def _hash_key_for_rule(self, rule: Rule, key: TupleKey) -> Tuple:
        parts = []
        parts.append(rule.range_for(Dimension.SRC_IP)[0])
        parts.append(rule.range_for(Dimension.DST_IP)[0])
        parts.append(
            rule.range_for(Dimension.SRC_PORT)[0]
            if key.src_port_class == (-1, -1) else key.src_port_class
        )
        parts.append(
            rule.range_for(Dimension.DST_PORT)[0]
            if key.dst_port_class == (-1, -1) else key.dst_port_class
        )
        parts.append(
            rule.range_for(Dimension.PROTOCOL)[0] if key.proto_exact else "*"
        )
        return tuple(parts)

    def _hash_key_for_packet(self, packet: Packet, key: TupleKey) -> Tuple:
        parts = []
        src_mask_span = 1 << (32 - key.src_prefix)
        dst_mask_span = 1 << (32 - key.dst_prefix)
        parts.append((packet.src_ip // src_mask_span) * src_mask_span)
        parts.append((packet.dst_ip // dst_mask_span) * dst_mask_span)
        parts.append(
            packet.src_port if key.src_port_class == (-1, -1) else key.src_port_class
        )
        parts.append(
            packet.dst_port if key.dst_port_class == (-1, -1) else key.dst_port_class
        )
        parts.append(packet.protocol if key.proto_exact else "*")
        return tuple(parts)

    # ------------------------------------------------------------------ #
    # Classification
    # ------------------------------------------------------------------ #

    @property
    def num_tuples(self) -> int:
        """Number of distinct tuples (tables probed per lookup)."""
        return len(self._tables)

    def classify(self, packet: Packet) -> Optional[Rule]:
        """Probe every tuple table plus the fallback list; best priority wins."""
        best: Optional[Rule] = None
        for key, table in self._tables.items():
            bucket = table.get(self._hash_key_for_packet(packet, key))
            if not bucket:
                continue
            for rule in bucket:
                if rule.matches(packet) and (best is None or rule.priority > best.priority):
                    best = rule
        for rule in self._fallback:
            if rule.matches(packet) and (best is None or rule.priority > best.priority):
                best = rule
        return best
