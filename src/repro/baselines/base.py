"""Common interface for decision-tree builders (baselines and NeuroCuts).

Every algorithm in this repository — the four hand-tuned heuristics the paper
compares against and NeuroCuts itself — produces a
:class:`~repro.tree.lookup.TreeClassifier` over the *same* tree engine, so
classification-time and memory comparisons are apples-to-apples (the paper
makes the same methodological choice in Section 5).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.rules.ruleset import RuleSet
from repro.tree.lookup import ClassifierStats, TreeClassifier

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.dispatch import CompiledClassifier


@dataclass(frozen=True)
class BuildResult:
    """A built classifier together with its aggregate statistics."""

    classifier: TreeClassifier
    stats: ClassifierStats
    algorithm: str

    @property
    def classification_time(self) -> int:
        return self.stats.classification_time

    @property
    def bytes_per_rule(self) -> float:
        return self.stats.bytes_per_rule

    def compiled(self, flow_cache_size: Optional[int] = None
                 ) -> "CompiledClassifier":
        """The classifier compiled for the dataplane engine (cached)."""
        return self.classifier.compile(flow_cache_size=flow_cache_size)


class TreeBuilder(abc.ABC):
    """Base class for anything that turns a classifier into decision trees."""

    #: Human-readable algorithm name, e.g. ``"HiCuts"``.
    name: str = "builder"

    @abc.abstractmethod
    def build(self, ruleset: RuleSet) -> TreeClassifier:
        """Build the decision tree(s) for a classifier."""

    def build_with_stats(self, ruleset: RuleSet) -> BuildResult:
        """Build and bundle the result with its statistics."""
        classifier = self.build(ruleset)
        return BuildResult(
            classifier=classifier, stats=classifier.stats(), algorithm=self.name
        )

    def build_compiled(self, ruleset: RuleSet,
                       flow_cache_size: Optional[int] = None
                       ) -> "CompiledClassifier":
        """Build the tree(s) and compile them for the dataplane engine."""
        return self.build(ruleset).compile(flow_cache_size=flow_cache_size)


def compare_builders(ruleset: RuleSet,
                     builders: Dict[str, TreeBuilder]) -> Dict[str, BuildResult]:
    """Build one classifier with several algorithms and collect the results."""
    return {name: builder.build_with_stats(ruleset)
            for name, builder in builders.items()}
