"""EffiCuts (Vamanan et al., SIGCOMM 2010).

EffiCuts attacks rule replication with four ideas; this reproduction
implements the two that dominate its memory savings and that NeuroCuts
builds on (Section 6.3):

* **Separable trees** — rules are first partitioned by which subset of
  dimensions they are "large" in (coverage fraction above a threshold,
  0.5 by default), and one tree is built per category, so wildcard-ish
  rules never get replicated across cuts of the dimension they span.
* **Tree merging** — categories with few rules are merged into the most
  similar larger category (smallest Hamming distance between largeness
  masks) to bound the number of trees that must be queried.

Within each category a HiCuts-style equal-width cutting tree is built (the
"equi-dense cuts" refinement is approximated by the smaller space factor
EffiCuts uses).  The builder can optionally restrict itself to
single-dimension cuts, which reproduces the ablation in Section 6.3 where
NeuroCuts' advantage widens when EffiCuts loses multi-dimensional cuts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import InvalidActionError
from repro.rules.fields import DIMENSIONS
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet
from repro.tree.lookup import TreeClassifier
from repro.tree.node import efficuts_categories
from repro.tree.tree import DecisionTree, build_with_policy
from repro.baselines.base import TreeBuilder
from repro.baselines.hicuts import HiCutsBuilder
from repro.baselines.hypercuts import HyperCutsBuilder


class EffiCutsBuilder(TreeBuilder):
    """Multi-tree EffiCuts heuristic (separable trees + tree merging)."""

    name = "EffiCuts"

    def __init__(
        self,
        binth: int = 16,
        spfac: float = 8.0,
        largeness_threshold: float = 0.5,
        merge_small_categories: bool = True,
        min_category_size: int = 10,
        use_multi_dimensional_cuts: bool = True,
        max_depth: Optional[int] = 200,
    ) -> None:
        self.binth = binth
        self.spfac = spfac
        self.largeness_threshold = largeness_threshold
        self.merge_small_categories = merge_small_categories
        self.min_category_size = min_category_size
        self.use_multi_dimensional_cuts = use_multi_dimensional_cuts
        self.max_depth = max_depth

    # ------------------------------------------------------------------ #
    # Partitioning
    # ------------------------------------------------------------------ #

    def partition_rules(self, rules: Sequence[Rule]) -> Dict[int, List[Rule]]:
        """Split rules into separable categories keyed by largeness bitmask."""
        buckets = efficuts_categories(rules, self.largeness_threshold)
        categories = {mask: rules_ for mask, rules_ in enumerate(buckets) if rules_}
        if self.merge_small_categories and len(categories) > 1:
            categories = self._merge_small(categories)
        return categories

    def _merge_small(self, categories: Dict[int, List[Rule]]) -> Dict[int, List[Rule]]:
        """Merge under-populated categories into their nearest neighbour."""
        merged = dict(categories)
        small_masks = [m for m, rules in merged.items()
                       if len(rules) < self.min_category_size]
        for mask in small_masks:
            if len(merged) == 1:
                break
            others = [m for m in merged if m != mask]
            if not others:
                break
            target = min(others, key=lambda m: _hamming(m, mask))
            merged[target] = merged[target] + merged.pop(mask)
        return merged

    # ------------------------------------------------------------------ #
    # Builder interface
    # ------------------------------------------------------------------ #

    def _inner_builder(self) -> TreeBuilder:
        if self.use_multi_dimensional_cuts:
            return HyperCutsBuilder(binth=self.binth, spfac=self.spfac,
                                    max_depth=self.max_depth)
        return HiCutsBuilder(binth=self.binth, spfac=self.spfac,
                             max_depth=self.max_depth)

    def build(self, ruleset: RuleSet) -> TreeClassifier:
        categories = self.partition_rules(ruleset.rules)
        inner = self._inner_builder()
        trees: List[DecisionTree] = []
        for mask in sorted(categories):
            rules = sorted(categories[mask], key=lambda r: -r.priority)
            trees.append(self._build_category_tree(ruleset, rules, inner))
        return TreeClassifier(ruleset, trees, name=f"{self.name}:{ruleset.name}")

    def _build_category_tree(self, ruleset: RuleSet, rules: List[Rule],
                             inner: TreeBuilder) -> DecisionTree:
        """Build one tree for a category's rule subset."""
        tree = DecisionTree(
            ruleset,
            leaf_threshold=self.binth,
            max_depth=self.max_depth,
            rules=rules,
        )
        while not tree.is_complete():
            node = tree.current_node()
            assert node is not None
            action = inner.choose_action(node)
            try:
                tree.apply_action(action)
            except InvalidActionError:
                # apply_action removed the node from the frontier already.
                node.forced_leaf = True
        return tree


def _hamming(a: int, b: int) -> int:
    """Hamming distance between two largeness bitmasks."""
    return bin(a ^ b).count("1")
