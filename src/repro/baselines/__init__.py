"""Baseline packet-classification algorithms the paper compares against."""

from repro.baselines.base import BuildResult, TreeBuilder, compare_builders
from repro.baselines.hicuts import HiCutsBuilder
from repro.baselines.hypercuts import HyperCutsBuilder
from repro.baselines.efficuts import EffiCutsBuilder
from repro.baselines.cutsplit import CutSplitBuilder
from repro.baselines.linear import LinearSearchBuilder
from repro.baselines.tuplespace import TupleSpaceClassifier

__all__ = [
    "BuildResult",
    "TreeBuilder",
    "compare_builders",
    "HiCutsBuilder",
    "HyperCutsBuilder",
    "EffiCutsBuilder",
    "CutSplitBuilder",
    "LinearSearchBuilder",
    "TupleSpaceClassifier",
]


def default_baselines(binth: int = 16) -> dict:
    """The four baselines of Figures 8–9, keyed by their paper names."""
    return {
        "HiCuts": HiCutsBuilder(binth=binth),
        "HyperCuts": HyperCutsBuilder(binth=binth),
        "EffiCuts": EffiCutsBuilder(binth=binth),
        "CutSplit": CutSplitBuilder(binth=binth),
    }
