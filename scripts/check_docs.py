#!/usr/bin/env python
"""Documentation consistency checks (run by the CI docs job).

Two guarantees keep the docs from drifting away from the code:

1. **Links resolve** — every intra-repo markdown link in README.md,
   ROADMAP.md, and docs/*.md points at a file that exists (external
   http(s) links and pure #anchors are skipped).
2. **The CLI reference is live** — every ``repro <command>`` heading in
   docs/cli.md names a real subcommand (``repro <command> --help`` must
   exit 0), and every subcommand the CLI actually exposes is documented.

Exit code 0 when everything checks out; 1 with a per-problem report
otherwise.  Run from the repository root:

    python scripts/check_docs.py
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Files whose intra-repo links must resolve.
LINKED_DOCS = ["README.md", "ROADMAP.md"]

#: Matches markdown inline links: [text](target).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Matches CLI reference headings: ## `repro <command>`
CLI_HEADING_RE = re.compile(r"^##\s+`repro\s+([a-z][a-z0-9-]*)`", re.MULTILINE)


def check_links(problems: List[str]) -> int:
    """Verify every relative markdown link target exists; returns #links."""
    files = [REPO_ROOT / name for name in LINKED_DOCS]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    checked = 0
    for doc in files:
        if not doc.exists():
            problems.append(f"{doc.relative_to(REPO_ROOT)}: file missing")
            continue
        for match in LINK_RE.finditer(doc.read_text(encoding="utf-8")):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            checked += 1
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(REPO_ROOT)}: broken link -> {target}"
                )
    return checked


def check_cli_reference(problems: List[str]) -> List[str]:
    """Verify docs/cli.md and the real CLI agree; returns documented cmds."""
    cli_doc = REPO_ROOT / "docs" / "cli.md"
    if not cli_doc.exists():
        problems.append("docs/cli.md is missing")
        return []
    documented = CLI_HEADING_RE.findall(cli_doc.read_text(encoding="utf-8"))
    if not documented:
        problems.append("docs/cli.md documents no `repro <command>` headings")
        return []

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    for command in documented:
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", command, "--help"],
            capture_output=True, env=env, cwd=REPO_ROOT,
        )
        if result.returncode != 0:
            problems.append(
                f"docs/cli.md documents `repro {command}` but "
                f"`repro {command} --help` exits "
                f"{result.returncode}: {result.stderr.decode().strip()[:200]}"
            )

    # The reverse direction: every real subcommand must be documented.
    sys.path.insert(0, src)
    try:
        from repro.cli import _COMMANDS
    finally:
        sys.path.pop(0)
    for command in sorted(_COMMANDS):
        if command not in documented:
            problems.append(
                f"`repro {command}` exists but is not documented in "
                f"docs/cli.md (add a `## \\`repro {command}\\`` section)"
            )
    return documented


def main() -> int:
    problems: List[str] = []
    num_links = check_links(problems)
    documented = check_cli_reference(problems)
    if problems:
        print(f"docs check FAILED ({len(problems)} problem(s)):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"docs check OK: {num_links} intra-repo links resolve, "
          f"{len(documented)} CLI subcommands documented and live "
          f"({', '.join(documented)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
