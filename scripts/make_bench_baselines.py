#!/usr/bin/env python
"""Regenerate the checked-in bench-scorecard baselines.

Runs the canonical scorecard (``repro.harness.scorecard``) and writes
``benchmarks/baselines/BENCH_engine.json`` and ``BENCH_serve.json``.  Run
this — and commit the result — whenever a deterministic counter changes
*intentionally* (a batching-policy change, a cache accounting fix, a new
exactness tally); the CI ``bench-scorecard`` job gates every push against
these files with ``repro bench compare``.

Timing metrics in the baselines record the machine that generated them and
are only tolerance-banded (or skipped on small CI runners), so there is no
need to regenerate on a "faster" machine.

Usage::

    PYTHONPATH=src python scripts/make_bench_baselines.py [--out-dir DIR]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.harness.scorecard import run_scorecard  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", type=Path,
                        default=REPO_ROOT / "benchmarks" / "baselines",
                        help="where to write the baseline records")
    args = parser.parse_args(argv)
    paths = run_scorecard(args.out_dir)
    for area, path in sorted(paths.items()):
        print(f"wrote {area} baseline: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
