#!/usr/bin/env python
"""Regenerate the checked-in golden traces under tests/data/.

The golden traces are the regression fixtures ``tests/test_trace_replay.py``
replays: small multi-tenant churn scenarios recorded under the determinism
contract (synchronous swaps), so their golden columns are a pure function
of the trace clock and stay valid on any machine.  Regenerate them only
when the trace format version is bumped or the scenario definitions below
change — a regeneration that changes the golden *decisions* on an unchanged
scenario means serving behaviour changed and deserves scrutiny, not a
fixture refresh.

Run from the repository root::

    PYTHONPATH=src python scripts/make_golden_traces.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.traces import record_serving  # noqa: E402

DATA_DIR = REPO_ROOT / "tests" / "data"

#: The golden scenarios, keyed by file name.  ``acl1_churn`` is the basic
#: multi-tenant hot-swap gate; ``acl1_retrain_churn`` schedules enough churn
#: (4 events x 6 updates, round-robin over 2 tenants) that replaying it with
#: ``retrain_threshold=12`` forces a mid-trace retrain on every tenant.
SCENARIOS = {
    "acl1_churn.trace": dict(
        num_tenants=2, families=("acl1",), num_rules=50, num_packets=600,
        num_flows=96, churn_events=2, seed=11,
    ),
    "acl1_retrain_churn.trace": dict(
        num_tenants=2, families=("acl1",), num_rules=40, num_packets=800,
        num_flows=96, churn_events=4, seed=23,
    ),
    # Four tenants so a 2-shard replay has non-trivial placements: the
    # shard-rebalancing differential (tests/test_shard_rebalance.py)
    # replays this trace single-process, statically sharded, and with
    # forced mid-trace migrations, expecting identical decisions and
    # deterministic counters in all three.
    "acl1_rebalance.trace": dict(
        num_tenants=4, families=("acl1", "ipc1"), num_rules=60,
        num_packets=2_000, num_flows=160, churn_events=2, seed=31,
    ),
}


def main() -> int:
    for name, scenario in SCENARIOS.items():
        path = DATA_DIR / name
        outcome = record_serving(path, **scenario)
        print(f"wrote {path} ({path.stat().st_size:,} bytes): "
              f"{outcome.trace.describe()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
